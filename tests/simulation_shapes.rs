//! Integration tests asserting the qualitative *shapes* of the paper's
//! evaluation, as produced by the discrete-event simulator. Absolute numbers
//! are irrelevant here; orderings and crossovers are what the paper claims.

use flexitrust::prelude::*;
use flexitrust::sim::FaultPlan;

fn quick(protocol: ProtocolId, f: usize) -> SimReport {
    let mut spec = ScenarioSpec::quick_test(protocol);
    spec.f = f;
    spec.batch_size = 20;
    spec.clients = 1_500;
    spec.duration_us = 250_000;
    spec.warmup_us = 60_000;
    Simulation::new(spec).run()
}

#[test]
fn flexitrust_outperforms_its_trust_bft_counterparts() {
    let flexi_bft = quick(ProtocolId::FlexiBft, 2);
    let minbft = quick(ProtocolId::MinBft, 2);
    let flexi_zz = quick(ProtocolId::FlexiZz, 2);
    let minzz = quick(ProtocolId::MinZz, 2);
    assert!(
        flexi_bft.throughput_tps > minbft.throughput_tps,
        "Flexi-BFT {} <= MinBFT {}",
        flexi_bft.throughput_tps,
        minbft.throughput_tps
    );
    assert!(
        flexi_zz.throughput_tps > minzz.throughput_tps,
        "Flexi-ZZ {} <= MinZZ {}",
        flexi_zz.throughput_tps,
        minzz.throughput_tps
    );
}

#[test]
fn pbft_ea_is_the_slowest_protocol_of_the_lineup() {
    let pbft_ea = quick(ProtocolId::PbftEa, 2);
    for other in [
        ProtocolId::MinBft,
        ProtocolId::MinZz,
        ProtocolId::FlexiZz,
        ProtocolId::Pbft,
    ] {
        let report = quick(other, 2);
        assert!(
            report.throughput_tps >= pbft_ea.throughput_tps,
            "{other} ({}) should not be slower than Pbft-EA ({})",
            report.throughput_tps,
            pbft_ea.throughput_tps
        );
    }
}

#[test]
fn flexitrust_uses_the_trusted_component_once_per_batch_primary_only() {
    let report = quick(ProtocolId::FlexiZz, 2);
    assert_eq!(report.tc_accesses_total, report.tc_accesses_primary);
    let minbft = quick(ProtocolId::MinBft, 2);
    assert!(minbft.tc_accesses_total > minbft.tc_accesses_primary);
}

#[test]
fn slow_trusted_hardware_collapses_all_protocols_to_the_same_bound() {
    // Figure 8's right-hand side: at 30 ms per access every protocol is
    // bounded by batch/access-latency, so MinZZ and Flexi-ZZ converge.
    let run_with = |protocol| {
        let mut spec = ScenarioSpec::quick_test(protocol);
        spec.f = 1;
        spec.batch_size = 20;
        spec.hardware = TrustedHardware::Custom {
            access_us: 30_000,
            rollback_protected: true,
        };
        spec.duration_us = 1_000_000;
        spec.warmup_us = 200_000;
        Simulation::new(spec).run()
    };
    let flexi = run_with(ProtocolId::FlexiZz);
    let minzz = run_with(ProtocolId::MinZz);
    assert!(flexi.throughput_tps > 0.0 && minzz.throughput_tps > 0.0);
    let ratio = flexi.throughput_tps / minzz.throughput_tps;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "expected convergence, got ratio {ratio}"
    );
}

#[test]
fn single_replica_failure_only_hurts_all_reply_protocols() {
    let with_failure = |protocol| {
        let mut spec = ScenarioSpec::quick_test(protocol);
        spec.duration_us = 400_000;
        spec.warmup_us = 100_000;
        let victim = ReplicaId((spec.replicas() - 1) as u32);
        spec.faults = FaultPlan::single_failure(victim);
        Simulation::new(spec).run()
    };
    let healthy_flexi = quick(ProtocolId::FlexiZz, 1);
    let failed_flexi = with_failure(ProtocolId::FlexiZz);
    assert!(failed_flexi.throughput_tps > 0.4 * healthy_flexi.throughput_tps);

    let healthy_minzz = quick(ProtocolId::MinZz, 1);
    let failed_minzz = with_failure(ProtocolId::MinZz);
    assert!(
        failed_minzz.avg_latency_ms > healthy_minzz.avg_latency_ms,
        "MinZZ latency should rise under a failure"
    );
}

#[test]
fn wan_keeps_throughput_roughly_flat_for_quorum_protocols() {
    // Figure 6(vi): quorums are satisfied by the nearest replicas, so adding
    // far-away regions mostly affects latency, not throughput.
    let run_regions = |regions| {
        let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        spec.regions = regions;
        spec.duration_us = 1_000_000;
        spec.warmup_us = 250_000;
        spec.clients = 1_000;
        Simulation::new(spec).run()
    };
    let one = run_regions(1);
    let six = run_regions(6);
    assert!(six.completed_txns > 0);
    assert!(six.avg_latency_ms > one.avg_latency_ms);
}
