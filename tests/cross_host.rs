//! Cross-host equivalence: the discrete-event simulator, the threaded
//! channel cluster and the loopback-TCP cluster drive the same engines
//! through the same shared host layer (`flexitrust-host`), so the same
//! workload must commit the same transactions at the same sequence numbers
//! in all three environments.
//!
//! This pins the dispatch refactor — and the wire codec — by construction:
//! a regression in any host's Action translation (dropped broadcasts,
//! wrong batching order, broken timer bookkeeping on the commit path) or
//! in the TCP transport's encode/decode path shows up as a diverging
//! commit log.

use flexitrust::host::CommittedTxn;
use flexitrust::prelude::*;
use std::time::Duration;

const F: usize = 1;
const BATCH: usize = 10;
/// One request per logical client, a whole number of batches, so both hosts
/// see the identical arrival order client 0..CLIENTS-1 with request id 1.
const CLIENTS: usize = 40;
const SEQS: u64 = (CLIENTS / BATCH) as u64;

/// Commit log of the simulator, restricted to the sequence numbers that hold
/// the initial (request id 1) submissions; the closed-loop clients keep
/// resubmitting, so later sequence numbers hold later request ids.
fn simulator_commits(protocol: ProtocolId) -> Vec<CommittedTxn> {
    let mut spec = ScenarioSpec::quick_test(protocol);
    spec.f = F;
    spec.batch_size = BATCH;
    spec.clients = CLIENTS;
    let report = Simulation::new(spec).run();
    report
        .commit_log
        .iter()
        .filter(|c| c.seq.0 <= SEQS)
        .copied()
        .collect()
}

/// Commit log of the threaded cluster for the same workload shape: CLIENTS
/// transactions, one per client, submitted in client order.
fn cluster_commits(protocol: ProtocolId) -> Vec<CommittedTxn> {
    cluster_commits_with_workers(protocol, 1)
}

/// Same as [`cluster_commits`] with `workers` execution-layer shard
/// workers per replica.
fn cluster_commits_with_workers(protocol: ProtocolId, workers: usize) -> Vec<CommittedTxn> {
    let cluster = Cluster::start_with_workers(protocol, F, BATCH, workers);
    let summary = cluster.run_workload(CLIENTS, CLIENTS, Duration::from_secs(60));
    cluster.shutdown();
    assert_eq!(
        summary.completed_txns, CLIENTS as u64,
        "{protocol}: cluster did not commit the full workload"
    );
    summary.commit_log
}

/// Commit log of the loopback-TCP cluster: same engines and replica loop
/// as the channel cluster, but every message round-trips through the
/// canonical wire codec and a real socket.
fn tcp_commits(protocol: ProtocolId) -> Vec<CommittedTxn> {
    tcp_commits_with_workers(protocol, 1)
}

/// Same as [`tcp_commits`] with `workers` execution-layer shard workers
/// per replica.
fn tcp_commits_with_workers(protocol: ProtocolId, workers: usize) -> Vec<CommittedTxn> {
    let cluster =
        TcpCluster::start_with_workers(protocol, F, BATCH, workers).expect("tcp cluster starts");
    let summary = cluster.run_workload(CLIENTS, CLIENTS, Duration::from_secs(60));
    cluster.shutdown();
    assert_eq!(
        summary.completed_txns, CLIENTS as u64,
        "{protocol}: TCP cluster did not commit the full workload"
    );
    summary.commit_log
}

fn assert_same_commit_sequence(protocol: ProtocolId) {
    let sim = simulator_commits(protocol);
    let cluster = cluster_commits(protocol);
    let tcp = tcp_commits(protocol);
    assert_eq!(
        sim.len(),
        CLIENTS,
        "{protocol}: simulator committed {} of the {CLIENTS} initial requests in seqs 1..={SEQS}",
        sim.len()
    );
    assert_eq!(
        sim, cluster,
        "{protocol}: simulator and threaded cluster commit logs diverge"
    );
    assert_eq!(
        sim, tcp,
        "{protocol}: simulator and TCP cluster commit logs diverge"
    );
    // Spot-check the shape all hosts must agree on: every initial request
    // commits exactly once, within the expected sequence window.
    for entry in &sim {
        assert_eq!(entry.request, RequestId(1));
        assert!(entry.seq.0 >= 1 && entry.seq.0 <= SEQS);
    }
}

#[test]
fn flexi_bft_commits_identically_in_all_three_hosts() {
    assert_same_commit_sequence(ProtocolId::FlexiBft);
}

#[test]
fn pbft_commits_identically_in_all_three_hosts() {
    assert_same_commit_sequence(ProtocolId::Pbft);
}

/// Flexi-ZZ replies speculatively after a single phase, so the client-side
/// quorum logic is load-bearing: the simulator's aggregate client model
/// must count votes per (seq, result digest) exactly like the
/// `ClientLibrary` the threaded clusters use, or the hosts drift on when a
/// request completes.
#[test]
fn flexi_zz_speculative_replies_commit_identically_in_all_three_hosts() {
    assert_same_commit_sequence(ProtocolId::FlexiZz);
}

/// Workload shape for the crash-recovery pin: enough one-request clients
/// that the crash window (crash once replica 2 executes seq 40, rejoin
/// once the rest reach seq 120) sits strictly inside the run.
const CHAOS_CLIENTS: usize = 1600;
const CHAOS_SEQS: u64 = (CHAOS_CLIENTS / BATCH) as u64;
const CRASH_AT: u64 = 40;
const RECOVER_AT: u64 = 120;
/// Shortened checkpoint interval so recovery has a stable checkpoint to
/// transfer well before the workload drains.
const CHAOS_CHECKPOINT: u64 = 20;

/// Simulator commit log (restricted to the initial requests) plus replica
/// 2's final execution frontier, under the crash window.
fn simulator_commits_with_crash(protocol: ProtocolId) -> (Vec<CommittedTxn>, u64) {
    let mut spec = ScenarioSpec::quick_test(protocol);
    spec.f = F;
    spec.batch_size = BATCH;
    spec.clients = CHAOS_CLIENTS;
    spec.checkpoint_interval = Some(CHAOS_CHECKPOINT);
    spec.chaos = ChaosPlan::none().with_crash_windows(vec![CrashAtSeq {
        replica: ReplicaId(2),
        crash_at_seq: CRASH_AT,
        recover_at_seq: RECOVER_AT,
    }]);
    let report = Simulation::new(spec).run();
    report
        .check_chaos_invariants()
        .expect("crash-recovery run must hold safety and restore liveness");
    let frontier = report.replica_frontiers[2].0;
    let commits = report
        .commit_log
        .iter()
        .filter(|c| c.seq.0 <= CHAOS_SEQS)
        .copied()
        .collect();
    (commits, frontier)
}

/// Threaded-cluster commit log plus replica 2's final execution frontier,
/// under the same crash window driven by the shared frontier board.
fn cluster_commits_with_crash(protocol: ProtocolId) -> (Vec<CommittedTxn>, u64) {
    let cluster = Cluster::start_with_chaos(
        protocol,
        F,
        BATCH,
        1,
        Some(CHAOS_CHECKPOINT),
        Some(CrashWindow {
            replica: ReplicaId(2),
            crash_at_seq: CRASH_AT,
            recover_at_seq: RECOVER_AT,
        }),
    );
    let summary = cluster.run_workload(CHAOS_CLIENTS, CHAOS_CLIENTS, Duration::from_secs(120));
    // The workload completes on the client quorum; give replica 2's thread
    // a beat to finish its state transfer and publish the caught-up
    // frontier before tearing the cluster down.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut frontier = cluster.replica_frontiers()[2];
    while frontier < RECOVER_AT && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
        frontier = cluster.replica_frontiers()[2];
    }
    cluster.shutdown();
    assert_eq!(
        summary.completed_txns, CHAOS_CLIENTS as u64,
        "{protocol}: cluster with a crashed replica did not commit the full workload"
    );
    (summary.commit_log, frontier)
}

/// Crash-recovery pin: with replica 2 down between seq 40 and seq 120 the
/// remaining three replicas still hold exactly the commit quorum, so the
/// commit sequence must be identical to the fault-free one — and identical
/// between the simulator and the threaded cluster. Replica 2 must rejoin
/// via checkpoint state transfer and end past the recovery point in both
/// hosts.
#[test]
fn crashed_replica_rejoins_and_hosts_agree_on_the_commit_sequence() {
    let (sim, sim_frontier) = simulator_commits_with_crash(ProtocolId::FlexiBft);
    let (cluster, cluster_frontier) = cluster_commits_with_crash(ProtocolId::FlexiBft);
    assert_eq!(
        sim.len(),
        CHAOS_CLIENTS,
        "simulator committed {} of the {CHAOS_CLIENTS} initial requests in seqs 1..={CHAOS_SEQS}",
        sim.len()
    );
    assert_eq!(
        sim, cluster,
        "simulator and threaded cluster commit logs diverge under the crash window"
    );
    assert!(
        sim_frontier >= RECOVER_AT,
        "simulated replica 2 stopped at seq {sim_frontier}, before the seq-{RECOVER_AT} rejoin point"
    );
    assert!(
        cluster_frontier >= RECOVER_AT,
        "cluster replica 2 stopped at seq {cluster_frontier}, before the seq-{RECOVER_AT} rejoin point"
    );
}

/// Sharded parallel execution is a pure implementation detail: for every
/// worker configuration, both threaded hosts commit exactly the sequence
/// the serial simulator commits. (Digest agreement is implied too — the
/// checkpoint protocol compares `state_digest()` across replicas, and a
/// worker-dependent digest would stall commits long before this assert.)
#[test]
fn execution_worker_count_never_changes_the_commit_sequence() {
    let reference = simulator_commits(ProtocolId::FlexiBft);
    assert_eq!(reference.len(), CLIENTS);
    for workers in [2usize, 4] {
        let cluster = cluster_commits_with_workers(ProtocolId::FlexiBft, workers);
        assert_eq!(
            reference, cluster,
            "channel cluster with {workers} exec workers diverges from the serial reference"
        );
    }
    let tcp = tcp_commits_with_workers(ProtocolId::FlexiBft, 4);
    assert_eq!(
        reference, tcp,
        "TCP cluster with 4 exec workers diverges from the serial reference"
    );
}
