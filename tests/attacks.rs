//! Integration tests for the paper's three analytical claims (§5, §6, §7),
//! exercised across crates: attack scenarios built in `flexitrust-attacks`,
//! engines from `flexitrust-core`/`flexitrust-baselines`, trusted components
//! from `flexitrust-trusted`.

use flexitrust::attacks::{
    out_of_order_probe, responsiveness_attack, rollback_attack_flexibft, rollback_attack_minbft,
};
use flexitrust::prelude::*;

#[test]
fn section5_weak_quorums_break_responsiveness_only_for_2f_plus_1_protocols() {
    for f in [1usize, 2, 3] {
        let minbft = responsiveness_attack(ProtocolId::MinBft, f);
        assert!(
            minbft.client_stuck(),
            "MinBFT f={f} should leave the client stuck"
        );

        let flexibft = responsiveness_attack(ProtocolId::FlexiBft, f);
        assert!(
            flexibft.client_responsive(),
            "Flexi-BFT f={f} should stay responsive"
        );

        let pbft = responsiveness_attack(ProtocolId::Pbft, f);
        assert!(
            pbft.client_responsive(),
            "PBFT f={f} should stay responsive"
        );
    }
}

#[test]
fn section6_rollback_breaks_minbft_safety_but_not_flexibft() {
    let minbft = rollback_attack_minbft(2, TrustedHardware::default_enclave());
    assert!(minbft.safety_violated);
    assert_ne!(minbft.digests.0, minbft.digests.1);

    let flexibft = rollback_attack_flexibft(2, TrustedHardware::default_enclave());
    assert!(!flexibft.safety_violated);

    // Rollback-protected hardware stops the attack outright (at the cost of
    // its access latency — the Figure 8 trade-off).
    let protected = rollback_attack_minbft(2, TrustedHardware::typical_persistent_counter());
    assert!(!protected.rollback_succeeded);
    assert!(!protected.safety_violated);
}

#[test]
fn section7_out_of_order_proposals_are_rejected_by_trust_bft_counters_only() {
    for f in [1usize, 2] {
        let (minbft, flexizz) = out_of_order_probe(f);
        assert!(minbft.tc_rejections >= 1, "MinBFT f={f}");
        assert_eq!(flexizz.tc_rejections, 0, "Flexi-ZZ f={f}");
        assert!(flexizz.both_executed, "Flexi-ZZ f={f}");
    }
}
