//! Property-based tests over the cross-crate invariants the protocols rely
//! on: trusted-counter monotonicity, attestation unforgeability under
//! arbitrary tampering, deterministic execution, and consensus safety of
//! Flexi-BFT under arbitrary message reorderings.

use flexitrust::core::flexi_bft;
use flexitrust::crypto::make_batch;
use flexitrust::prelude::*;
use flexitrust::protocol::{Message, Outbox};
use flexitrust::trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry};
use flexitrust::types::{Digest, KvOp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The trusted counter never reuses or decreases a value, no matter how
    /// the host interleaves `append`, `append_f` and `create`.
    #[test]
    fn trusted_counter_values_never_repeat(ops in proptest::collection::vec(0u8..3, 1..60)) {
        let enclave = Enclave::shared(EnclaveConfig::counter_only(ReplicaId(0), AttestationMode::Counting));
        let mut last = 0u64;
        let mut proposed = last;
        for op in ops {
            match op {
                0 => {
                    if let Ok((value, _)) = enclave.append_f(0, Digest::from_u64_tag(1)) {
                        prop_assert!(value > last);
                        last = value;
                    }
                }
                1 => {
                    proposed += 2;
                    if let Ok(att) = enclave.append(0, proposed, Digest::from_u64_tag(2)) {
                        prop_assert!(att.value > last);
                        last = att.value;
                    }
                }
                _ => {
                    // A rejected (non-monotonic) append must not change state.
                    let before = enclave.counter_value(0);
                    prop_assert!(enclave.append(0, last, Digest::ZERO).is_err() || last == 0);
                    prop_assert_eq!(enclave.counter_value(0), before);
                }
            }
        }
    }

    /// Any single-field tampering of an attestation breaks verification.
    #[test]
    fn tampered_attestations_never_verify(field in 0u8..4, delta in 1u64..1000) {
        let enclave = Enclave::shared(EnclaveConfig::counter_only(ReplicaId(1), AttestationMode::Real));
        let registry = EnclaveRegistry::deterministic(4, AttestationMode::Real);
        let (_, mut att) = enclave.append_f(0, Digest::from_u64_tag(77)).unwrap();
        registry.verify(&att).unwrap();
        match field {
            0 => att.value += delta,
            1 => att.counter += delta,
            2 => att.digest = Digest::from_u64_tag(delta),
            // Always move to a *different* host in 0..4 (the host is 1).
            _ => att.host = ReplicaId(((att.host.0 as u64 + 1 + delta % 3) % 4) as u32),
        }
        prop_assert!(registry.verify(&att).is_err());
    }

    /// Two Flexi-BFT replicas never execute different batches at the same
    /// sequence number, regardless of how an adversary duplicates, drops or
    /// reorders Prepare votes (Theorem 4).
    #[test]
    fn flexi_bft_never_executes_conflicting_batches(
        order in proptest::collection::vec(0usize..100, 0..80),
        drop_mask in proptest::collection::vec(any::<bool>(), 0..80),
    ) {
        let mut cfg = SystemConfig::for_protocol(ProtocolId::FlexiBft, 1);
        cfg.batch_size = 1;
        let mut engines = flexi_bft::build_cluster(&cfg);

        // The primary proposes three batches.
        let mut out = Outbox::new();
        let txns: Vec<Transaction> = (0..3)
            .map(|i| Transaction::new(ClientId(1), RequestId(i + 1), KvOp::Read { key: i }))
            .collect();
        engines[0].on_client_request(txns, &mut out);
        let preprepares: Vec<Message> = out.broadcasts().into_iter().cloned().collect();

        // Generate the full message pool: every preprepare and, from every
        // replica, the Prepare votes they produce when accepting them.
        let mut pool: Vec<(ReplicaId, usize, Message)> = Vec::new();
        for (i, engine) in engines.iter_mut().enumerate() {
            for pp in &preprepares {
                let mut o = Outbox::new();
                engine.on_message(ReplicaId(0), pp.clone(), &mut o);
                for m in o.broadcasts() {
                    for target in 0..cfg.n {
                        pool.push((ReplicaId(i as u32), target, m.clone()));
                    }
                }
            }
        }
        // Adversarial delivery: reorder according to `order`, drop according
        // to `drop_mask`, duplicate by wrapping around the pool.
        for (step, idx) in order.iter().enumerate() {
            if pool.is_empty() {
                break;
            }
            if drop_mask.get(step).copied().unwrap_or(false) {
                continue;
            }
            let (from, target, msg) = pool[idx % pool.len()].clone();
            let mut o = Outbox::new();
            engines[target].on_message(from, msg, &mut o);
        }

        // Safety: for each sequence number, all replicas that executed it
        // executed the same batch digest (tracked via accepted proposals).
        for seq in 1..=3u64 {
            let digests: Vec<Digest> = engines
                .iter()
                .filter(|e| e.last_executed() >= SeqNum(seq))
                .filter_map(|e| e.flexi().accepted(SeqNum(seq)).map(|a| a.digest))
                .collect();
            for pair in digests.windows(2) {
                prop_assert_eq!(pair[0], pair[1]);
            }
        }
    }

    /// Batches produced by the crypto helper always carry their own digest.
    #[test]
    fn batch_digests_are_self_consistent(keys in proptest::collection::vec(any::<u64>(), 1..50)) {
        let txns: Vec<Transaction> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Transaction::new(ClientId(1), RequestId(i as u64), KvOp::Read { key: *k }))
            .collect();
        let batch = make_batch(txns);
        prop_assert_eq!(batch.digest(), flexitrust::crypto::digest_batch(batch.txns()));
    }
}
