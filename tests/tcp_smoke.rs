//! Loopback-TCP transport smoke test: a small Flexi-BFT workload over real
//! sockets, guarded by a hard in-process watchdog.
//!
//! A transport deadlock (a blocking send cycle, a reader that never
//! drains, a shutdown that never joins) would otherwise *hang* the test
//! binary until the CI job times out, burning the whole job budget to
//! report nothing. The watchdog aborts the process with a diagnostic
//! instead, and the CI step additionally wraps the run in a `timeout` so
//! even an abort-proof wedge fails the step fast.

use flexitrust::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aborts the whole process if `done` is not raised within `limit` —
/// a hang must fail loudly, not outlive the test harness.
fn watchdog(limit: Duration, done: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let step = Duration::from_millis(200);
        let mut waited = Duration::ZERO;
        while waited < limit {
            if done.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(step);
            waited += step;
        }
        eprintln!("tcp_smoke: transport deadlock suspected after {limit:?}; aborting");
        std::process::abort();
    });
}

#[test]
fn flexi_bft_smoke_workload_over_real_sockets() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog(Duration::from_secs(90), Arc::clone(&done));

    let cluster = TcpCluster::start(ProtocolId::FlexiBft, 1, 10).expect("cluster starts");
    let summary = cluster.run_workload(200, 8, Duration::from_secs(60));
    cluster.shutdown();

    assert_eq!(summary.completed_txns, 200);
    assert!(summary.throughput_tps > 0.0);
    // The smoke workload is far below every queue bound: a drop here means
    // the transport is shedding load it has no business shedding.
    assert_eq!(summary.dropped_messages, 0);
    done.store(true, Ordering::SeqCst);
}
