//! Sharded-execution determinism pins.
//!
//! The execution queue may scatter committed batches across shard workers
//! (see `flexitrust::exec::ShardedExecutor`), but the contract is exact:
//! for ANY shard count, ANY worker count and ANY submission order, every
//! per-op `KvResult` and the store's `state_digest()` must be bit-identical
//! to single-threaded in-order execution. These property tests drive random
//! batch streams — conflicting keys, every op type including cross-shard
//! `Scan`s (which take the serial lane), out-of-order submission — through
//! serial and parallel queues and compare everything.

use flexitrust::exec::{ExecutionQueue, KvStore};
use flexitrust::types::{Batch, ClientId, Digest, KvOp, KvResult, RequestId, SeqNum, Transaction};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

type Gen = rand::rngs::StdRng;

/// Small key space so random batches conflict constantly — the worst case
/// for a parallel executor and the interesting one for determinism.
const KEYS: u64 = 61;

fn gen_op(rng: &mut Gen, allow_scan: bool) -> KvOp {
    let key = rng.gen_range(0..KEYS);
    let value = |rng: &mut Gen| {
        let len = rng.gen_range(1usize..24);
        (0..len)
            .map(|_| rng.gen::<u64>() as u8)
            .collect::<Vec<u8>>()
            .into()
    };
    match rng.gen_range(0u32..if allow_scan { 6 } else { 5 }) {
        0 => KvOp::Read { key },
        1 => KvOp::Update {
            key,
            value: value(rng),
        },
        2 => KvOp::Insert {
            key,
            value: value(rng),
        },
        3 => KvOp::ReadModifyWrite {
            key,
            value: value(rng),
        },
        4 => KvOp::Noop,
        _ => KvOp::Scan {
            start_key: key,
            count: rng.gen_range(1..12),
        },
    }
}

fn gen_batches(rng: &mut Gen, batches: usize) -> Vec<Batch> {
    (0..batches)
        .map(|b| {
            let txns: Vec<Transaction> = (0..rng.gen_range(1usize..8))
                .map(|t| {
                    Transaction::new(
                        ClientId(b as u64 + 1),
                        RequestId(t as u64 + 1),
                        gen_op(rng, true),
                    )
                })
                .collect();
            Batch::new(txns, Digest::from_u64_tag(b as u64 + 1))
        })
        .collect()
}

/// Executes `batches` at seqs 1.. in `submission` order and returns every
/// per-op result (in sequence/batch order) plus the final state digest.
fn run(
    batches: &[Batch],
    submission: &[usize],
    shards: usize,
    workers: usize,
) -> (Vec<(SeqNum, Vec<KvResult>)>, Digest) {
    let mut store = KvStore::with_dataset(KEYS, 8);
    store.reshard(shards);
    let mut queue = ExecutionQueue::with_workers(store, workers);
    let mut executed = Vec::new();
    for &index in submission {
        for done in queue.submit(SeqNum(index as u64 + 1), batches[index].clone()) {
            executed.push((
                done.seq,
                done.outcomes.into_iter().map(|o| o.result).collect(),
            ));
        }
    }
    executed.sort_by_key(|(seq, _)| *seq);
    (executed, queue.state_digest())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole pin: sharded parallel execution is observationally
    /// identical to serial execution for every (shard, worker) config and
    /// any out-of-order submission pattern.
    #[test]
    fn sharded_execution_equals_serial(seed in any::<u64>()) {
        let mut rng = Gen::seed_from_u64(seed);
        let batch_count = rng.gen_range(4usize..16);
        let batches = gen_batches(&mut rng, batch_count);

        // Reference: serial queue, in-order submission.
        let in_order: Vec<usize> = (0..batches.len()).collect();
        let (want, want_digest) = run(&batches, &in_order, 1, 1);
        prop_assert_eq!(want.len(), batches.len());

        // A random submission permutation exercises group draining: a late
        // head unblocks a multi-batch run executed as one scatter/gather.
        let mut shuffled = in_order.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }

        for &shards in &[1usize, 2, 8, 13] {
            for &workers in &[1usize, 2, 4] {
                for submission in [&in_order, &shuffled] {
                    let (got, got_digest) = run(&batches, submission, shards, workers);
                    prop_assert_eq!(
                        &got, &want,
                        "results diverge: shards={} workers={}", shards, workers
                    );
                    prop_assert_eq!(
                        got_digest, want_digest,
                        "digest diverges: shards={} workers={}", shards, workers
                    );
                }
            }
        }
    }

    /// The serial Scan lane composes with parallel segments: batches that
    /// are pure scans interleaved with write-heavy batches still execute
    /// in exact sequence order.
    #[test]
    fn scan_lane_interleaves_deterministically(seed in any::<u64>()) {
        let mut rng = Gen::seed_from_u64(seed);
        let batches: Vec<Batch> = (0..10)
            .map(|b| {
                let op = if b % 3 == 2 {
                    KvOp::Scan { start_key: rng.gen_range(0..KEYS), count: 8 }
                } else {
                    gen_op(&mut rng, false)
                };
                Batch::new(
                    vec![Transaction::new(ClientId(1), RequestId(b as u64 + 1), op)],
                    Digest::from_u64_tag(b as u64 + 1),
                )
            })
            .collect();
        // Submit everything except seq 1, then unblock: the whole stream
        // drains as one group with scan batches splitting the segments.
        let submission: Vec<usize> = (1..batches.len()).chain([0]).collect();
        let in_order: Vec<usize> = (0..batches.len()).collect();
        let (want, want_digest) = run(&batches, &in_order, 1, 1);
        let (got, got_digest) = run(&batches, &submission, 8, 4);
        prop_assert_eq!(got, want);
        prop_assert_eq!(got_digest, want_digest);
    }
}
