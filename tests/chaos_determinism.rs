//! Chaos determinism pins.
//!
//! A [`ChaosPlan`] is a *deterministic* adversary: every probabilistic link
//! fate comes from the plan's own seeded ChaCha stream and every scripted
//! event fires at a fixed virtual time, so an identical plan must reproduce
//! a bit-identical run — same event schedule, same message count, same
//! commit sequence, same per-replica execution frontiers. These property
//! tests drive random seeds through a crash-recovery plan with link chaos
//! (drop + duplicate + reorder) and compare everything across repeated runs
//! and across execution-worker counts.

use flexitrust::prelude::*;
use flexitrust::sim::CommittedTxn;
use flexitrust::types::Digest;
use proptest::prelude::*;

/// A crash-recovery plan with link chaos on every message class: replica 3
/// crashes mid-run and rejoins via checkpoint state transfer while the
/// network duplicates and reorders a few messages per thousand. Drops are
/// deliberately off *here*: with one replica crashed the remaining quorum
/// has zero slack, so a single dropped vote can legitimately wedge the run
/// (votes are never retransmitted) — the drop path's determinism is pinned
/// separately in the runner's own seed-reproducibility test.
fn chaos_spec(seed: u64, exec_workers: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
    spec.exec_workers = exec_workers;
    spec.checkpoint_interval = Some(10);
    spec.chaos = ChaosPlan::crash_then_recover(seed, ReplicaId(3), 60_000_000, 110_000_000)
        .with_link(LinkChaos {
            duplicate_per_10k: 30,
            reorder_per_10k: 60,
            reorder_max_delay_us: 400,
            ..LinkChaos::default()
        });
    spec
}

/// Everything a chaos run observably is: the event schedule length, the
/// delivered-message count, the commit sequence and the replica frontiers.
type Fingerprint = (u64, u64, Vec<CommittedTxn>, Vec<(u64, Option<Digest>)>);

fn fingerprint(report: &SimReport) -> Fingerprint {
    (
        report.events_processed,
        report.messages_delivered,
        report.commit_log.clone(),
        report.replica_frontiers.clone(),
    )
}

proptest! {
    // Each case runs several full simulations; a handful of random seeds is
    // plenty to pin the "no hidden entropy" contract.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole pin: the same chaos seed reproduces a bit-identical
    /// run, including the faults it injected and the recovery it drove.
    #[test]
    fn same_chaos_seed_reproduces_the_identical_run(seed in any::<u64>()) {
        let first = Simulation::new(chaos_spec(seed, 1)).run();
        // Reordering may legitimately cost liveness for some seeds: the
        // engines assume FIFO links (attested counter values must arrive in
        // order), so an out-of-order vote can be rejected and is never
        // retransmitted. Safety, however, must survive ANY chaos — equal
        // execution frontiers always agree on the state digest.
        if let Err(violation) = first.check_chaos_invariants() {
            prop_assert!(
                violation.starts_with("liveness"),
                "safety must hold under any chaos: {}", violation
            );
        }
        let second = Simulation::new(chaos_spec(seed, 1)).run();
        prop_assert_eq!(fingerprint(&first), fingerprint(&second));
    }

    /// Execution-worker count is a pure parallelism knob even under chaos:
    /// the commit sequence and the per-replica frontiers (with their state
    /// digests) never depend on it.
    #[test]
    fn exec_worker_count_never_changes_a_chaos_run(seed in any::<u64>()) {
        let serial = Simulation::new(chaos_spec(seed, 1)).run();
        for workers in [2usize, 4] {
            let sharded = Simulation::new(chaos_spec(seed, workers)).run();
            prop_assert_eq!(
                &serial.commit_log, &sharded.commit_log,
                "commit log diverges with {} exec workers", workers
            );
            prop_assert_eq!(
                &serial.replica_frontiers, &sharded.replica_frontiers,
                "frontiers/digests diverge with {} exec workers", workers
            );
        }
    }
}
