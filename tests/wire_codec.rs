//! The codec pin: for *every* `Message` variant (and `ClientReply` /
//! submission frames), generated with arbitrary payloads,
//!
//! * `decode(encode(m)) == m` — the canonical codec round-trips
//!   losslessly, and
//! * `encode(m).len() == m.wire_size_bytes()` — the byte count the
//!   simulator's bandwidth and per-byte CPU models charge is exactly the
//!   byte count the TCP transport puts on the socket.
//!
//! The second property is what makes the codec the ground truth of the
//! performance model: before it, `wire_size_bytes()` was a hand-maintained
//! estimate with nothing pinning it to reality, and it had drifted (ops
//! were over-counted, length prefixes and presence flags under-counted).

use flexitrust::prelude::*;
use flexitrust::protocol::PreparedProof;
use flexitrust::trusted::{AttestKind, Attestation};
use flexitrust::types::{Batch, Digest, KvOp, KvResult};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

type Gen = rand::rngs::StdRng;

fn gen_digest(rng: &mut Gen) -> Digest {
    Digest::from_u64_tag(rng.gen::<u64>())
}

fn gen_op(rng: &mut Gen) -> KvOp {
    let value = |rng: &mut Gen| {
        let len = rng.gen_range(0usize..64);
        (0..len)
            .map(|_| rng.gen::<u64>() as u8)
            .collect::<Vec<u8>>()
    };
    match rng.gen_range(0u32..6) {
        0 => KvOp::Read { key: rng.gen() },
        1 => KvOp::Update {
            key: rng.gen(),
            value: value(rng).into(),
        },
        2 => KvOp::Insert {
            key: rng.gen(),
            value: value(rng).into(),
        },
        3 => KvOp::ReadModifyWrite {
            key: rng.gen(),
            value: value(rng).into(),
        },
        4 => KvOp::Scan {
            start_key: rng.gen(),
            count: rng.gen::<u64>() as u32,
        },
        _ => KvOp::Noop,
    }
}

fn gen_txn(rng: &mut Gen) -> Transaction {
    Transaction::new(ClientId(rng.gen()), RequestId(rng.gen()), gen_op(rng))
}

fn gen_batch(rng: &mut Gen) -> Batch {
    let len = rng.gen_range(0usize..8);
    Batch::new((0..len).map(|_| gen_txn(rng)).collect(), gen_digest(rng))
}

fn gen_attestation(rng: &mut Gen) -> Attestation {
    let mut sig = [0u8; 64];
    rng.fill(&mut sig[..]);
    Attestation {
        host: ReplicaId(rng.gen::<u64>() as u32),
        counter: rng.gen(),
        value: rng.gen(),
        digest: gen_digest(rng),
        kind: match rng.gen_range(0u32..3) {
            0 => AttestKind::CounterBind,
            1 => AttestKind::CounterCreate,
            _ => AttestKind::LogSlot,
        },
        signature: flexitrust::crypto::Signature(sig),
    }
}

fn gen_att_opt(rng: &mut Gen) -> Option<Attestation> {
    if rng.gen::<u64>() & 1 == 0 {
        Some(gen_attestation(rng))
    } else {
        None
    }
}

/// One arbitrary message of the given variant (0..10, in kind-tag order),
/// with payload collections of arbitrary small sizes.
fn gen_message(variant: usize, rng: &mut Gen) -> Message {
    match variant {
        0 => Message::PrePrepare {
            view: View(rng.gen()),
            seq: SeqNum(rng.gen()),
            batch: gen_batch(rng),
            attestation: gen_att_opt(rng),
        },
        1 => Message::Prepare {
            view: View(rng.gen()),
            seq: SeqNum(rng.gen()),
            digest: gen_digest(rng),
            attestation: gen_att_opt(rng),
        },
        2 => Message::Commit {
            view: View(rng.gen()),
            seq: SeqNum(rng.gen()),
            digest: gen_digest(rng),
            attestation: gen_att_opt(rng),
        },
        3 => Message::Checkpoint {
            seq: SeqNum(rng.gen()),
            state_digest: gen_digest(rng),
            attestation: gen_att_opt(rng),
        },
        4 => Message::ViewChange {
            new_view: View(rng.gen()),
            last_stable: SeqNum(rng.gen()),
            prepared: (0..rng.gen_range(0usize..4))
                .map(|_| PreparedProof {
                    view: View(rng.gen()),
                    seq: SeqNum(rng.gen()),
                    digest: gen_digest(rng),
                    batch: gen_batch(rng),
                    attestation: gen_att_opt(rng),
                    prepare_votes: rng.gen::<u64>() as u32 as usize,
                })
                .collect(),
        },
        5 => Message::NewView {
            view: View(rng.gen()),
            supporting_votes: rng.gen::<u64>() as u32 as usize,
            proposals: (0..rng.gen_range(0usize..4))
                .map(|_| (SeqNum(rng.gen()), gen_batch(rng), gen_att_opt(rng)))
                .collect(),
            counter_attestation: gen_att_opt(rng),
        },
        6 => Message::ClientRetry { txn: gen_txn(rng) },
        7 => Message::ForwardRequest {
            txns: (0..rng.gen_range(0usize..6))
                .map(|_| gen_txn(rng))
                .collect(),
        },
        8 => Message::CheckpointRequest {
            last_executed: SeqNum(rng.gen()),
        },
        _ => Message::CheckpointState {
            seq: SeqNum(rng.gen()),
            snapshot: flexitrust::types::StateSnapshot {
                entries: (0..rng.gen_range(0usize..6))
                    .map(|_| {
                        let len = rng.gen_range(0usize..48);
                        (
                            rng.gen(),
                            (0..len)
                                .map(|_| rng.gen::<u64>() as u8)
                                .collect::<Vec<u8>>()
                                .into(),
                        )
                    })
                    .collect(),
                applied_mutations: rng.gen(),
                fingerprint: rng.gen(),
            },
            batches: (0..rng.gen_range(0usize..4))
                .map(|_| (SeqNum(rng.gen()), gen_batch(rng)))
                .collect(),
        },
    }
}

fn gen_result(rng: &mut Gen) -> KvResult {
    match rng.gen_range(0u32..5) {
        0 => KvResult::Value(None),
        1 => {
            let len = rng.gen_range(0usize..128);
            KvResult::Value(Some(
                (0..len)
                    .map(|_| rng.gen::<u64>() as u8)
                    .collect::<Vec<u8>>()
                    .into(),
            ))
        }
        2 => KvResult::Written,
        3 => KvResult::Noop,
        _ => KvResult::Range(
            (0..rng.gen_range(0usize..5))
                .map(|_| {
                    let len = rng.gen_range(0usize..32);
                    (
                        rng.gen(),
                        (0..len)
                            .map(|_| rng.gen::<u64>() as u8)
                            .collect::<Vec<u8>>()
                            .into(),
                    )
                })
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Round-trip and length pin over every message variant: `variant`
    /// sweeps the codec's kind tags, `seed` drives arbitrary payloads.
    #[test]
    fn every_message_variant_round_trips_at_its_pinned_size(
        variant in 0usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = Gen::seed_from_u64(seed);
        let msg = gen_message(variant, &mut rng);
        let from = ReplicaId(rng.gen::<u64>() as u32);
        let bytes = encode_message(from, &msg);
        prop_assert!(
            bytes.len() == msg.wire_size_bytes(),
            "{}: encoded {} bytes, wire_size_bytes says {}",
            msg.kind(),
            bytes.len(),
            msg.wire_size_bytes()
        );
        let (decoded_from, decoded) = decode_message(&bytes)
            .map_err(|e| proptest::TestCaseError::fail(format!("{}: {e}", msg.kind())))?;
        prop_assert_eq!(decoded_from, from);
        prop_assert_eq!(decoded, msg);
    }

    /// The memoized payload sizes are the codec's encoded lengths:
    /// `Transaction::wire_size()` (O(1) from the op) equals its encoded
    /// frame, and `Batch::wire_size()` (computed once at construction)
    /// equals the digest + count prefix + every member transaction's
    /// encoding. The canonical-bytes memo is stable — repeated calls
    /// return the same buffer — and agrees with an unmemoized twin.
    #[test]
    fn memoized_sizes_and_canonical_bytes_match_the_codec(seed in any::<u64>()) {
        let mut rng = Gen::seed_from_u64(seed);
        let txn = gen_txn(&mut rng);
        let mut encoded = Vec::new();
        flexitrust::wire::encode_transaction(&mut encoded, &txn);
        prop_assert_eq!(encoded.len(), txn.wire_size());

        let batch = gen_batch(&mut rng);
        let mut batch_len = 32 + 4;
        for t in batch.txns() {
            let mut buf = Vec::new();
            flexitrust::wire::encode_transaction(&mut buf, t);
            batch_len += buf.len();
        }
        prop_assert_eq!(batch_len, batch.wire_size());

        // The memo returns the same allocation on every call…
        let first = txn.canonical_bytes().as_ptr();
        let second = txn.canonical_bytes().as_ptr();
        prop_assert!(std::ptr::eq(first, second));
        // …and matches a freshly computed twin byte for byte.
        let twin = Transaction::new(txn.client(), txn.request(), txn.op().clone());
        prop_assert_eq!(txn.canonical_bytes(), twin.canonical_bytes());

        // Clones share the payload allocation — the zero-copy invariant.
        prop_assert!(batch.clone().shares_payload(&batch));
    }

    /// The same two pins for client replies (every result shape) and
    /// submission frames.
    #[test]
    fn replies_and_submissions_round_trip_at_their_pinned_sizes(
        seed in any::<u64>(),
        speculative in any::<bool>(),
    ) {
        let mut rng = Gen::seed_from_u64(seed);
        let reply = flexitrust::protocol::ClientReply {
            client: ClientId(rng.gen()),
            request: RequestId(rng.gen()),
            seq: SeqNum(rng.gen()),
            view: View(rng.gen()),
            replica: ReplicaId(rng.gen::<u64>() as u32),
            result: gen_result(&mut rng),
            speculative,
        };
        let frame = Frame::Reply { reply: reply.clone() };
        let bytes = encode_frame(&frame);
        prop_assert_eq!(bytes.len(), reply.wire_size_bytes());
        let decoded = decode_frame(&bytes)
            .map_err(|e| proptest::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(decoded, frame);

        let txns: Vec<Transaction> =
            (0..rng.gen_range(0usize..8)).map(|_| gen_txn(&mut rng)).collect();
        let frame = Frame::Submit { txns: txns.clone() };
        let bytes = encode_frame(&frame);
        prop_assert_eq!(bytes.len(), client_upload_wire_size(&txns));
        let decoded = decode_frame(&bytes)
            .map_err(|e| proptest::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(decoded, frame);
    }

    /// Flipping any single payload byte of a frame must never round-trip
    /// back to the original message (the codec is injective on the bytes
    /// it reads) — corrupted-but-decodable frames may exist, silently
    /// equal ones may not. Restricted to the vote variants (Prepare,
    /// Commit), the only frames in which *every* byte is interpreted:
    /// batch-carrying frames contain client-signature slots and variants
    /// without a view/seq pair contain zeroed header slots that, like the
    /// trailing MAC, are carried rather than read by the in-process
    /// transports, so flips there are legitimately invisible.
    #[test]
    fn no_silent_single_byte_corruption(
        variant in 1usize..3,
        seed in any::<u64>(),
        flip in 4usize..256,
    ) {
        let mut rng = Gen::seed_from_u64(seed);
        let msg = gen_message(variant, &mut rng);
        let from = ReplicaId(7);
        let bytes = encode_message(from, &msg);
        // Skip the length prefix (corrupting framing is the stream layer's
        // problem) and the trailing MAC slot.
        let payload_end = bytes.len() - 32;
        if flip >= payload_end {
            return Ok(());
        }
        let mut corrupted = bytes.clone();
        corrupted[flip] ^= 0x01;
        match decode_frame(&corrupted) {
            Err(_) => {}
            Ok(Frame::Peer { from: f, msg: m }) => {
                prop_assert!(
                    f != from || m != msg,
                    "byte {flip} of a {} frame flipped silently",
                    msg.kind()
                );
            }
            Ok(_) => {}
        }
    }
}

/// The attestation encoding is pinned to the trusted substrate's declared
/// size — the constant both `wire_size_bytes` and the enclave cost model
/// build on.
#[test]
fn attestation_encoding_matches_declared_wire_size() {
    let mut rng = Gen::seed_from_u64(7);
    for _ in 0..32 {
        let att = gen_attestation(&mut rng);
        let mut bytes = Vec::new();
        flexitrust::wire::encode_attestation(&mut bytes, &att);
        assert_eq!(bytes.len(), Attestation::WIRE_SIZE);
        assert_eq!(bytes.len(), att.wire_size());
        assert_eq!(flexitrust::wire::decode_attestation(&bytes).unwrap(), att);
    }
}
