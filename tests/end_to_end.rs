//! End-to-end integration tests: every protocol commits a real workload on
//! the threaded runtime with real Ed25519 crypto and software enclaves.

use flexitrust::prelude::*;
use std::time::Duration;

fn run(protocol: ProtocolId, txns: usize) -> ClusterSummary {
    let cluster = Cluster::start(protocol, 1, 10);
    let summary = cluster.run_workload(txns, 5, Duration::from_secs(60));
    cluster.shutdown();
    summary
}

#[test]
fn flexitrust_protocols_commit_end_to_end() {
    for protocol in [ProtocolId::FlexiBft, ProtocolId::FlexiZz] {
        let summary = run(protocol, 200);
        assert_eq!(summary.completed_txns, 200, "{protocol}");
    }
}

#[test]
fn trust_bft_baselines_commit_end_to_end() {
    for protocol in [ProtocolId::MinBft, ProtocolId::MinZz, ProtocolId::PbftEa] {
        let summary = run(protocol, 100);
        assert_eq!(summary.completed_txns, 100, "{protocol}");
    }
}

#[test]
fn bft_baselines_commit_end_to_end() {
    for protocol in [ProtocolId::Pbft, ProtocolId::Zyzzyva] {
        let summary = run(protocol, 100);
        assert_eq!(summary.completed_txns, 100, "{protocol}");
    }
}

#[test]
fn sequential_ablations_commit_end_to_end() {
    for protocol in [
        ProtocolId::OFlexiBft,
        ProtocolId::OFlexiZz,
        ProtocolId::OpbftEa,
    ] {
        let summary = run(protocol, 60);
        assert_eq!(summary.completed_txns, 60, "{protocol}");
    }
}
