//! The serialising FIFO link model: property tests over the two-ended
//! queues (egress chunking, ingress fan-in), the broadcast fan-out
//! acceptance criterion, and the regression pins that `chunk_bytes: None`
//! plus unlimited ingress reproduce the sender-side-only (PR 2) schedule
//! bit-exactly — both on the pure-latency path and on bandwidth-constrained
//! links.

use flexitrust::prelude::*;
use proptest::prelude::*;

const NIC: Nic = Nic::Replica(ReplicaId(0));
const TX: Direction = Direction::Egress;
const RX: Direction = Direction::Ingress;

fn tt(mbps: u64, bytes: usize) -> u64 {
    BandwidthConfig::transmit_time_ns(Some(mbps), bytes)
}

// ---------------------------------------------------------------------------
// Queue-level properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Per-link delivery is FIFO: however ready times and transfer sizes
    /// interleave, completion times come out in reservation order, each
    /// transfer starts no earlier than its ready time, and the wire is
    /// never occupied by two transfers at once.
    #[test]
    fn link_transfers_complete_in_fifo_order(
        ready_deltas in proptest::collection::vec(0u64..5_000, 1..60),
        transmits in proptest::collection::vec(1u64..2_000, 1..60),
    ) {
        let mut queue = LinkQueues::new();
        let mut ready = 0u64;
        let mut last_done = 0u64;
        for (i, delta) in ready_deltas.iter().enumerate() {
            // Ready times move forward like a simulation clock would.
            ready += delta;
            let transmit = transmits[i % transmits.len()];
            let done = queue.reserve(NIC, LinkClass::Wan, TX, ready, transmit);
            // FIFO + serialisation: the wire carries one transfer at a
            // time, so a reservation completes a full transmit time after
            // the previous completion (or later), and never before its own
            // ready time plus its own wire time.
            prop_assert!(done >= last_done + transmit);
            prop_assert!(done >= ready + transmit);
            last_done = done;
        }
        // Occupancy accounting matches what was pushed through the wire.
        let usage = queue.usage();
        prop_assert_eq!(usage.len(), 1);
        prop_assert_eq!(usage[0].messages, ready_deltas.len() as u64);
    }

    /// Delivery time is monotone in queue depth: enqueueing extra earlier
    /// traffic can only delay (never speed up) a subsequent transfer.
    #[test]
    fn delivery_time_is_monotone_in_queue_depth(
        depth in 1usize..40,
        transmit in 1u64..10_000,
    ) {
        let probe_ready = 1_000u64;
        let mut shallow = LinkQueues::new();
        let mut deep = LinkQueues::new();
        for k in 0..depth {
            // The deep queue carries `depth` earlier copies; the shallow one
            // only the first.
            if k == 0 {
                shallow.reserve(NIC, LinkClass::Wan, TX, 0, transmit);
            }
            deep.reserve(NIC, LinkClass::Wan, TX, 0, transmit);
        }
        let shallow_done = shallow.reserve(NIC, LinkClass::Wan, TX, probe_ready, transmit);
        let deep_done = deep.reserve(NIC, LinkClass::Wan, TX, probe_ready, transmit);
        prop_assert!(deep_done >= shallow_done);
        // With the k-th copy behind k − 1 earlier ones, the backlog is exact.
        prop_assert_eq!(
            deep_done,
            (depth as u64 * transmit).max(probe_ready) + transmit
        );
    }

    /// Chunking is pure pipelining, never overhead: with no competing
    /// traffic arriving mid-transfer, an MTU-chunked transfer — each chunk
    /// reserved when the previous one clears the wire, chunk times cut as
    /// cumulative differences — completes at exactly the instant the atomic
    /// reservation would, for any chunk size, bandwidth and pre-existing
    /// backlog. (Per-chunk round-up must not inflate the total.)
    #[test]
    fn chunked_transfer_without_competition_matches_atomic(
        bytes in 1usize..200_000,
        chunk in 1usize..50_000,
        mbps in 1u64..10_000,
        backlog in 0u64..1_000_000,
        ready in 0u64..1_000_000,
    ) {
        let mut atomic = LinkQueues::new();
        let mut chunked = LinkQueues::new();
        if backlog > 0 {
            atomic.reserve(NIC, LinkClass::Wan, TX, 0, backlog);
            chunked.reserve(NIC, LinkClass::Wan, TX, 0, backlog);
        }
        let atomic_done = atomic.reserve(NIC, LinkClass::Wan, TX, ready, tt(mbps, bytes));
        let mut offset = 0usize;
        let mut at = ready;
        while offset < bytes {
            let end = (offset + chunk).min(bytes);
            let chunk_ns = tt(mbps, end) - tt(mbps, offset);
            at = if offset == 0 {
                chunked.reserve(NIC, LinkClass::Wan, TX, at, chunk_ns)
            } else {
                chunked.reserve_continuation(NIC, LinkClass::Wan, TX, at, chunk_ns)
            };
            offset = end;
        }
        prop_assert_eq!(at, atomic_done);
        prop_assert_eq!(chunked.total_busy_ns(), atomic.total_busy_ns());
        // `messages` counts transfers, not chunks: both models agree.
        let count = |q: &LinkQueues| q.usage().iter().map(|u| u.messages).sum::<u64>();
        prop_assert_eq!(count(&chunked), count(&atomic));
    }

    /// The point of chunking: a small control message departing while a
    /// large transfer occupies the lane is delivered **no later** than
    /// under atomic reservation — it slips between chunks instead of
    /// waiting for the last byte. (Ties in event order are resolved in the
    /// large transfer's favour, the worst case for the small message.)
    #[test]
    fn small_message_is_never_later_under_chunking(
        big_bytes in 10_000usize..500_000,
        chunk in 500usize..20_000,
        mbps in 1u64..1_000,
        small_bytes in 1usize..1_400,
        departure in 0u64..100_000_000,
    ) {
        let small_ns = tt(mbps, small_bytes);

        // Atomic: the small message queues behind the whole transfer.
        let mut q = LinkQueues::new();
        q.reserve(NIC, LinkClass::Wan, TX, 0, tt(mbps, big_bytes));
        let atomic_done = q.reserve(NIC, LinkClass::Wan, TX, departure, small_ns);

        // Chunked: replay the event order of the simulator — chunk k + 1 is
        // reserved when chunk k clears the wire; the small message's
        // reservation fires at its departure time.
        let mut q = LinkQueues::new();
        let mut offset = 0usize;
        let mut at = 0u64;
        let mut small_done = None;
        while offset < big_bytes {
            if small_done.is_none() && departure < at {
                small_done = Some(q.reserve(NIC, LinkClass::Wan, TX, departure, small_ns));
            }
            let end = (offset + chunk).min(big_bytes);
            let chunk_ns = tt(mbps, end) - tt(mbps, offset);
            at = q.reserve(NIC, LinkClass::Wan, TX, at, chunk_ns);
            offset = end;
        }
        let small_done = small_done
            .unwrap_or_else(|| q.reserve(NIC, LinkClass::Wan, TX, departure, small_ns));
        prop_assert!(
            small_done <= atomic_done,
            "chunked {small_done} > atomic {atomic_done}"
        );
    }

    /// Chunked ingest is pure pipelining, never overhead: with no
    /// competing arrivals, a chunked rx reservation — first chunk
    /// backdated by the whole ingest wire time exactly like the atomic
    /// one, continuations reserved as each chunk clears, spans cut as
    /// cumulative differences — completes at exactly the instant the
    /// atomic reservation would, for any chunk size, bandwidth and
    /// pre-existing ingest backlog.
    #[test]
    fn chunked_ingest_without_competition_matches_atomic(
        bytes in 1usize..200_000,
        chunk in 1usize..50_000,
        mbps in 1u64..10_000,
        backlog in 0u64..1_000_000,
        arrival in 0u64..1_000_000,
    ) {
        let rx_ns = tt(mbps, bytes);
        // Stay clear of the clock-0 backdating saturation boundary, which
        // is a start-of-run artifact rather than queue behaviour.
        let arrival = arrival.max(rx_ns);
        let mut atomic = LinkQueues::new();
        let mut chunked = LinkQueues::new();
        if backlog > 0 {
            atomic.reserve(NIC, LinkClass::Wan, RX, 0, backlog);
            chunked.reserve(NIC, LinkClass::Wan, RX, 0, backlog);
        }
        let atomic_done = atomic.reserve(NIC, LinkClass::Wan, RX, arrival - rx_ns, rx_ns);
        // Replay the runner's event order: the first chunk is backdated,
        // each continuation fires when its predecessor clears the lane.
        let mut offset = 0usize;
        let mut at = arrival - rx_ns;
        while offset < bytes {
            let end = (offset + chunk).min(bytes);
            let chunk_ns = tt(mbps, end) - tt(mbps, offset);
            at = if offset == 0 {
                chunked.reserve(NIC, LinkClass::Wan, RX, at, chunk_ns)
            } else {
                chunked.reserve_continuation(NIC, LinkClass::Wan, RX, at, chunk_ns)
            };
            offset = end;
        }
        prop_assert_eq!(at, atomic_done);
        prop_assert_eq!(chunked.total_busy_ns(), atomic.total_busy_ns());
        let count = |q: &LinkQueues| q.usage().iter().map(|u| u.messages).sum::<u64>();
        prop_assert_eq!(count(&chunked), count(&atomic));
    }

    /// The receive-side head-of-line fix: a small message arriving while an
    /// elephant occupies the ingest lane is delivered **no later** than
    /// under atomic rx reservation — it slips between ingest chunks
    /// instead of waiting for the elephant's last byte. (Ties in event
    /// order are resolved in the elephant's favour, the worst case for the
    /// small message.)
    #[test]
    fn small_ingest_is_never_later_under_chunking(
        big_bytes in 10_000usize..500_000,
        chunk in 500usize..20_000,
        mbps in 1u64..1_000,
        small_bytes in 1usize..1_400,
        arrival_delta in 0u64..100_000_000,
    ) {
        let big_rx = tt(mbps, big_bytes);
        let small_rx = tt(mbps, small_bytes);
        let big_arrival = big_rx; // earliest backdate-safe arrival
        let small_arrival = big_arrival.max(small_rx) + arrival_delta;

        // Atomic: the small message queues behind the whole elephant.
        let mut q = LinkQueues::new();
        q.reserve(NIC, LinkClass::Wan, RX, big_arrival - big_rx, big_rx);
        let atomic_done = q
            .reserve(NIC, LinkClass::Wan, RX, small_arrival - small_rx, small_rx)
            .max(small_arrival);

        // Chunked: replay the simulator's event order — ingest chunk k + 1
        // is reserved when chunk k clears; the small arrival fires at its
        // own event time.
        let mut q = LinkQueues::new();
        let mut offset = 0usize;
        let mut at = big_arrival - big_rx;
        let mut small_done = None;
        while offset < big_bytes {
            if small_done.is_none() && small_arrival < at {
                small_done = Some(q.reserve(
                    NIC,
                    LinkClass::Wan,
                    RX,
                    small_arrival - small_rx,
                    small_rx,
                ));
            }
            let end = (offset + chunk).min(big_bytes);
            let chunk_ns = tt(mbps, end) - tt(mbps, offset);
            at = if offset == 0 {
                q.reserve(NIC, LinkClass::Wan, RX, at, chunk_ns)
            } else {
                q.reserve_continuation(NIC, LinkClass::Wan, RX, at, chunk_ns)
            };
            offset = end;
        }
        let small_done = small_done
            .unwrap_or_else(|| {
                q.reserve(NIC, LinkClass::Wan, RX, small_arrival - small_rx, small_rx)
            })
            .max(small_arrival);
        prop_assert!(
            small_done <= atomic_done,
            "chunked rx {small_done} > atomic rx {atomic_done}"
        );
    }

    /// Receive-side fan-in: k simultaneous arrivals on one ingress lane
    /// serialise exactly — the first ingests for free (its bits streamed in
    /// while crossing the wire), the k-th completes k − 1 ingest times
    /// later — so delivery of the last vote is monotone in fan-in.
    #[test]
    fn ingress_delivery_is_monotone_in_fan_in(
        fan_in in 1usize..50,
        rx in 1u64..10_000,
        arrival in 10_000u64..1_000_000,
    ) {
        let arrival = arrival.max(rx);
        let last_delivery = |k: usize| {
            let mut q = LinkQueues::new();
            let mut last = 0u64;
            for _ in 0..k {
                last = q.reserve(NIC, LinkClass::Wan, RX, arrival - rx, rx);
            }
            last
        };
        let with_k = last_delivery(fan_in);
        prop_assert_eq!(with_k, arrival + (fan_in as u64 - 1) * rx);
        prop_assert!(last_delivery(fan_in + 1) >= with_k);
    }
}

// ---------------------------------------------------------------------------
// Broadcast fan-out: the acceptance criterion, against the real WAN model.
// ---------------------------------------------------------------------------

/// With finite leader-NIC bandwidth, the k-th copy of a broadcast queues
/// behind the first k − 1: total transmission time scales linearly with
/// fan-out instead of being paid once, concurrently, per destination.
#[test]
fn broadcast_transmission_time_scales_with_fan_out() {
    let n = 25;
    let net = NetworkModel::wan(n, 6).with_bandwidth(BandwidthConfig::wan_constrained(100));
    let mut queue = LinkQueues::new();
    let leader = ReplicaId(0);
    let bytes = 100_000; // a 100 kB pre-prepare
    let departure = 5_000u64;
    let mut wan_completions = Vec::new();
    for peer in 1..n {
        let to = ReplicaId(peer as u32);
        let transmit = net.replica_transmit_ns(leader, to, bytes);
        assert!(transmit > 0);
        let class = net.replica_link_class(leader, to);
        let done = queue.reserve(
            Nic::Replica(leader),
            class,
            Direction::Egress,
            departure,
            transmit,
        );
        if class == LinkClass::Wan {
            wan_completions.push(done);
        }
    }
    // Copies on the same link class leave the wire strictly one after
    // another (the fast local lane is independent and does not appear
    // here)…
    let wan_transmit = BandwidthConfig::transmit_time_ns(Some(100), bytes);
    for pair in wan_completions.windows(2) {
        assert_eq!(pair[1] - pair[0], wan_transmit);
    }
    // …so the k-th WAN copy completes a full k transmit times after
    // departure: total transmission time scales with fan-out.
    let wan_copies = wan_completions.len() as u64;
    assert!(wan_copies >= 15, "six-region layout is WAN-heavy");
    assert_eq!(
        *wan_completions.last().unwrap(),
        departure + wan_copies * wan_transmit
    );
}

/// End-to-end: a bandwidth-constrained WAN run reports link contention
/// (queueing delay, busy NICs) and pays for it in client latency, while the
/// unlimited run reports none.
#[test]
fn constrained_wan_simulation_reports_queueing_and_pays_latency() {
    let run = |bandwidth: BandwidthConfig| {
        let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        spec.regions = 3;
        spec.bandwidth = bandwidth;
        spec.duration_us = 1_200_000;
        spec.warmup_us = 300_000;
        spec.clients = 400;
        Simulation::new(spec).run()
    };
    let unlimited = run(BandwidthConfig::unlimited());
    assert_eq!(unlimited.net_busy_ns, 0);
    assert_eq!(unlimited.net_queue_delay_ns, 0);
    assert!(unlimited.link_usage.is_empty());
    assert_eq!(unlimited.max_link_utilization(), 0.0);

    let tight = run(BandwidthConfig::wan_constrained(5));
    assert!(tight.completed_txns > 0);
    assert!(tight.net_busy_ns > 0, "constrained links transmit");
    assert!(
        tight.net_queue_delay_ns > 0,
        "broadcast copies must queue on the leader NIC"
    );
    assert!(tight.max_link_utilization() > 0.0);
    assert!(
        tight.avg_latency_ms > unlimited.avg_latency_ms,
        "queueing must cost latency: {} <= {}",
        tight.avg_latency_ms,
        unlimited.avg_latency_ms
    );
    // The busiest link belongs to a replica NIC (the broadcast-heavy
    // leader), not the client pool.
    let busiest = tight.busiest_link().unwrap();
    assert!(matches!(busiest.nic, Nic::Replica(_)));
    // Without an ingress bandwidth, receivers ingest for free: every
    // accounting row is an egress lane.
    assert!(tight
        .link_usage
        .iter()
        .all(|u| u.direction == Direction::Egress));
    assert_eq!(tight.max_ingress_utilization(), 0.0);
}

// ---------------------------------------------------------------------------
// Receiver-side contention, end to end: the vote implosion.
// ---------------------------------------------------------------------------

/// With an ingress bandwidth configured, replica ingest lanes become
/// measured, contended resources: ingress utilisation climbs with n (more
/// voters imploding on every NIC each batch), the run pays latency for it,
/// and on a thin enough ingest pipe the run is ingest-bound — throughput
/// drops below the receivers-ingest-for-free run.
#[test]
fn vote_implosion_serialises_on_the_leader_ingress_lane() {
    let run = |f: usize, ingress: Option<u64>| {
        let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        spec.f = f;
        spec.regions = 3;
        let mut bw = BandwidthConfig::wan_constrained(100);
        bw.ingress_mbps = ingress;
        spec.bandwidth = bw;
        spec.duration_us = 1_200_000;
        spec.warmup_us = 300_000;
        spec.clients = 400;
        Simulation::new(spec).run()
    };
    // Ingress utilisation grows with the fan-in: more replicas, more votes
    // arriving at every replica per batch.
    let mut last_util = 0.0;
    let mut free_at_f4 = None;
    for f in [1usize, 2, 4] {
        let constrained = run(f, Some(10));
        assert!(constrained.completed_txns > 0, "f={f}");
        let util = constrained.max_ingress_utilization();
        assert!(util > last_util, "f={f}: ingress util {util} did not grow");
        assert!(
            constrained
                .link_usage
                .iter()
                .any(|u| u.direction == Direction::Ingress && matches!(u.nic, Nic::Replica(_))),
            "f={f}: no replica ingress rows"
        );
        last_util = util;

        // Same topology with free ingest: no ingress rows, and the
        // ingest-paying run is never faster.
        let free = run(f, None);
        assert_eq!(free.max_ingress_utilization(), 0.0);
        assert!(
            constrained.avg_latency_ms >= free.avg_latency_ms,
            "f={f}: paying for ingest cannot reduce latency"
        );
        if f == 4 {
            free_at_f4 = Some(free);
        }
    }
    // On a 5 Mbps ingest pipe the implosion saturates replica ingress and
    // pins throughput well below the receivers-ingest-for-free run (the
    // f = 4 free run from the loop — the simulator is deterministic).
    let free = free_at_f4.expect("loop covers f = 4");
    let bound = run(4, Some(5));
    assert!(bound.max_ingress_utilization() > 0.8);
    assert!(
        bound.throughput_tps < free.throughput_tps,
        "ingest-bound {} >= free {}",
        bound.throughput_tps,
        free.throughput_tps
    );
}

/// A hand-built 0 Mbps (dead) link saturates to `u64::MAX` transmit time
/// and never delivers. Chunking must not resurrect it: cutting chunk times
/// as cumulative differences would make every chunk
/// `MAX.saturating_sub(MAX) = 0` — an infinitely *fast* dead link, the
/// exact edge case the saturation fixed in PR 2.
#[test]
fn a_dead_link_stays_dead_under_chunking() {
    let run = |chunk: Option<usize>| {
        let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        spec.regions = 3;
        spec.bandwidth = BandwidthConfig {
            wan_mbps: Some(0),
            chunk_bytes: chunk,
            ..BandwidthConfig::unlimited()
        };
        Simulation::new(spec).run()
    };
    // Cross-region quorums are unreachable over dead WAN links, chunked
    // (64 B chunks every protocol message exceeds) or not.
    assert_eq!(run(None).completed_txns, 0);
    assert_eq!(run(Some(64)).completed_txns, 0);
}

// ---------------------------------------------------------------------------
// Chunked pipelining, end to end: elephants no longer block mice.
// ---------------------------------------------------------------------------

/// Mixed elephant/mouse traffic on a constrained lane (the shared
/// `flexitrust_bench::mixed_elephant_spec` scenario, also gated in the CI
/// bench smoke run): occasional large range-scan replies share each
/// replica's client lane with a stream of small replies. Atomic
/// reservations head-of-line block the small replies behind every
/// elephant; MTU chunking lets them slip between chunks, so tail latency
/// collapses and throughput recovers.
#[test]
fn chunking_cuts_tail_latency_under_mixed_traffic() {
    let run = |chunk: Option<usize>| {
        let mut spec =
            flexitrust_bench::mixed_elephant_spec(ScenarioSpec::quick_test(ProtocolId::FlexiBft));
        spec.bandwidth.chunk_bytes = chunk;
        Simulation::new(spec).run()
    };
    let atomic = run(None);
    let chunked = run(Some(1_500));
    assert!(atomic.completed_txns > 0 && chunked.completed_txns > 0);
    assert!(
        chunked.p99_latency_ms <= atomic.p99_latency_ms,
        "chunked p99 {} > atomic p99 {}",
        chunked.p99_latency_ms,
        atomic.p99_latency_ms
    );
    // The win is large, not marginal: elephants cost every queued mouse a
    // full transfer time without chunking.
    assert!(
        chunked.p99_latency_ms < 0.5 * atomic.p99_latency_ms,
        "chunked p99 {} vs atomic {}",
        chunked.p99_latency_ms,
        atomic.p99_latency_ms
    );
}

/// The receive-side twin of the tail-latency test (the shared
/// `flexitrust_bench::mixed_elephant_rx_spec` scenario, also gated in the
/// CI bench smoke run): with every link unlimited except replica ingest,
/// each ~200 kB PrePrepare is an elephant on the backups' ingest lanes and
/// the votes it triggers are mice on the same lanes. Atomic rx
/// reservations make a vote arriving mid-ingest wait for the elephant's
/// last byte — exactly the head-of-line blocking egress chunking was
/// supposed to remove, reintroduced on the receive side. Chunked rx lets
/// the votes slip through: p99 must not regress, and the run must not
/// starve.
#[test]
fn chunked_ingress_cuts_tail_latency_under_elephant_preprepares() {
    let run = |chunk: Option<usize>| {
        let mut spec = flexitrust_bench::mixed_elephant_rx_spec(ScenarioSpec::quick_test(
            ProtocolId::FlexiBft,
        ));
        spec.bandwidth.chunk_bytes = chunk;
        Simulation::new(spec).run()
    };
    let atomic = run(None);
    let chunked = run(Some(1_500));
    assert!(atomic.completed_txns > 0 && chunked.completed_txns > 0);
    // Both runs pay for ingest: the contended lanes are really there.
    assert!(atomic.max_ingress_utilization() > 0.5);
    assert!(chunked.max_ingress_utilization() > 0.5);
    assert!(
        chunked.p99_latency_ms <= atomic.p99_latency_ms,
        "chunked rx p99 {} > atomic rx p99 {}",
        chunked.p99_latency_ms,
        atomic.p99_latency_ms
    );
    // And the pipelining gain is real, not a tie: commits are not delayed
    // behind elephants they never needed to wait for.
    assert!(
        chunked.throughput_tps >= atomic.throughput_tps,
        "chunked rx tput {} < atomic rx tput {}",
        chunked.throughput_tps,
        atomic.throughput_tps
    );
}

// ---------------------------------------------------------------------------
// Regression pins: `chunk_bytes: None` + unlimited ingress is the PR 2
// sender-side-only schedule, bit-exactly.
// ---------------------------------------------------------------------------

/// `BandwidthConfig::unlimited()` (the `quick_test` default) must reproduce
/// the pure-latency schedule bit-exactly: identical completion counts,
/// message counts, commit logs and mean latency. The expected values are a
/// snapshot of the seed (pre-link-queue) simulator on the same
/// deterministic scenarios, re-based when `wire_size_bytes()` became the
/// canonical codec's exact encoded length (the per-byte CPU cost now
/// charges the true frame bytes, shifting schedules slightly).
#[test]
fn unlimited_bandwidth_reproduces_the_latency_only_schedule_bit_exactly() {
    struct Pin {
        protocol: ProtocolId,
        regions: usize,
        completed: u64,
        messages: u64,
        commit_len: usize,
        avg_ms: f64,
    }
    let pins = [
        Pin {
            protocol: ProtocolId::FlexiBft,
            regions: 1,
            completed: 21_900,
            messages: 52_310,
            commit_len: 26_120,
            avg_ms: 0.862938961,
        },
        Pin {
            protocol: ProtocolId::FlexiBft,
            regions: 3,
            completed: 200,
            messages: 920,
            commit_len: 400,
            avg_ms: 62.844424400,
        },
        Pin {
            protocol: ProtocolId::FlexiZz,
            regions: 1,
            completed: 27_000,
            messages: 12_946,
            commit_len: 32_230,
            avg_ms: 0.607518400,
        },
        Pin {
            protocol: ProtocolId::Pbft,
            regions: 1,
            completed: 19_310,
            messages: 83_635,
            commit_len: 23_200,
            avg_ms: 1.044994429,
        },
    ];
    for pin in pins {
        let mut spec = ScenarioSpec::quick_test(pin.protocol);
        spec.regions = pin.regions;
        let report = Simulation::new(spec).run();
        let label = format!("{} regions={}", pin.protocol, pin.regions);
        assert_eq!(report.completed_txns, pin.completed, "{label}");
        assert_eq!(report.messages_delivered, pin.messages, "{label}");
        assert_eq!(report.commit_log.len(), pin.commit_len, "{label}");
        assert!(
            (report.avg_latency_ms - pin.avg_ms).abs() < 5e-9,
            "{label}: avg {} != pinned {}",
            report.avg_latency_ms,
            pin.avg_ms
        );
        // And the queues must have stayed completely out of the way.
        assert_eq!(report.net_busy_ns, 0, "{label}");
        assert_eq!(report.net_queue_delay_ns, 0, "{label}");
    }
}

/// On *bandwidth-constrained* links, `chunk_bytes: None` plus unlimited
/// ingress must reproduce the sender-side-only atomic-reservation link
/// schedule bit-exactly: identical completions, message counts, commit
/// logs, mean latency and — byte for byte — the same wire occupancy and
/// queueing totals. The pinned values are a snapshot of that simulator on
/// the same deterministic scenarios, re-based when `wire_size_bytes()`
/// became the canonical codec's exact encoded length (links now carry the
/// true frame bytes, so occupancy totals moved with the sizes).
#[test]
fn atomic_transfers_with_free_ingest_reproduce_the_pr2_schedule_bit_exactly() {
    struct Pin {
        label: &'static str,
        spec: ScenarioSpec,
        completed: u64,
        messages: u64,
        commit_len: usize,
        avg_ms: f64,
        busy_ns: u64,
        queue_ns: u64,
    }
    let wan = |protocol: ProtocolId| {
        let mut spec = ScenarioSpec::quick_test(protocol);
        spec.regions = 3;
        spec.bandwidth = BandwidthConfig::wan_constrained(25);
        spec.duration_us = 1_200_000;
        spec.warmup_us = 300_000;
        spec.clients = 400;
        spec
    };
    let uniform = |protocol: ProtocolId| {
        let mut spec = ScenarioSpec::quick_test(protocol);
        spec.bandwidth = BandwidthConfig::uniform(50);
        spec
    };
    let pins = [
        Pin {
            label: "FlexiBft wan25",
            spec: wan(ProtocolId::FlexiBft),
            completed: 7_200,
            messages: 18_458,
            commit_len: 9_200,
            avg_ms: 62.770860101,
            busy_ns: 985_230_301,
            queue_ns: 5_795_544_287,
        },
        Pin {
            label: "Pbft wan25",
            spec: wan(ProtocolId::Pbft),
            completed: 7_120,
            messages: 31_791,
            commit_len: 8_880,
            avg_ms: 63.219711990,
            busy_ns: 1_140_925_108,
            queue_ns: 10_032_224_773,
        },
        Pin {
            label: "FlexiZz uniform50",
            spec: uniform(ProtocolId::FlexiZz),
            completed: 2_500,
            messages: 1_277,
            commit_len: 3_140,
            avg_ms: 10.609501744,
            busy_ns: 405_956_800,
            queue_ns: 10_464_940_976,
        },
    ];
    for pin in pins {
        // The PR 2 configuration in the new model's terms, stated
        // explicitly: atomic transfers, receivers ingest for free.
        assert_eq!(pin.spec.bandwidth.chunk_bytes, None);
        assert_eq!(pin.spec.bandwidth.ingress_mbps, None);
        let report = Simulation::new(pin.spec).run();
        let label = pin.label;
        assert_eq!(report.completed_txns, pin.completed, "{label}");
        assert_eq!(report.messages_delivered, pin.messages, "{label}");
        assert_eq!(report.commit_log.len(), pin.commit_len, "{label}");
        assert!(
            (report.avg_latency_ms - pin.avg_ms).abs() < 5e-9,
            "{label}: avg {} != pinned {}",
            report.avg_latency_ms,
            pin.avg_ms
        );
        assert_eq!(report.net_busy_ns, pin.busy_ns, "{label}");
        assert_eq!(report.net_queue_delay_ns, pin.queue_ns, "{label}");
        // Sender-side only: not a single ingress row may appear.
        assert!(
            report
                .link_usage
                .iter()
                .all(|u| u.direction == Direction::Egress),
            "{label}: unexpected ingress lane rows"
        );
    }
}
