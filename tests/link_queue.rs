//! The serialising FIFO link model: property tests over the queue itself,
//! the broadcast fan-out acceptance criterion, and the regression pin that
//! `BandwidthConfig::unlimited()` reproduces the latency-only schedule
//! bit-exactly.

use flexitrust::prelude::*;
use proptest::prelude::*;

const NIC: Nic = Nic::Replica(ReplicaId(0));

// ---------------------------------------------------------------------------
// Queue-level properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Per-link delivery is FIFO: however ready times and transfer sizes
    /// interleave, completion times come out in reservation order, each
    /// transfer starts no earlier than its ready time, and the wire is
    /// never occupied by two transfers at once.
    #[test]
    fn link_transfers_complete_in_fifo_order(
        ready_deltas in proptest::collection::vec(0u64..5_000, 1..60),
        transmits in proptest::collection::vec(1u64..2_000, 1..60),
    ) {
        let mut queue = LinkQueues::new();
        let mut ready = 0u64;
        let mut last_done = 0u64;
        for (i, delta) in ready_deltas.iter().enumerate() {
            // Ready times move forward like a simulation clock would.
            ready += delta;
            let transmit = transmits[i % transmits.len()];
            let done = queue.reserve(NIC, LinkClass::Wan, ready, transmit);
            // FIFO + serialisation: the wire carries one transfer at a
            // time, so a reservation completes a full transmit time after
            // the previous completion (or later), and never before its own
            // ready time plus its own wire time.
            prop_assert!(done >= last_done + transmit);
            prop_assert!(done >= ready + transmit);
            last_done = done;
        }
        // Occupancy accounting matches what was pushed through the wire.
        let usage = queue.usage();
        prop_assert_eq!(usage.len(), 1);
        prop_assert_eq!(usage[0].messages, ready_deltas.len() as u64);
    }

    /// Delivery time is monotone in queue depth: enqueueing extra earlier
    /// traffic can only delay (never speed up) a subsequent transfer.
    #[test]
    fn delivery_time_is_monotone_in_queue_depth(
        depth in 1usize..40,
        transmit in 1u64..10_000,
    ) {
        let probe_ready = 1_000u64;
        let mut shallow = LinkQueues::new();
        let mut deep = LinkQueues::new();
        for k in 0..depth {
            // The deep queue carries `depth` earlier copies; the shallow one
            // only the first.
            if k == 0 {
                shallow.reserve(NIC, LinkClass::Wan, 0, transmit);
            }
            deep.reserve(NIC, LinkClass::Wan, 0, transmit);
        }
        let shallow_done = shallow.reserve(NIC, LinkClass::Wan, probe_ready, transmit);
        let deep_done = deep.reserve(NIC, LinkClass::Wan, probe_ready, transmit);
        prop_assert!(deep_done >= shallow_done);
        // With the k-th copy behind k − 1 earlier ones, the backlog is exact.
        prop_assert_eq!(
            deep_done,
            (depth as u64 * transmit).max(probe_ready) + transmit
        );
    }
}

// ---------------------------------------------------------------------------
// Broadcast fan-out: the acceptance criterion, against the real WAN model.
// ---------------------------------------------------------------------------

/// With finite leader-NIC bandwidth, the k-th copy of a broadcast queues
/// behind the first k − 1: total transmission time scales linearly with
/// fan-out instead of being paid once, concurrently, per destination.
#[test]
fn broadcast_transmission_time_scales_with_fan_out() {
    let n = 25;
    let net = NetworkModel::wan(n, 6).with_bandwidth(BandwidthConfig::wan_constrained(100));
    let mut queue = LinkQueues::new();
    let leader = ReplicaId(0);
    let bytes = 100_000; // a 100 kB pre-prepare
    let departure = 5_000u64;
    let mut wan_completions = Vec::new();
    for peer in 1..n {
        let to = ReplicaId(peer as u32);
        let transmit = net.replica_transmit_ns(leader, to, bytes);
        assert!(transmit > 0);
        let class = net.replica_link_class(leader, to);
        let done = queue.reserve(Nic::Replica(leader), class, departure, transmit);
        if class == LinkClass::Wan {
            wan_completions.push(done);
        }
    }
    // Copies on the same link class leave the wire strictly one after
    // another (the fast local lane is independent and does not appear
    // here)…
    let wan_transmit = BandwidthConfig::transmit_time_ns(Some(100), bytes);
    for pair in wan_completions.windows(2) {
        assert_eq!(pair[1] - pair[0], wan_transmit);
    }
    // …so the k-th WAN copy completes a full k transmit times after
    // departure: total transmission time scales with fan-out.
    let wan_copies = wan_completions.len() as u64;
    assert!(wan_copies >= 15, "six-region layout is WAN-heavy");
    assert_eq!(
        *wan_completions.last().unwrap(),
        departure + wan_copies * wan_transmit
    );
}

/// End-to-end: a bandwidth-constrained WAN run reports link contention
/// (queueing delay, busy NICs) and pays for it in client latency, while the
/// unlimited run reports none.
#[test]
fn constrained_wan_simulation_reports_queueing_and_pays_latency() {
    let run = |bandwidth: BandwidthConfig| {
        let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        spec.regions = 3;
        spec.bandwidth = bandwidth;
        spec.duration_us = 1_200_000;
        spec.warmup_us = 300_000;
        spec.clients = 400;
        Simulation::new(spec).run()
    };
    let unlimited = run(BandwidthConfig::unlimited());
    assert_eq!(unlimited.net_busy_ns, 0);
    assert_eq!(unlimited.net_queue_delay_ns, 0);
    assert!(unlimited.link_usage.is_empty());
    assert_eq!(unlimited.max_link_utilization(), 0.0);

    let tight = run(BandwidthConfig::wan_constrained(5));
    assert!(tight.completed_txns > 0);
    assert!(tight.net_busy_ns > 0, "constrained links transmit");
    assert!(
        tight.net_queue_delay_ns > 0,
        "broadcast copies must queue on the leader NIC"
    );
    assert!(tight.max_link_utilization() > 0.0);
    assert!(
        tight.avg_latency_ms > unlimited.avg_latency_ms,
        "queueing must cost latency: {} <= {}",
        tight.avg_latency_ms,
        unlimited.avg_latency_ms
    );
    // The busiest link belongs to a replica NIC (the broadcast-heavy
    // leader), not the client pool.
    let busiest = tight.busiest_link().unwrap();
    assert!(matches!(busiest.nic, Nic::Replica(_)));
}

// ---------------------------------------------------------------------------
// Regression pin: unlimited bandwidth is the latency-only schedule.
// ---------------------------------------------------------------------------

/// `BandwidthConfig::unlimited()` (the `quick_test` default) must reproduce
/// the seed's pure-latency schedule bit-exactly: identical completion
/// counts, message counts, commit logs and mean latency. The expected
/// values are a snapshot of the seed (pre-link-queue) simulator on the same
/// deterministic scenarios.
#[test]
fn unlimited_bandwidth_reproduces_the_latency_only_schedule_bit_exactly() {
    struct Pin {
        protocol: ProtocolId,
        regions: usize,
        completed: u64,
        messages: u64,
        commit_len: usize,
        avg_ms: f64,
    }
    let pins = [
        Pin {
            protocol: ProtocolId::FlexiBft,
            regions: 1,
            completed: 21_900,
            messages: 52_310,
            commit_len: 26_120,
            avg_ms: 0.862943247,
        },
        Pin {
            protocol: ProtocolId::FlexiBft,
            regions: 3,
            completed: 200,
            messages: 920,
            commit_len: 400,
            avg_ms: 62.841037150,
        },
        Pin {
            protocol: ProtocolId::FlexiZz,
            regions: 1,
            completed: 27_000,
            messages: 12_946,
            commit_len: 32_230,
            avg_ms: 0.607522609,
        },
        Pin {
            protocol: ProtocolId::Pbft,
            regions: 1,
            completed: 19_300,
            messages: 83_692,
            commit_len: 23_200,
            avg_ms: 1.043954388,
        },
    ];
    for pin in pins {
        let mut spec = ScenarioSpec::quick_test(pin.protocol);
        spec.regions = pin.regions;
        let report = Simulation::new(spec).run();
        let label = format!("{} regions={}", pin.protocol, pin.regions);
        assert_eq!(report.completed_txns, pin.completed, "{label}");
        assert_eq!(report.messages_delivered, pin.messages, "{label}");
        assert_eq!(report.commit_log.len(), pin.commit_len, "{label}");
        assert!(
            (report.avg_latency_ms - pin.avg_ms).abs() < 5e-9,
            "{label}: avg {} != pinned {}",
            report.avg_latency_ms,
            pin.avg_ms
        );
        // And the queues must have stayed completely out of the way.
        assert_eq!(report.net_busy_ns, 0, "{label}");
        assert_eq!(report.net_queue_delay_ns, 0, "{label}");
    }
}
