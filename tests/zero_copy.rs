//! Zero-copy message-plane regression tests.
//!
//! The PR 5 refactor made every batch payload a single allocation shared by
//! reference through broadcast fan-out, engine acceptance, execution and
//! the runtime transports. These tests pin that invariant two ways:
//!
//! * **pointer equality** — a dispatcher broadcast hands every recipient
//!   the *same* message allocation, whose batch shares its payload with
//!   the engine's original; and
//! * **allocation counting** — `flexitrust_types::batch_payload_allocations`
//!   counts `Batch` payload constructions process-wide (clones are
//!   reference-count bumps and do not count), so an end-to-end simulator
//!   run and a threaded channel-cluster workload must allocate on the
//!   order of one payload per *logical batch*, independent of the replica
//!   fan-out. A reintroduced deep copy (one per broadcast recipient) blows
//!   straight through the bounds.
//!
//! The counter is global and libtest runs the tests in this binary on
//! parallel threads, so *every* test here — they all construct batches —
//! takes the [`SERIAL`] lock: a batch allocated by a sibling test between
//! a counter-diffing test's two readings would otherwise fail its exact
//! bounds spuriously.

use flexitrust::exec::{ExecutionQueue, KvStore};
use flexitrust::host::{Dispatcher, EngineHost, TimerToken};
use flexitrust::prelude::*;
use flexitrust::protocol::{Action, ClientReply, SharedMessage};
use flexitrust::types::{
    batch_payload_allocations, value_payload_allocations, Digest, KvOp, KvResult, SeqNum,
    ValueBytes,
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serialises the tests in this binary (see the module docs). A test
/// panicking while holding the lock poisons it; `unwrap_or_else` keeps
/// the remaining tests running (the counter stays sound — it only ever
/// increments).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// An [`EngineHost`] that captures the shared handles it is asked to send.
#[derive(Default)]
struct CapturingEnv {
    sends: Vec<(ReplicaId, SharedMessage)>,
}

impl EngineHost for CapturingEnv {
    fn send(&mut self, _from: ReplicaId, to: ReplicaId, msg: SharedMessage) {
        self.sends.push((to, msg));
    }

    fn reply(&mut self, _from: ReplicaId, _reply: ClientReply) {}

    fn schedule_timer(
        &mut self,
        _replica: ReplicaId,
        _timer: flexitrust::protocol::TimerKind,
        _delay_us: u64,
        _token: TimerToken,
    ) {
    }
}

fn big_batch() -> flexitrust::types::Batch {
    let txns: Vec<Transaction> = (0..50)
        .map(|i| {
            Transaction::new(
                ClientId(1),
                RequestId(i),
                KvOp::Update {
                    key: i,
                    value: vec![i as u8; 1024].into(),
                },
            )
        })
        .collect();
    flexitrust::crypto::make_batch(txns)
}

#[test]
fn dispatcher_broadcast_delivers_one_shared_allocation_to_every_replica() {
    let _guard = serial();
    const N: usize = 25;
    let mut dispatcher = Dispatcher::new(N);
    let mut env = CapturingEnv::default();
    let batch = big_batch();
    let msg = Message::PrePrepare {
        view: View(0),
        seq: SeqNum(1),
        batch: batch.clone(),
        attestation: None,
    };
    dispatcher.dispatch(ReplicaId(0), vec![Action::Broadcast { msg }], &mut env);

    assert_eq!(env.sends.len(), N, "broadcast reaches every replica");
    // Every recipient holds the very same message allocation…
    for pair in env.sends.windows(2) {
        assert!(
            Arc::ptr_eq(&pair[0].1, &pair[1].1),
            "broadcast recipients must share one message allocation"
        );
    }
    // …whose batch still shares its payload with the engine's original:
    // zero transaction bytes were copied on the way out.
    for (_, shared) in &env.sends {
        match &**shared {
            Message::PrePrepare { batch: sent, .. } => {
                assert!(
                    sent.shares_payload(&batch),
                    "the broadcast batch must share the original payload"
                );
            }
            other => panic!("unexpected message {}", other.kind()),
        }
    }
}

#[test]
fn payload_allocations_scale_with_batches_not_fanout() {
    let _guard = serial();
    // --- Dispatcher fan-out allocates nothing. -------------------------
    let batch = big_batch();
    let msg = Message::PrePrepare {
        view: View(0),
        seq: SeqNum(1),
        batch: batch.clone(),
        attestation: None,
    };
    let before = batch_payload_allocations();
    let mut dispatcher = Dispatcher::new(25);
    let mut env = CapturingEnv::default();
    dispatcher.dispatch(ReplicaId(0), vec![Action::Broadcast { msg }], &mut env);
    assert_eq!(env.sends.len(), 25);
    assert_eq!(
        batch_payload_allocations() - before,
        0,
        "a 25-way broadcast must not allocate a single batch payload"
    );

    // --- The simulator end to end. -------------------------------------
    // quick_test: FlexiBft, n = 4, batch size 10, 200 closed-loop clients.
    // Every completed transaction crossed a PrePrepare broadcast, was
    // accepted (and stored) by every replica and executed at every
    // replica; with payload sharing the only allocations are the
    // batcher's own `make_batch` calls — on the order of completions /
    // batch_size, nowhere near one per recipient.
    let spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
    let batch_size = spec.batch_size as u64;
    let n = spec.replicas() as u64;
    let before = batch_payload_allocations();
    let report = Simulation::new(spec).run();
    let delta = batch_payload_allocations() - before;
    let completions = report.commit_log.len() as u64;
    assert!(completions > 500, "scenario must make progress");
    let logical_batches = completions / batch_size;
    // Generous slack for partial flushes and end-of-run batches still in
    // flight — but far below the ≥ (n + 1) × batches a deep-copying
    // message plane would burn (the engine also stored and executed each
    // batch, historically two more copies per replica).
    assert!(
        delta <= logical_batches * 2 + 32,
        "sim run allocated {delta} payloads for ~{logical_batches} batches"
    );
    assert!(
        delta < logical_batches * (n + 1),
        "sim payload allocations scale with fan-out: {delta} for ~{logical_batches} batches × n = {n}"
    );

    // --- The threaded channel cluster end to end. ----------------------
    // 100 transactions in batches of 10 through 4 replica threads: the
    // primary's batcher builds exactly 10 batches; everything downstream
    // (4 inbox copies, 4 accepted-proposal stores, 4 executions) must
    // share those 10 allocations.
    let before = batch_payload_allocations();
    let cluster = Cluster::start(ProtocolId::FlexiBft, 1, 10);
    let summary = cluster.run_workload(100, 4, Duration::from_secs(30));
    cluster.shutdown();
    let delta = batch_payload_allocations() - before;
    assert_eq!(summary.completed_txns, 100);
    assert!(
        (10..=20).contains(&delta),
        "channel cluster allocated {delta} payloads for 10 logical batches"
    );
}

#[test]
fn unshare_recovers_the_message_without_copying_payload() {
    let _guard = serial();
    let batch = big_batch();
    let shared: SharedMessage = Arc::new(Message::PrePrepare {
        view: View(0),
        seq: SeqNum(3),
        batch: batch.clone(),
        attestation: None,
    });
    // A second outstanding handle forces the shallow-clone path; the
    // recovered message must still share the batch payload.
    let second = Arc::clone(&shared);
    let owned = flexitrust::protocol::unshare(second);
    match owned {
        Message::PrePrepare { batch: got, .. } => assert!(got.shares_payload(&batch)),
        other => panic!("unexpected message {}", other.kind()),
    }
    // The last handle moves out without touching the payload either.
    let owned = flexitrust::protocol::unshare(shared);
    match owned {
        Message::PrePrepare { batch: got, .. } => assert!(got.shares_payload(&batch)),
        other => panic!("unexpected message {}", other.kind()),
    }
}

#[test]
fn batch_equality_and_noop_flags_survive_the_shared_representation() {
    let _guard = serial();
    // Equal contents compare equal across distinct allocations (the wire
    // decoder builds fresh payloads), and the digest tag distinguishes
    // otherwise-identical noop fillers.
    let a = Batch::new(vec![Transaction::noop()], Digest::from_u64_tag(7));
    let b = Batch::new(vec![Transaction::noop()], Digest::from_u64_tag(7));
    assert_eq!(a, b);
    assert!(!a.shares_payload(&b));
    assert_ne!(Batch::noop(1), Batch::noop(2));
    assert!(Batch::noop(1).is_noop());
}

/// The PR 6 extension of the Arc discipline into the state machine: a
/// value buffer is allocated once — at the client that generated it — and
/// every execution of it, at every replica and on every shard worker,
/// shares that allocation by reference. `value_payload_allocations`
/// counts `ValueBytes` constructions process-wide exactly like its batch
/// counterpart counts batch payloads.
#[test]
fn executed_updates_share_the_client_value_allocation() {
    let _guard = serial();
    let value: ValueBytes = vec![9u8; 4096].into();
    let batch = Batch::new(
        (0..50)
            .map(|i| {
                Transaction::new(
                    ClientId(1),
                    RequestId(i + 1),
                    KvOp::Update {
                        key: i,
                        value: value.clone(),
                    },
                )
            })
            .collect(),
        Digest::from_u64_tag(1),
    );

    // Three "replicas", each executing the same committed batch on four
    // shard workers: 150 logical updates, zero new value allocations.
    let before = value_payload_allocations();
    for _ in 0..3 {
        let mut queue = ExecutionQueue::with_workers(KvStore::new(), 4);
        let executed = queue.submit(SeqNum(1), batch.clone());
        assert_eq!(executed.len(), 1);
        assert!(executed[0]
            .outcomes
            .iter()
            .all(|o| o.result == KvResult::Written));
        // The stored record is the client's buffer, not a copy.
        let stored = queue.store().get_shared(7).expect("key written");
        assert!(
            stored.shares_buffer(&value),
            "executed update must share the client's value allocation"
        );
    }
    assert_eq!(
        value_payload_allocations() - before,
        0,
        "executing a committed update must not allocate value payloads"
    );
}

/// End to end through the threaded cluster: value allocations scale with
/// the number of logical updates the clients generate — independent of
/// replica fan-out AND of the execution worker count.
#[test]
fn value_allocations_scale_with_updates_not_replicas_or_workers() {
    let _guard = serial();
    for workers in [1usize, 4] {
        // 100 update transactions through 4 replicas: the driver allocates
        // one value per update; acceptance, storage and execution at every
        // replica share it. A deep-copying execution plane would allocate
        // ≥ one per replica per update (≥ 400).
        let before = value_payload_allocations();
        let cluster = Cluster::start_with_workers(ProtocolId::FlexiBft, 1, 10, workers);
        let summary = cluster.run_workload(100, 4, Duration::from_secs(30));
        cluster.shutdown();
        let delta = value_payload_allocations() - before;
        assert_eq!(summary.completed_txns, 100);
        assert!(
            (100..=120).contains(&delta),
            "workers={workers}: {delta} value allocations for 100 logical updates"
        );
    }

    // The simulator end to end (4 replicas, 50/50 read/update YCSB): the
    // workload generator's updates are the only value allocations; every
    // replica's execution shares them.
    let spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
    let n = spec.replicas() as u64;
    let before = value_payload_allocations();
    let report = Simulation::new(spec).run();
    let delta = value_payload_allocations() - before;
    let completions = report.commit_log.len() as u64;
    assert!(completions > 500, "scenario must make progress");
    // ~half the mix is updates; closed-loop clients keep ≤ 1 txn in
    // flight each, so generated ≈ completed + clients. Far below the
    // ≥ completions × n / 2 a deep-copying execution plane would burn.
    assert!(
        delta <= completions + 64,
        "sim run allocated {delta} value payloads for {completions} completions"
    );
    assert!(
        delta < completions * n / 2,
        "value allocations scale with fan-out: {delta} for {completions} completions × n = {n}"
    );
}
