//! Shared helpers for the figure-reproduction benchmarks.
//!
//! Every `[[bench]]` target in this crate regenerates one table or figure of
//! the paper's evaluation (§9) and prints the same rows/series the paper
//! reports. The absolute numbers come from the discrete-event simulator and
//! are not expected to match the paper's 97-node cloud deployment; the
//! orderings and crossovers are (see `EXPERIMENTS.md`).
//!
//! The parameters here are deliberately scaled down (smaller `f`, shorter
//! simulated windows, fewer clients) so that the whole suite runs in minutes
//! on a laptop. Set the environment variable `FLEXITRUST_BENCH_SCALE=full`
//! to use larger windows closer to the paper's setup.

use flexitrust::prelude::*;

/// The parameter scale a bench run was asked for, from the single
/// `FLEXITRUST_BENCH_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// The default laptop-friendly parameters.
    Quick,
    /// `FLEXITRUST_BENCH_SCALE=full`: larger windows closer to the paper's
    /// setup.
    Full,
    /// `FLEXITRUST_BENCH_SCALE=smoke`: the CI smoke configuration — each
    /// bench shrinks its sweeps to a representative handful of points so a
    /// regression in the models fails fast without burning CI minutes on
    /// full figures.
    Smoke,
}

/// Reads `FLEXITRUST_BENCH_SCALE` once; any unrecognised value means
/// [`BenchScale::Quick`].
pub fn bench_scale() -> BenchScale {
    match std::env::var("FLEXITRUST_BENCH_SCALE") {
        Ok(v) if v.eq_ignore_ascii_case("full") => BenchScale::Full,
        Ok(v) if v.eq_ignore_ascii_case("smoke") => BenchScale::Smoke,
        _ => BenchScale::Quick,
    }
}

/// Returns `true` when the full-scale (slower) parameters were requested.
pub fn full_scale() -> bool {
    bench_scale() == BenchScale::Full
}

/// Mixed elephant/mouse traffic over 50 Mbps client lanes: ~1 % of requests
/// are large range scans whose replies (hundreds of kB) share each
/// replica's client lane with everyone else's small replies — the
/// head-of-line-blocking scenario behind both the `fig6vi_wan` MTU-chunking
/// gate and the `tests/link_queue.rs` tail-latency pin. One definition so
/// the CI gate and the test cannot drift onto different scenarios.
pub fn mixed_elephant_spec(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec.workload = WorkloadConfig {
        value_size: 1024,
        read_proportion: 0.94,
        update_proportion: 0.05,
        insert_proportion: 0.0,
        rmw_proportion: 0.0,
        scan_proportion: 0.01,
        max_scan_len: 300,
        record_count: 1_000,
        distribution: flexitrust::workload::KeyDistribution::Uniform,
    };
    let mut bandwidth = BandwidthConfig::unlimited();
    bandwidth.client_mbps = Some(50);
    spec.bandwidth = bandwidth;
    spec.duration_us = 1_200_000;
    spec.warmup_us = 300_000;
    spec.clients = 200;
    spec
}

/// The receive-side twin of [`mixed_elephant_spec`]: every link is
/// unlimited *except* replica ingest (`ingress_mbps`), and the workload is
/// all 4 kB updates in batches of 50 — so each PrePrepare is a ~200 kB
/// elephant on every receiver's ingest lane while the votes it triggers
/// stay mice on the same lane. With atomic rx reservations a vote arriving
/// mid-ingest waits for the elephant's last byte (the receive-side
/// head-of-line blocking that egress chunking alone cannot fix); with
/// `chunk_bytes` set it slips between ingest chunks. One definition shared
/// by the `fig6vi_wan` CI gate and the `tests/link_queue.rs` pin.
pub fn mixed_elephant_rx_spec(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec.workload = WorkloadConfig {
        value_size: 4096,
        read_proportion: 0.0,
        update_proportion: 1.0,
        insert_proportion: 0.0,
        rmw_proportion: 0.0,
        scan_proportion: 0.0,
        max_scan_len: 1,
        record_count: 1_000,
        distribution: flexitrust::workload::KeyDistribution::Uniform,
    };
    spec.batch_size = 50;
    let mut bandwidth = BandwidthConfig::unlimited();
    bandwidth.ingress_mbps = Some(400);
    spec.bandwidth = bandwidth;
    spec.duration_us = 1_200_000;
    spec.warmup_us = 300_000;
    spec.clients = 100;
    spec
}

/// The broadcast-heavy large-n scenario of the PR 5 message-plane harness:
/// n = 25, batch 50, 4 KiB update payloads, chunked finite links and
/// constrained replica ingress — the message plane's worst case. One
/// definition shared by the `throughput` events/sec floor and the
/// `chaos_sweep` fault-free-overhead gate, so the two CI gates cannot
/// drift onto different scenarios.
pub fn broadcast_heavy_spec(duration_us: u64, warmup_us: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper_default(ProtocolId::FlexiBft);
    spec.f = 8; // n = 25
    spec.batch_size = 50;
    spec.clients = 2_000;
    spec.duration_us = duration_us;
    spec.warmup_us = warmup_us;
    spec.record_commit_log = false;
    spec.workload = WorkloadConfig {
        value_size: 4096,
        read_proportion: 0.0,
        update_proportion: 1.0,
        insert_proportion: 0.0,
        rmw_proportion: 0.0,
        scan_proportion: 0.0,
        max_scan_len: 1,
        record_count: 1_000,
        distribution: flexitrust::workload::KeyDistribution::Uniform,
    };
    let mut bandwidth = BandwidthConfig::unlimited();
    bandwidth.local_mbps = Some(10_000);
    bandwidth.ingress_mbps = Some(10_000);
    bandwidth.chunk_bytes = Some(9_000);
    spec.bandwidth = bandwidth;
    spec
}

/// Returns the balanced `{...}` object following `"key"` in `json`,
/// verbatim — the hand-rolled row extractor the trajectory-writing benches
/// (`exec_scaling`, `chaos_sweep`) use to carry committed history rows
/// forward (the benches are as dependency-free as the lint).
pub fn extract_object(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    // Only `"key": {` counts — a committed `"key": null` must fall through
    // to the caller's default, not capture the next object in the file.
    let after = json[at + needle.len()..].trim_start().strip_prefix(':')?;
    if !after.trim_start().starts_with('{') {
        return None;
    }
    let open = at + json[at..].find('{')?;
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in json[open..].char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// The standard evaluation scenario used by the figure benches.
pub fn eval_spec(protocol: ProtocolId, f: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper_default(protocol);
    spec.f = f;
    spec.batch_size = 50;
    spec.clients = 2_000;
    if full_scale() {
        spec.duration_us = 600_000;
        spec.warmup_us = 150_000;
        spec.batch_size = 100;
        spec.clients = 8_000;
    } else {
        spec.duration_us = 120_000;
        spec.warmup_us = 30_000;
    }
    spec.client_timeout_us = Some(20_000);
    spec
}

/// The protocol line-up of Figure 6(i), in the paper's order.
pub fn figure6_protocols() -> Vec<ProtocolId> {
    vec![
        ProtocolId::PbftEa,
        ProtocolId::MinBft,
        ProtocolId::MinZz,
        ProtocolId::OpbftEa,
        ProtocolId::FlexiBft,
        ProtocolId::FlexiZz,
        ProtocolId::Pbft,
        ProtocolId::Zyzzyva,
        ProtocolId::OFlexiBft,
        ProtocolId::OFlexiZz,
    ]
}

/// Prints a table header followed by rows.
pub fn print_table(title: &str, header: &str, rows: &[String]) {
    println!(); // lint:allow(P02): bench table printer — stdout is this crate's UI
    println!("=== {title} ==="); // lint:allow(P02): bench table printer — stdout is this crate's UI
    println!("{header}"); // lint:allow(P02): bench table printer — stdout is this crate's UI
    println!("{}", "-".repeat(header.len().max(20))); // lint:allow(P02): bench table printer — stdout is this crate's UI
    for row in rows {
        println!("{row}"); // lint:allow(P02): bench table printer — stdout is this crate's UI
    }
    println!(); // lint:allow(P02): bench table printer — stdout is this crate's UI
}

/// Runs one scenario and returns its report.
pub fn run(spec: ScenarioSpec) -> SimReport {
    Simulation::new(spec).run()
}
