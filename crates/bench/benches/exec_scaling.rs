//! Sharded-execution scaling: committed txn/s vs worker count.
//!
//! Drives the `ExecutionQueue` directly (no consensus, no network) over the
//! paper-scale dataset — `KvStore::with_dataset(600_000, ..)` — with batches
//! of 50 update transactions carrying 4 KiB payloads, the workload shape of
//! the paper's throughput experiments (§9.1). Batches are submitted in
//! out-of-order windows so each unblocking head drains a multi-batch run
//! through one scatter/gather, which is how committed runs arrive from the
//! protocol layer after a view of pipelined proposals lands.
//!
//! Two throughput figures are recorded per worker count:
//!
//! * **wall** — committed txns / wall-clock seconds. Honest but bounded by
//!   the host: on a 1-core container 4 worker threads time-slice one CPU
//!   and wall-clock shows no scaling.
//! * **critical-path** — committed txns / modeled parallel span from
//!   [`ExecStats`]: per group, the longest per-worker lane (measured inside
//!   the workers) plus the serialized dispatch/gather remainder of the wall
//!   clock. This is what the partition costs with one core per worker, and
//!   it is the number the 1 → 4 worker scaling gate checks.
//!
//! Every worker count must also produce the same `state_digest()` — the
//! determinism contract from `tests/exec_determinism.rs`, re-checked here at
//! the 600 k-record scale.
//!
//! Results append to `BENCH_TRAJECTORY.json` (scenario-keyed rows): the
//! PR 5 message-plane record folds in as the first row, the committed
//! PR 6 and PR 8 execution-scaling rows are carried forward verbatim as
//! history, and this run writes the `exec_scaling_pr9` row.

use flexitrust::exec::{ExecutionQueue, KvStore};
use flexitrust::types::{
    Batch, ClientId, Digest, KvOp, RequestId, SeqNum, Transaction, ValueBytes,
};
use flexitrust_bench::{bench_scale, extract_object, BenchScale};
use std::time::Instant;

const BATCH_SIZE: usize = 50;
const VALUE_SIZE: usize = 4096;
/// Distinct 4 KiB payload buffers cycled across updates; values are
/// refcounted (`ValueBytes`), so the bench's memory footprint stays flat
/// no matter how many update txns it commits.
const PAYLOAD_POOL: usize = 64;
/// Out-of-order submission window: seqs `base+2 ..= base+W` arrive first,
/// then `base+1` unblocks the run and the whole window executes as one
/// scatter/gather group.
const WINDOW: usize = 8;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

struct Params {
    dataset_records: u64,
    batches: usize,
    measure_runs: usize,
    min_scaling_1_to_4: f64,
}

fn params() -> Params {
    match bench_scale() {
        // CI smoke: small dataset, enough groups for stable lane timings.
        BenchScale::Smoke => Params {
            dataset_records: 60_000,
            batches: 400,
            measure_runs: 2,
            min_scaling_1_to_4: 1.5,
        },
        BenchScale::Quick => Params {
            dataset_records: 600_000,
            batches: 2_000,
            measure_runs: 3,
            min_scaling_1_to_4: 1.5,
        },
        BenchScale::Full => Params {
            dataset_records: 600_000,
            batches: 8_000,
            measure_runs: 3,
            min_scaling_1_to_4: 1.5,
        },
    }
}

/// Deterministic uniform key stream over the dataset (splitmix-style mix).
fn key_at(i: u64, records: u64) -> u64 {
    let mut x = i
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x1234_5678);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x % records
}

fn build_batches(count: usize, records: u64) -> Vec<Batch> {
    let pool: Vec<ValueBytes> = (0..PAYLOAD_POOL)
        .map(|p| vec![p as u8; VALUE_SIZE].into())
        .collect();
    (0..count)
        .map(|b| {
            let txns: Vec<Transaction> = (0..BATCH_SIZE)
                .map(|t| {
                    let i = (b * BATCH_SIZE + t) as u64;
                    Transaction::new(
                        ClientId(b as u64 + 1),
                        RequestId(t as u64 + 1),
                        KvOp::Update {
                            key: key_at(i, records),
                            value: pool[(i as usize) % PAYLOAD_POOL].clone(),
                        },
                    )
                })
                .collect();
            Batch::new(txns, Digest::from_u64_tag(b as u64 + 1))
        })
        .collect()
}

struct RunResult {
    committed_txns: u64,
    wall_seconds: f64,
    busy_seconds: f64,
    critical_seconds: f64,
    digest: Digest,
}

/// Submits every batch in out-of-order windows and measures one full drain.
fn run_once(batches: &[Batch], params: &Params, workers: usize) -> RunResult {
    let store = KvStore::shared_dataset(params.dataset_records, 100);
    let mut queue = ExecutionQueue::with_workers(store, workers);
    let mut committed = 0u64;
    let started = Instant::now();
    for base in (0..batches.len()).step_by(WINDOW) {
        let window = WINDOW.min(batches.len() - base);
        // Park the tail of the window first, then unblock with its head.
        for offset in (1..window).chain([0]) {
            let index = base + offset;
            for done in queue.submit(SeqNum(index as u64 + 1), batches[index].clone()) {
                committed += done.outcomes.len() as u64;
            }
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    let stats = queue.exec_stats();
    RunResult {
        committed_txns: committed,
        wall_seconds,
        busy_seconds: stats.busy_nanos as f64 / 1e9,
        critical_seconds: stats.critical_nanos as f64 / 1e9,
        digest: queue.state_digest(),
    }
}

struct Series {
    workers: usize,
    wall_txn_per_sec: f64,
    critical_txn_per_sec: f64,
    busy_seconds: f64,
    critical_seconds: f64,
}

fn main() {
    let params = params();
    let scale = format!("{:?}", bench_scale());
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let total_txns = (params.batches * BATCH_SIZE) as u64;
    println!(
        "exec_scaling: {} records, {} batches x {} updates x {} B, {} host core(s), scale {scale}",
        params.dataset_records, params.batches, BATCH_SIZE, VALUE_SIZE, host_cores
    );

    let batches = build_batches(params.batches, params.dataset_records);
    let mut series: Vec<Series> = Vec::new();
    let mut digests: Vec<Digest> = Vec::new();
    for &workers in &WORKER_COUNTS {
        let mut best: Option<RunResult> = None;
        for _ in 0..params.measure_runs {
            let run = run_once(&batches, &params, workers);
            assert_eq!(run.committed_txns, total_txns, "every batch must commit");
            if best
                .as_ref()
                .is_none_or(|b| run.critical_seconds < b.critical_seconds)
            {
                best = Some(run);
            }
        }
        let best = best.expect("at least one measured run");
        digests.push(best.digest);
        let wall_tps = total_txns as f64 / best.wall_seconds;
        let crit_tps = total_txns as f64 / best.critical_seconds;
        println!(
            "  workers={workers}: {:>9.0} txn/s wall, {:>9.0} txn/s critical-path \
             (busy {:.3}s, span {:.3}s)",
            wall_tps, crit_tps, best.busy_seconds, best.critical_seconds
        );
        series.push(Series {
            workers,
            wall_txn_per_sec: wall_tps,
            critical_txn_per_sec: crit_tps,
            busy_seconds: best.busy_seconds,
            critical_seconds: best.critical_seconds,
        });
    }

    // Determinism at scale: every worker count ends in the same state.
    for (i, digest) in digests.iter().enumerate() {
        assert_eq!(
            *digest, digests[0],
            "state digest diverged between worker counts {} and {}",
            WORKER_COUNTS[0], WORKER_COUNTS[i]
        );
    }

    let one = &series[0];
    let four = series
        .iter()
        .find(|s| s.workers == 4)
        .expect("4-worker row");
    let scaling_critical = four.critical_txn_per_sec / one.critical_txn_per_sec;
    let scaling_wall = four.wall_txn_per_sec / one.wall_txn_per_sec;
    println!(
        "  scaling 1 -> 4 workers: {scaling_critical:.2}x critical-path, \
         {scaling_wall:.2}x wall (gate >= {:.2}x critical-path)",
        params.min_scaling_1_to_4
    );

    write_trajectory(
        &params,
        &scale,
        host_cores,
        &series,
        scaling_critical,
        scaling_wall,
    );

    assert!(
        scaling_critical >= params.min_scaling_1_to_4,
        "execution scaling regressed: {scaling_critical:.2}x < {:.2}x from 1 to 4 workers",
        params.min_scaling_1_to_4
    );
}

/// Rewrites `BENCH_TRAJECTORY.json`: the PR 5 message-plane record (folded
/// in verbatim from `BENCH_PR5.json`), the committed PR 6 and PR 8
/// execution-scaling rows and the PR 10 chaos-overhead row (carried
/// forward verbatim — their numbers are history or another bench's output,
/// not something this run should overwrite), plus this run's
/// execution-scaling row under `exec_scaling_pr9`.
fn write_trajectory(
    params: &Params,
    scale: &str,
    host_cores: usize,
    series: &[Series],
    scaling_critical: f64,
    scaling_wall: f64,
) {
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let pr5 = std::fs::read_to_string(format!("{repo_root}/BENCH_PR5.json"))
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "null".to_string());
    let trajectory = std::fs::read_to_string(format!("{repo_root}/BENCH_TRAJECTORY.json")).ok();
    let pr6 = trajectory
        .as_deref()
        .and_then(|s| extract_object(s, "exec_scaling_pr6"))
        .unwrap_or_else(|| "null".to_string());
    let pr8 = trajectory
        .as_deref()
        .and_then(|s| extract_object(s, "exec_scaling_pr8"))
        .unwrap_or_else(|| "null".to_string());
    let chaos = trajectory
        .as_deref()
        .and_then(|s| extract_object(s, "chaos_overhead_pr10"))
        .unwrap_or_else(|| "null".to_string());
    let rows: Vec<String> = series
        .iter()
        .map(|s| {
            format!(
                "      {{\"workers\": {}, \"wall_txn_per_sec\": {:.0}, \
                 \"critical_path_txn_per_sec\": {:.0}, \"busy_seconds\": {:.4}, \
                 \"critical_seconds\": {:.4}}}",
                s.workers,
                s.wall_txn_per_sec,
                s.critical_txn_per_sec,
                s.busy_seconds,
                s.critical_seconds
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"message_plane_pr5\": {pr5},\n  \"exec_scaling_pr6\": {pr6},\n  \
         \"exec_scaling_pr8\": {pr8},\n  \"exec_scaling_pr9\": {{\n    \
         \"dataset_records\": {records},\n    \"batch_size\": {batch},\n    \
         \"value_size\": {value},\n    \"batches\": {batches},\n    \
         \"payload_pool\": {pool},\n    \"window\": {window},\n    \
         \"scale\": \"{scale}\",\n    \"host_cores\": {host_cores},\n    \
         \"series\": [\n{rows}\n    ],\n    \
         \"scaling_1_to_4_critical_path\": {crit:.2},\n    \
         \"scaling_1_to_4_wall\": {wall:.2},\n    \
         \"gate\": {{\"min_scaling_1_to_4_critical_path\": {gate:.2}}}\n  }},\n  \
         \"chaos_overhead_pr10\": {chaos}\n}}\n",
        records = params.dataset_records,
        batch = BATCH_SIZE,
        value = VALUE_SIZE,
        batches = params.batches,
        pool = PAYLOAD_POOL,
        window = WINDOW,
        rows = rows.join(",\n"),
        crit = scaling_critical,
        wall = scaling_wall,
        gate = params.min_scaling_1_to_4,
    );
    let path = format!("{repo_root}/BENCH_TRAJECTORY.json");
    std::fs::write(&path, json).expect("write BENCH_TRAJECTORY.json");
    println!("  wrote {path}");
}
