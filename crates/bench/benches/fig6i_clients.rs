//! Figure 6(i): throughput versus latency as the client count grows.

use flexitrust_bench::{eval_spec, figure6_protocols, print_table, run};

fn main() {
    let client_counts = if flexitrust_bench::full_scale() {
        vec![1_000, 4_000, 16_000, 40_000]
    } else {
        vec![500, 2_000, 8_000]
    };
    let mut rows = Vec::new();
    for protocol in figure6_protocols() {
        for clients in &client_counts {
            let mut spec = eval_spec(protocol, 4);
            spec.clients = *clients;
            let report = run(spec);
            rows.push(format!(
                "{:<11} clients={:<6} tput={:>10.0} txn/s   lat={:>7.2} ms (p99 {:>7.2} ms)",
                protocol.name(),
                clients,
                report.throughput_tps,
                report.avg_latency_ms,
                report.p99_latency_ms,
            ));
        }
    }
    print_table(
        "Figure 6(i): throughput vs latency (f = 4, varying closed-loop clients)",
        "Protocol    clients       throughput          latency",
        &rows,
    );
}
