//! Figure 6(ii)/(iii): scalability — throughput and latency as f grows.

use flexitrust::prelude::*;
use flexitrust_bench::{eval_spec, print_table, run};

fn main() {
    let fs = if flexitrust_bench::full_scale() {
        vec![2, 4, 8, 16]
    } else {
        vec![1, 2, 4, 8]
    };
    let protocols = [
        ProtocolId::PbftEa,
        ProtocolId::MinBft,
        ProtocolId::MinZz,
        ProtocolId::Pbft,
        ProtocolId::FlexiBft,
        ProtocolId::FlexiZz,
    ];
    let mut rows = Vec::new();
    for protocol in protocols {
        for f in &fs {
            let report = run(eval_spec(protocol, *f));
            rows.push(format!(
                "{:<11} f={:<2} n={:<3} tput={:>10.0} txn/s   lat={:>7.2} ms",
                protocol.name(),
                f,
                report.n,
                report.throughput_tps,
                report.avg_latency_ms,
            ));
        }
    }
    print_table(
        "Figure 6(ii)/(iii): scalability with the number of replicas",
        "Protocol    f    n      throughput          latency",
        &rows,
    );
}
