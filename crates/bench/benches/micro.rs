//! Criterion micro-benchmarks for the substrates: crypto primitives, trusted
//! counter accesses, quorum tracking and a short end-to-end simulation.
#![allow(missing_docs)] // the criterion macros generate undocumented entry points

use criterion::{criterion_group, criterion_main, Criterion};
use flexitrust::crypto::{sha256, CountingCrypto, CryptoProvider, KeyStore, RealCrypto};
use flexitrust::prelude::*;
use flexitrust::protocol::CertificateTracker;
use flexitrust::trusted::{AttestationMode, Enclave, EnclaveConfig};
use flexitrust::types::Digest;
use std::sync::Arc;

fn bench_crypto(c: &mut Criterion) {
    let keys = Arc::new(KeyStore::deterministic(4, 1));
    let real = RealCrypto::new(keys);
    let counting = CountingCrypto::new();
    let node = flexitrust::types::NodeId::Replica(ReplicaId(0));
    let payload = vec![7u8; 256];

    c.bench_function("crypto/sha256_256B", |b| b.iter(|| sha256(&payload)));
    c.bench_function("crypto/ed25519_sign_256B", |b| {
        b.iter(|| real.sign(node, &payload).unwrap())
    });
    let sig = real.sign(node, &payload).unwrap();
    c.bench_function("crypto/ed25519_verify_256B", |b| {
        b.iter(|| real.verify(node, &payload, &sig).unwrap())
    });
    c.bench_function("crypto/counting_sign_256B", |b| {
        b.iter(|| counting.sign(node, &payload).unwrap())
    });
}

fn bench_trusted(c: &mut Criterion) {
    let real = Enclave::shared(EnclaveConfig::counter_only(
        ReplicaId(0),
        AttestationMode::Real,
    ));
    let counting = Enclave::shared(EnclaveConfig::counter_only(
        ReplicaId(0),
        AttestationMode::Counting,
    ));
    c.bench_function("trusted/append_f_real_signature", |b| {
        b.iter(|| real.append_f(0, Digest::from_u64_tag(1)).unwrap())
    });
    c.bench_function("trusted/append_f_counting", |b| {
        b.iter(|| counting.append_f(0, Digest::from_u64_tag(1)).unwrap())
    });
}

fn bench_quorum(c: &mut Criterion) {
    c.bench_function("protocol/certificate_tracker_quorum_of_17", |b| {
        b.iter(|| {
            let mut tracker: CertificateTracker<u64> = CertificateTracker::new(17);
            for r in 0..25u32 {
                tracker.vote(1, ReplicaId(r));
            }
            tracker.is_complete(&1)
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("flexi_zz_quick_scenario", |b| {
        b.iter(|| {
            let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiZz);
            spec.duration_us = 60_000;
            spec.warmup_us = 15_000;
            Simulation::new(spec).run().completed_txns
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_trusted,
    bench_quorum,
    bench_simulation
);
criterion_main!(benches);
