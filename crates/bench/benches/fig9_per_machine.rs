//! Figure 9: throughput-per-machine, Flexi-ZZ vs MinZZ.
//!
//! trust-bft protocols justify their extra trusted hardware by needing f
//! fewer replicas, but the paper shows that, per machine, the 3f + 1
//! FlexiTrust protocols still deliver more useful work.

use flexitrust::prelude::*;
use flexitrust_bench::{eval_spec, print_table, run};

fn main() {
    let fs = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for f in fs {
        let flexi = run(eval_spec(ProtocolId::FlexiZz, f));
        let minzz = run(eval_spec(ProtocolId::MinZz, f));
        rows.push(format!(
            "f={:<2}  Flexi-ZZ: {:>8.0} tx/s/machine (n={:<3})   MinZZ: {:>8.0} tx/s/machine (n={:<3})   ratio {:>4.2}x",
            f,
            flexi.throughput_per_machine(),
            flexi.n,
            minzz.throughput_per_machine(),
            minzz.n,
            flexi.throughput_per_machine() / minzz.throughput_per_machine().max(1.0),
        ));
    }
    print_table(
        "Figure 9: throughput-per-machine (total throughput / number of replicas)",
        "f     Flexi-ZZ                          MinZZ                             ratio",
        &rows,
    );
}
