//! Figure 6(iv)/(v): impact of the batch size.

use flexitrust::prelude::*;
use flexitrust_bench::{eval_spec, print_table, run};

fn main() {
    let batch_sizes = if flexitrust_bench::full_scale() {
        vec![10, 100, 500, 1_000, 5_000]
    } else {
        vec![10, 50, 200, 1_000]
    };
    let protocols = [
        ProtocolId::MinBft,
        ProtocolId::MinZz,
        ProtocolId::Pbft,
        ProtocolId::FlexiBft,
        ProtocolId::FlexiZz,
    ];
    let mut rows = Vec::new();
    for protocol in protocols {
        for batch in &batch_sizes {
            let mut spec = eval_spec(protocol, 2);
            spec.batch_size = *batch;
            let report = run(spec);
            rows.push(format!(
                "{:<11} batch={:<5} tput={:>10.0} txn/s   lat={:>7.2} ms",
                protocol.name(),
                batch,
                report.throughput_tps,
                report.avg_latency_ms,
            ));
        }
    }
    print_table(
        "Figure 6(iv)/(v): impact of batching (f = 2)",
        "Protocol    batch       throughput          latency",
        &rows,
    );
}
