//! Figure 7: impact of a single non-primary replica failure.
//!
//! Zyzzyva and MinZZ need replies from every replica to stay on their fast
//! path, so one unresponsive replica pushes every request onto the slow
//! (timeout) path; Flexi-ZZ only needs 2f + 1 of 3f + 1 replies and is
//! unaffected.

use flexitrust::prelude::*;
use flexitrust::sim::FaultPlan;
use flexitrust_bench::{eval_spec, print_table, run};

fn main() {
    let protocols = [
        ProtocolId::MinZz,
        ProtocolId::Zyzzyva,
        ProtocolId::FlexiZz,
        ProtocolId::FlexiBft,
        ProtocolId::Pbft,
    ];
    let fs = [1usize, 2, 4];
    let mut rows = Vec::new();
    for protocol in protocols {
        for f in fs {
            let healthy = run(eval_spec(protocol, f));
            let mut spec = eval_spec(protocol, f);
            spec.duration_us = 300_000;
            spec.warmup_us = 75_000;
            let victim = ReplicaId((spec.replicas() - 1) as u32);
            spec.faults = FaultPlan::single_failure(victim);
            let failed = run(spec);
            rows.push(format!(
                "{:<11} f={:<2} healthy tput={:>9.0}  failed tput={:>9.0}  ({:>5.1}% kept)  lat {:>6.2} -> {:>6.2} ms",
                protocol.name(),
                f,
                healthy.throughput_tps,
                failed.throughput_tps,
                100.0 * failed.throughput_tps / healthy.throughput_tps.max(1.0),
                healthy.avg_latency_ms,
                failed.avg_latency_ms,
            ));
        }
    }
    print_table(
        "Figure 7: impact of one non-primary replica failure",
        "Protocol    f    throughput healthy vs failed            latency healthy -> failed",
        &rows,
    );
}
