//! Chaos sweep (PR 10): scripted partitions, crash-recovery via checkpoint
//! rejoin, and the fault-free-overhead gate.
//!
//! Two halves, both asserted in every scale (including CI smoke):
//!
//! 1. **Invariant sweep** — for each gated protocol (Flexi-BFT, Flexi-ZZ,
//!    PBFT), one minority-partition-then-heal plan and one
//!    crash-then-recover plan (the crashed replica rejoins through real
//!    `CheckpointRequest`/`CheckpointState` state transfer) must pass
//!    [`SimReport::check_chaos_invariants`]: safety — replicas at equal
//!    execution frontiers agree on the state digest — and liveness —
//!    clients complete transactions after the last heal/recover.
//!
//! 2. **Fault-free overhead** — an *inert* chaos plan (active bookkeeping,
//!    nothing injected) on the PR 5 broadcast-heavy scenario must process
//!    the bit-identical event schedule (asserted exactly) at no more than
//!    5 % lower events/sec than the plan-free run (asserted on best-of-3
//!    wall clocks). The pair lands in `BENCH_TRAJECTORY.json` as the
//!    `chaos_overhead_pr10` row.

use flexitrust::prelude::*;
use flexitrust_bench::{
    bench_scale, broadcast_heavy_spec, extract_object, print_table, BenchScale,
};
use std::time::Instant;

/// Wall-clock measurement repetitions for the overhead pair; the best run
/// of each side is compared.
const MEASURE_RUNS: usize = 3;

/// Maximum tolerated fault-free slowdown from carrying an active (but
/// inert) chaos plan, in percent of events/sec.
const MAX_FAULT_FREE_OVERHEAD_PCT: f64 = 5.0;

/// The protocols the chaos acceptance gate covers.
const PROTOCOLS: [ProtocolId; 3] = [ProtocolId::FlexiBft, ProtocolId::FlexiZz, ProtocolId::Pbft];

/// Minority isolation: {0, 1, 2} | {3} between 50 ms and 120 ms. The
/// majority side keeps every quorum, so the cluster stays live through the
/// partition and replica 3 catches back up after the heal.
fn partition_spec(protocol: ProtocolId) -> ScenarioSpec {
    let mut spec = ScenarioSpec::quick_test(protocol);
    spec.chaos = ChaosPlan::partition_then_heal(
        9,
        vec![
            vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
            vec![ReplicaId(3)],
        ],
        50_000_000,
        120_000_000,
    );
    spec
}

/// Crash replica 2 at 40 ms, recover at 100 ms; the shortened checkpoint
/// interval guarantees a stable checkpoint exists to transfer, so the
/// rejoin exercises snapshot install plus batch replay.
fn crash_spec(protocol: ProtocolId) -> ScenarioSpec {
    let mut spec = ScenarioSpec::quick_test(protocol);
    spec.checkpoint_interval = Some(10);
    spec.chaos = ChaosPlan::crash_then_recover(11, ReplicaId(2), 40_000_000, 100_000_000);
    spec
}

fn sweep_row(protocol: ProtocolId, plan: &str, report: &SimReport) -> String {
    report.check_chaos_invariants().unwrap_or_else(|violation| {
        panic!("{} under {plan}: {violation}", protocol.name());
    });
    let frontiers: Vec<u64> = report.replica_frontiers.iter().map(|f| f.0).collect();
    format!(
        "{:<11} {:<20} disruptions={} completed={:>6} after-restore={:>6} frontiers={:?}",
        protocol.name(),
        plan,
        report.chaos_disruptions,
        report.completed_txns,
        report.completed_after_restore,
        frontiers,
    )
}

struct Measurement {
    events: u64,
    messages: u64,
    wall_s: f64,
    events_per_sec: f64,
}

/// Best of [`MEASURE_RUNS`] back-to-back runs (the schedule is
/// deterministic, so the spread is pure machine noise).
fn measure(spec: &ScenarioSpec) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..MEASURE_RUNS {
        let start = Instant::now();
        let report = Simulation::new(spec.clone()).run();
        let wall_s = start.elapsed().as_secs_f64();
        let m = Measurement {
            events: report.events_processed,
            messages: report.messages_delivered,
            wall_s,
            events_per_sec: report.events_processed as f64 / wall_s,
        };
        if best.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            best = Some(m);
        }
    }
    best.expect("at least one measurement run")
}

fn main() {
    let scale = bench_scale();

    // Half 1: the invariant sweep. quick_test scale (n = 4, 180 ms of
    // virtual time) is cheap enough to run every protocol in every scale.
    let mut rows = Vec::new();
    for protocol in PROTOCOLS {
        let partitioned = Simulation::new(partition_spec(protocol)).run();
        rows.push(sweep_row(protocol, "partition_then_heal", &partitioned));
        let crashed = Simulation::new(crash_spec(protocol)).run();
        rows.push(sweep_row(protocol, "crash_then_recover", &crashed));
        // The crash plan must actually exercise the rejoin: replica 2 ends
        // past the checkpoint it was handed, not frozen where it crashed.
        let rejoined = crashed.replica_frontiers[2].0;
        assert!(
            rejoined >= 10,
            "{}: replica 2 never rejoined via checkpoint transfer (frontier {rejoined})",
            protocol.name()
        );
    }
    print_table(
        "Chaos sweep: scripted partition-heal and crash-recover plans (f = 1, n = 4)",
        "Protocol    plan                 safety+liveness checker results",
        &rows,
    );

    // Half 2: the fault-free overhead pair on the PR 5 broadcast-heavy
    // scenario. The inert plan keeps the chaos machinery active (one
    // schedule entry, applied at t = 1 ns as a no-op heal) while injecting
    // nothing, so the comparison isolates the bookkeeping cost on the
    // fault-free path.
    let (duration_us, warmup_us) = match scale {
        BenchScale::Smoke => (300_000, 60_000),
        BenchScale::Quick => (400_000, 100_000),
        BenchScale::Full => (1_200_000, 300_000),
    };
    let fault_free = measure(&broadcast_heavy_spec(duration_us, warmup_us));
    let mut inert_spec = broadcast_heavy_spec(duration_us, warmup_us);
    inert_spec.chaos = ChaosPlan::scripted(7, vec![ChaosEvent::PartitionHeal { at_ns: 1 }]);
    let inert = measure(&inert_spec);

    // Bit-identity first — machine-independent and the stronger claim: an
    // inert plan changes nothing about the schedule.
    assert_eq!(
        (fault_free.events, fault_free.messages),
        (inert.events, inert.messages),
        "an inert chaos plan perturbed the event schedule"
    );
    let overhead_pct =
        (fault_free.events_per_sec - inert.events_per_sec) / fault_free.events_per_sec * 100.0;
    println!(
        "fault-free overhead: {:>10.0} events/s bare vs {:>10.0} events/s with inert plan \
         ({overhead_pct:+.2} %, gate <= {MAX_FAULT_FREE_OVERHEAD_PCT:.0} %)",
        fault_free.events_per_sec, inert.events_per_sec
    );

    write_trajectory_row(
        scale,
        duration_us,
        warmup_us,
        &fault_free,
        &inert,
        overhead_pct,
    );

    assert!(
        overhead_pct <= MAX_FAULT_FREE_OVERHEAD_PCT,
        "chaos bookkeeping slowed the fault-free path by {overhead_pct:.2} % \
         (> {MAX_FAULT_FREE_OVERHEAD_PCT:.0} %)"
    );
}

/// Rewrites `BENCH_TRAJECTORY.json`, carrying every committed row forward
/// verbatim and replacing `chaos_overhead_pr10` with this run's pair.
fn write_trajectory_row(
    scale: BenchScale,
    duration_us: u64,
    warmup_us: u64,
    fault_free: &Measurement,
    inert: &Measurement,
    overhead_pct: f64,
) {
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{repo_root}/BENCH_TRAJECTORY.json");
    let trajectory = std::fs::read_to_string(&path).ok();
    let carried: Vec<String> = [
        "message_plane_pr5",
        "exec_scaling_pr6",
        "exec_scaling_pr8",
        "exec_scaling_pr9",
    ]
    .iter()
    .map(|key| {
        let row = trajectory
            .as_deref()
            .and_then(|s| extract_object(s, key))
            .unwrap_or_else(|| "null".to_string());
        format!("  \"{key}\": {row}")
    })
    .collect();
    let json = format!(
        "{{\n{carried},\n  \"chaos_overhead_pr10\": {{\n    \
         \"scenario\": \"broadcast_heavy_pr5\",\n    \
         \"scale\": \"{scale:?}\",\n    \
         \"duration_us\": {duration_us},\n    \
         \"warmup_us\": {warmup_us},\n    \
         \"fault_free\": {{\"events_processed\": {ff_events}, \"wall_seconds\": {ff_wall:.4}, \
         \"events_per_sec\": {ff_eps:.0}}},\n    \
         \"inert_chaos\": {{\"events_processed\": {in_events}, \"wall_seconds\": {in_wall:.4}, \
         \"events_per_sec\": {in_eps:.0}}},\n    \
         \"overhead_percent\": {overhead_pct:.2},\n    \
         \"sweep\": {{\"protocols\": [\"FlexiBft\", \"FlexiZz\", \"Pbft\"], \
         \"plans\": [\"partition_then_heal\", \"crash_then_recover\"], \
         \"all_invariants_ok\": true}},\n    \
         \"gate\": {{\"max_fault_free_overhead_percent\": {gate:.1}}}\n  }}\n}}\n",
        carried = carried.join(",\n"),
        ff_events = fault_free.events,
        ff_wall = fault_free.wall_s,
        ff_eps = fault_free.events_per_sec,
        in_events = inert.events,
        in_wall = inert.wall_s,
        in_eps = inert.events_per_sec,
        gate = MAX_FAULT_FREE_OVERHEAD_PCT,
    );
    std::fs::write(&path, json).expect("write BENCH_TRAJECTORY.json");
    println!("  wrote {path}");
}
