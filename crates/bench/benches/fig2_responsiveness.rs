//! Figure 2 / §5: disruption of service through weak quorums.
//!
//! Runs the restricted-responsiveness adversary (Byzantine primary + f-1
//! accomplices withholding messages from f honest replicas, one delayed
//! honest replica) against MinBFT, PBFT-EA, PBFT and the FlexiTrust
//! protocols and reports how many matching replies the client obtains versus
//! how many it needs, and whether a view change can rescue it.

use flexitrust::attacks::responsiveness_attack;
use flexitrust::prelude::ProtocolId;
use flexitrust_bench::print_table;

fn main() {
    let f = 2;
    let protocols = [
        ProtocolId::MinBft,
        ProtocolId::PbftEa,
        ProtocolId::MinZz,
        ProtocolId::Pbft,
        ProtocolId::FlexiBft,
        ProtocolId::FlexiZz,
    ];
    let rows: Vec<String> = protocols
        .iter()
        .map(|p| {
            let r = responsiveness_attack(*p, f);
            format!(
                "{:<11} n={:<3} replies {:>2}/{:<2} view-change votes {:>2}/{:<2} -> {}",
                r.protocol.name(),
                r.n,
                r.matching_replies,
                r.replies_needed,
                r.view_change_votes,
                r.view_change_quorum,
                if r.client_stuck() {
                    "CLIENT STUCK (no responsiveness)"
                } else if r.client_responsive() {
                    "client responsive"
                } else {
                    "degraded (recoverable via view change / retry)"
                }
            )
        })
        .collect();
    print_table(
        "Figure 2 / Section 5: weak-quorum responsiveness attack (f = 2)",
        "Protocol       replies (got/needed)   view-change votes   outcome",
        &rows,
    );
}
