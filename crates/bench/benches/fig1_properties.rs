//! Figure 1: qualitative comparison of trust-bft protocols.
//!
//! Regenerates the comparison table (trusted abstraction, BFT-equivalent
//! liveness, out-of-order consensus support, trusted memory, primary-only
//! trusted component) directly from the protocol property metadata every
//! engine reports.

use flexitrust::protocol::ProtocolProperties;
use flexitrust_bench::print_table;

fn main() {
    let rows: Vec<String> = ProtocolProperties::figure1_rows()
        .into_iter()
        .map(|p| p.to_string())
        .collect();
    print_table(
        "Figure 1: comparing trust-bft protocols",
        "Protocol    | n     | Trusted       | BFT live | Out-of-order | Trusted memory    | Primary-TC | Phases",
        &rows,
    );
}
