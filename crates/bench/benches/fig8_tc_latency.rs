//! Figure 8: peak throughput as the trusted-counter access cost varies.
//!
//! The paper sweeps the access cost from 1 ms (fast enclave-class counters)
//! to 200 ms (TPMs) and shows that every protocol, trust-bft and FlexiTrust
//! alike, converges to roughly `batch size / access latency` once the
//! trusted component dominates — but FlexiTrust protocols stay ahead as long
//! as the access cost is below a few milliseconds because they only pay it
//! once per consensus at the primary.

use flexitrust::prelude::*;
use flexitrust_bench::{eval_spec, print_table, run};

fn main() {
    let access_ms: Vec<f64> = if flexitrust_bench::full_scale() {
        TrustedHardware::figure8_sweep_ms()
    } else {
        vec![1.0, 2.5, 10.0, 30.0, 100.0]
    };
    let protocols = [ProtocolId::FlexiZz, ProtocolId::MinZz, ProtocolId::MinBft];
    let mut rows = Vec::new();
    for ms in &access_ms {
        let mut cells = Vec::new();
        for protocol in protocols {
            let mut spec = eval_spec(protocol, 4);
            spec.hardware = TrustedHardware::Custom {
                access_us: (ms * 1_000.0) as u64,
                rollback_protected: true,
            };
            // Long enough to complete several consensus rounds even at the
            // slowest access cost.
            spec.duration_us = 1_500_000;
            spec.warmup_us = 300_000;
            let report = run(spec);
            cells.push(format!("{:>9.0}", report.throughput_tps));
        }
        rows.push(format!("{:>8.1} ms | {}", ms, cells.join("  ")));
    }
    print_table(
        "Figure 8: peak throughput (txn/s) vs trusted-counter access cost (f = 4)",
        "Access cost |  Flexi-ZZ      MinZZ     MinBFT",
        &rows,
    );
}
