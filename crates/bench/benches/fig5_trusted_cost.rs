//! Figure 5: the cost of trusted counters (TC) and signature attestations
//! (SA) on single-worker PBFT.
//!
//! Bars (as in the paper):
//!   [a] standard PBFT;
//!   [b] primary accesses a TC in the PrePrepare phase;
//!   [c] primary TC + SA in PrePrepare;
//!   [d] primary TC + SA in all three phases;
//!   [e] all replicas TC in PrePrepare;
//!   [f] all replicas TC + SA in PrePrepare;
//!   [g] all replicas TC + SA in all three phases.

use flexitrust::baselines::{PbftFamilyEngine, PrimaryAttest, ProtocolStyle, ReplicaAttest};
use flexitrust::prelude::*;
use flexitrust::sim::{build_replicas, ReplicaSetup};
use flexitrust::trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry};
use flexitrust_bench::{eval_spec, print_table};

struct Bar {
    label: &'static str,
    primary_attest: PrimaryAttest,
    replica_attest: ReplicaAttest,
    all_replicas_have_tc: bool,
    signed: bool,
}

fn bars() -> Vec<Bar> {
    use PrimaryAttest as P;
    use ReplicaAttest as R;
    vec![
        Bar {
            label: "[a] standard Pbft",
            primary_attest: P::None,
            replica_attest: R::None,
            all_replicas_have_tc: false,
            signed: false,
        },
        Bar {
            label: "[b] P: TC in Prep",
            primary_attest: P::HostCounter,
            replica_attest: R::None,
            all_replicas_have_tc: false,
            signed: false,
        },
        Bar {
            label: "[c] P: TC+SA in Prep",
            primary_attest: P::HostCounter,
            replica_attest: R::None,
            all_replicas_have_tc: false,
            signed: true,
        },
        Bar {
            label: "[d] P: TC+SA all phases",
            primary_attest: P::HostCounter,
            replica_attest: R::Counter,
            all_replicas_have_tc: false,
            signed: true,
        },
        Bar {
            label: "[e] All: TC in Prep",
            primary_attest: P::HostCounter,
            replica_attest: R::None,
            all_replicas_have_tc: true,
            signed: false,
        },
        Bar {
            label: "[f] All: TC+SA in Prep",
            primary_attest: P::HostCounter,
            replica_attest: R::None,
            all_replicas_have_tc: true,
            signed: true,
        },
        Bar {
            label: "[g] All: TC+SA all phases",
            primary_attest: P::HostCounter,
            replica_attest: R::Counter,
            all_replicas_have_tc: true,
            signed: true,
        },
    ]
}

fn run_bar(bar: &Bar) -> f64 {
    let mut spec = eval_spec(ProtocolId::Pbft, 2);
    spec.workers_per_replica = 1; // single worker thread, as in the paper
    spec.cost = if bar.signed {
        CostModel::calibrated()
    } else {
        CostModel::unsigned_attestations()
    };
    let config = spec.system_config();
    let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Counting);
    let style = ProtocolStyle {
        id: ProtocolId::Pbft,
        use_commit_phase: true,
        prepare_quorum_rule: QuorumRule::TwoFPlusOne,
        commit_quorum_rule: QuorumRule::TwoFPlusOne,
        speculative: false,
        primary_attest: bar.primary_attest,
        replica_attest: bar.replica_attest,
        active_subset_only: false,
    };
    let replicas: Vec<ReplicaSetup> = if bar.primary_attest == PrimaryAttest::None {
        build_replicas(&spec)
    } else {
        (0..config.n)
            .map(|i| {
                let id = ReplicaId(i as u32);
                // Bars [b]-[d]: only the primary holds an (active) enclave;
                // bars [e]-[g]: every replica does.
                let enclave = if i == 0 || bar.all_replicas_have_tc {
                    Some(Enclave::shared(
                        EnclaveConfig::counter_only(id, AttestationMode::Counting)
                            .with_hardware(spec.hardware),
                    ))
                } else {
                    None
                };
                ReplicaSetup {
                    engine: Box::new(PbftFamilyEngine::new(
                        config.clone(),
                        id,
                        style,
                        enclave.clone(),
                        Some(registry.clone()),
                    )),
                    enclave,
                }
            })
            .collect()
    };
    Simulation::with_replicas(spec, replicas)
        .run()
        .throughput_tps
}

fn main() {
    let all = bars();
    let baseline = run_bar(&all[0]);
    let rows: Vec<String> = all
        .iter()
        .map(|bar| {
            let tput = run_bar(bar);
            format!(
                "{:<28} {:>10.0} txn/s   ({:>5.2}x of [a])",
                bar.label,
                tput,
                tput / baseline
            )
        })
        .collect();
    print_table(
        "Figure 5: impact of trusted counters (TC) and signature attestations (SA) on single-worker Pbft",
        "Variant                          throughput        relative",
        &rows,
    );
}
