//! Figure 6(vi)/(vii): wide-area replication over 1–6 regions, plus the
//! bandwidth-constrained variant the wire-size model enables: the same
//! six-region topology swept over per-link WAN bandwidth, showing delivery
//! time growing with `Message::wire_size_bytes() / bandwidth`.

use flexitrust::prelude::*;
use flexitrust_bench::{eval_spec, print_table, run};

fn main() {
    let protocols = [ProtocolId::MinBft, ProtocolId::Pbft, ProtocolId::FlexiZz];
    let mut rows = Vec::new();
    for protocol in protocols {
        for regions in 1..=6usize {
            let mut spec = eval_spec(protocol, 2);
            spec.regions = regions;
            // WAN latencies need a longer window to reach steady state.
            spec.duration_us = 1_200_000;
            spec.warmup_us = 400_000;
            spec.clients = 4_000;
            let report = run(spec);
            rows.push(format!(
                "{:<11} regions={} tput={:>10.0} txn/s   lat={:>7.2} ms",
                protocol.name(),
                regions,
                report.throughput_tps,
                report.avg_latency_ms,
            ));
        }
    }
    print_table(
        "Figure 6(vi)/(vii): wide-area replication, regions added in paper order (f = 2)",
        "Protocol    regions     throughput          latency",
        &rows,
    );

    // Bandwidth sweep: six regions, shrinking WAN links. Unlimited is the
    // seed's pure-latency model; the constrained rows add size/bandwidth
    // transmission time to every inter-region delivery.
    let mut bw_rows = Vec::new();
    for protocol in [ProtocolId::Pbft, ProtocolId::FlexiZz] {
        for (label, bandwidth) in [
            ("unlimited", BandwidthConfig::unlimited()),
            ("100 Mbps", BandwidthConfig::wan_constrained(100)),
            ("20 Mbps", BandwidthConfig::wan_constrained(20)),
            ("5 Mbps", BandwidthConfig::wan_constrained(5)),
        ] {
            let mut spec = eval_spec(protocol, 2);
            spec.regions = 6;
            spec.bandwidth = bandwidth;
            spec.duration_us = 1_200_000;
            spec.warmup_us = 400_000;
            spec.clients = 2_000;
            let report = run(spec);
            bw_rows.push(format!(
                "{:<11} wan={:<9} tput={:>10.0} txn/s   lat={:>7.2} ms",
                protocol.name(),
                label,
                report.throughput_tps,
                report.avg_latency_ms,
            ));
        }
    }
    print_table(
        "Figure 6(vi) extension: six regions under per-link WAN bandwidth limits (f = 2)",
        "Protocol    bandwidth      throughput          latency",
        &bw_rows,
    );
}
