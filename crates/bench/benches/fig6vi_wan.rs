//! Figure 6(vi)/(vii): wide-area replication over 1–6 regions, plus the
//! bandwidth experiments the wire-size model enables: the same six-region
//! topology swept over per-link WAN bandwidth, an offered-load sweep at
//! fixed bandwidth showing throughput saturating as the leader's NIC queue
//! builds (sender-side contention), a vote-implosion sweep showing the
//! leader's *ingress* lane pinning throughput as n grows (receiver-side
//! contention), and an MTU chunk-size sweep under mixed elephant/mouse
//! traffic (head-of-line blocking vs chunked pipelining). None of these
//! effects exist under an infinite-capacity pipe model.
//!
//! `FLEXITRUST_BENCH_SCALE=smoke` shrinks every sweep to a representative
//! handful of points (the CI smoke configuration). The chunking sweep
//! always runs the atomic-vs-chunked pair and asserts the chunked run's
//! p99 is no worse — the CI regression gate for the pipelining model.

use flexitrust::prelude::*;
use flexitrust_bench::{
    bench_scale, eval_spec, mixed_elephant_rx_spec, mixed_elephant_spec, print_table, run,
    BenchScale,
};

fn wan_spec(protocol: ProtocolId, regions: usize, clients: usize) -> ScenarioSpec {
    let mut spec = eval_spec(protocol, 2);
    spec.regions = regions;
    // WAN latencies need a longer window to reach steady state.
    spec.duration_us = 1_200_000;
    spec.warmup_us = 400_000;
    spec.clients = clients;
    spec
}

fn main() {
    let smoke = bench_scale() == BenchScale::Smoke;

    let protocols: &[ProtocolId] = if smoke {
        &[ProtocolId::FlexiZz]
    } else {
        &[ProtocolId::MinBft, ProtocolId::Pbft, ProtocolId::FlexiZz]
    };
    let region_sweep: Vec<usize> = if smoke { vec![1, 6] } else { (1..=6).collect() };
    let mut rows = Vec::new();
    for &protocol in protocols {
        for &regions in &region_sweep {
            let report = run(wan_spec(protocol, regions, 4_000));
            rows.push(format!(
                "{:<11} regions={} tput={:>10.0} txn/s   lat={:>7.2} ms",
                protocol.name(),
                regions,
                report.throughput_tps,
                report.avg_latency_ms,
            ));
        }
    }
    print_table(
        "Figure 6(vi)/(vii): wide-area replication, regions added in paper order (f = 2)",
        "Protocol    regions     throughput          latency",
        &rows,
    );

    // Bandwidth sweep: six regions, shrinking WAN links. Unlimited is the
    // seed's pure-latency model; the constrained rows add size/bandwidth
    // transmission time — and now sender-NIC queueing — to every
    // inter-region delivery.
    let bw_protocols: &[ProtocolId] = if smoke {
        &[ProtocolId::FlexiZz]
    } else {
        &[ProtocolId::Pbft, ProtocolId::FlexiZz]
    };
    let bw_points: &[(&str, BandwidthConfig)] = if smoke {
        &[
            ("unlimited", BandwidthConfig::unlimited()),
            ("20 Mbps", BandwidthConfig::wan_constrained(20)),
        ]
    } else {
        &[
            ("unlimited", BandwidthConfig::unlimited()),
            ("100 Mbps", BandwidthConfig::wan_constrained(100)),
            ("20 Mbps", BandwidthConfig::wan_constrained(20)),
            ("5 Mbps", BandwidthConfig::wan_constrained(5)),
        ]
    };
    let mut bw_rows = Vec::new();
    for &protocol in bw_protocols {
        for (label, bandwidth) in bw_points {
            let mut spec = wan_spec(protocol, 6, 2_000);
            spec.bandwidth = *bandwidth;
            let report = run(spec);
            bw_rows.push(format!(
                "{:<11} wan={:<9} tput={:>10.0} txn/s   lat={:>7.2} ms   queue={:>8.2} ms",
                protocol.name(),
                label,
                report.throughput_tps,
                report.avg_latency_ms,
                report.net_queue_delay_ns as f64 / 1e6,
            ));
        }
    }
    print_table(
        "Figure 6(vi) extension: six regions under per-link WAN bandwidth limits (f = 2)",
        "Protocol    bandwidth      throughput          latency        total queueing",
        &bw_rows,
    );

    // Saturation sweep: fixed (thin) WAN links, growing offered load. With
    // links as serialising FIFO queues, every broadcast copy the leader
    // emits occupies its NIC for a full wire time, so throughput flattens
    // against the NIC's capacity while queueing delay — and with it client
    // latency — keeps climbing: the saturation knee of a leader-based
    // protocol at geo-scale.
    let load_sweep: &[usize] = if smoke {
        &[250, 2_000]
    } else {
        &[125, 250, 500, 1_000, 2_000, 4_000]
    };
    let mut sat_rows = Vec::new();
    for &clients in load_sweep {
        let mut spec = wan_spec(ProtocolId::FlexiZz, 6, clients);
        spec.bandwidth = BandwidthConfig::wan_constrained(20);
        let report = run(spec);
        let leader_util = report.max_link_utilization();
        sat_rows.push(format!(
            "clients={:<6} tput={:>10.0} txn/s   lat={:>8.2} ms   leader NIC util={:>5.2}   queue={:>9.2} ms",
            clients,
            report.throughput_tps,
            report.avg_latency_ms,
            leader_util,
            report.net_queue_delay_ns as f64 / 1e6,
        ));
    }
    print_table(
        "Figure 6(vi) extension: Flexi-ZZ saturation under 20 Mbps WAN links (6 regions, f = 2)",
        "Load         throughput            latency       busiest link           queueing",
        &sat_rows,
    );

    // Vote-implosion sweep: growing n, constrained replica *ingress*, and
    // small batches so per-transaction vote bytes — which scale with n,
    // unlike the batch broadcast or the client uploads — dominate every
    // replica's ingest lanes. With a thin ingest pipe the run is
    // receive-bound: throughput falls as n grows while the free-ingest run
    // holds the closed-loop rate — receiver-side contention that a
    // sender-NIC-only model misses entirely.
    let implosion_fs: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut imp_rows = Vec::new();
    for &f in implosion_fs {
        let implosion_spec = |ingress: Option<u64>| {
            let mut spec = wan_spec(ProtocolId::FlexiBft, 3, 400);
            spec.f = f;
            spec.batch_size = 10;
            let mut bw = BandwidthConfig::wan_constrained(100);
            bw.ingress_mbps = ingress;
            spec.bandwidth = bw;
            spec
        };
        let free = run(implosion_spec(None));
        let report = run(implosion_spec(Some(5)));
        imp_rows.push(format!(
            "f={:<2} n={:<3} tput={:>9.0} / {:>9.0} txn/s   lat={:>8.2} ms   ingest util={:>5.2}",
            f,
            report.n,
            free.throughput_tps,
            report.throughput_tps,
            report.avg_latency_ms,
            report.max_ingress_utilization(),
        ));
    }
    print_table(
        "Vote implosion: Flexi-BFT, free vs 5 Mbps replica ingest (3 regions, batch 10)",
        "Scale        throughput rx=inf / rx=5M    latency (rx=5M)   busiest ingress lane",
        &imp_rows,
    );

    // Chunk-size sweep under mixed elephant/mouse traffic: occasional large
    // range-scan replies share each replica's client lane with a stream of
    // small replies. Atomic reservations head-of-line block the small
    // replies behind every elephant; MTU chunks let them slip through. The
    // atomic-vs-chunked pair is asserted (chunked p99 may not regress) —
    // this runs in every scale, including the CI smoke configuration.
    let chunk_points: &[(&str, Option<usize>)] = if smoke {
        &[("atomic", None), ("1500 B", Some(1_500))]
    } else {
        &[
            ("atomic", None),
            ("64 kB", Some(64 * 1024)),
            ("16 kB", Some(16 * 1024)),
            ("4 kB", Some(4 * 1024)),
            ("1500 B", Some(1_500)),
        ]
    };
    let mut chunk_rows = Vec::new();
    let mut atomic_p99 = None;
    let mut mtu_p99 = None;
    for (label, chunk) in chunk_points {
        let mut spec = mixed_elephant_spec(eval_spec(ProtocolId::FlexiBft, 2));
        spec.bandwidth.chunk_bytes = *chunk;
        let report = run(spec);
        match chunk {
            None => atomic_p99 = Some(report.p99_latency_ms),
            Some(1_500) => mtu_p99 = Some(report.p99_latency_ms),
            _ => {}
        }
        chunk_rows.push(format!(
            "chunk={:<8} tput={:>10.0} txn/s   lat(avg/p99)={:>7.2}/{:>8.2} ms   queue={:>8.2} ms",
            label,
            report.throughput_tps,
            report.avg_latency_ms,
            report.p99_latency_ms,
            report.net_queue_delay_ns as f64 / 1e6,
        ));
    }
    print_table(
        "MTU chunking under mixed elephant/mouse traffic (Flexi-BFT, 50 Mbps client lanes)",
        "Chunk          throughput             latency                    queueing",
        &chunk_rows,
    );
    let (atomic_p99, mtu_p99) = (
        atomic_p99.expect("atomic point always runs"),
        mtu_p99.expect("1500 B point always runs"),
    );
    assert!(
        mtu_p99 <= atomic_p99,
        "chunked p99 regressed: {mtu_p99:.2} ms > atomic {atomic_p99:.2} ms"
    );
    println!(
        "chunking gate: p99 {atomic_p99:.2} ms (atomic) -> {mtu_p99:.2} ms (1500 B chunks) — ok"
    );

    // Receive-side chunking gate: the same elephant/mouse shape moved onto
    // the replicas' *ingest* lanes (every link unlimited except
    // `ingress_mbps`; ~200 kB PrePrepares are the elephants, votes the
    // mice). With atomic rx reservations a vote arriving mid-ingest waits
    // for the elephant's last byte; chunked rx must deliver a p99 that is
    // no worse. Asserted in every scale, including the CI smoke run.
    let mut rx_rows = Vec::new();
    let mut rx_pair = (None, None);
    for (label, chunk) in [("atomic", None), ("1500 B", Some(1_500usize))] {
        let mut spec = mixed_elephant_rx_spec(ScenarioSpec::quick_test(ProtocolId::FlexiBft));
        spec.bandwidth.chunk_bytes = chunk;
        let report = run(spec);
        match chunk {
            None => rx_pair.0 = Some(report.p99_latency_ms),
            Some(_) => rx_pair.1 = Some(report.p99_latency_ms),
        }
        rx_rows.push(format!(
            "rx chunk={:<8} tput={:>10.0} txn/s   lat(avg/p99)={:>6.2}/{:>7.2} ms   ingest util={:>5.2}",
            label,
            report.throughput_tps,
            report.avg_latency_ms,
            report.p99_latency_ms,
            report.max_ingress_utilization(),
        ));
    }
    print_table(
        "Chunked ingress under elephant PrePrepares (Flexi-BFT, 400 Mbps replica ingest)",
        "Chunk             throughput            latency                 busiest ingress lane",
        &rx_rows,
    );
    let (atomic_rx_p99, mtu_rx_p99) = (
        rx_pair.0.expect("atomic rx point always runs"),
        rx_pair.1.expect("1500 B rx point always runs"),
    );
    assert!(
        mtu_rx_p99 <= atomic_rx_p99,
        "chunked rx p99 regressed: {mtu_rx_p99:.2} ms > atomic {atomic_rx_p99:.2} ms"
    );
    println!(
        "rx chunking gate: p99 {atomic_rx_p99:.2} ms (atomic rx) -> {mtu_rx_p99:.2} ms (1500 B chunks) — ok"
    );
}
