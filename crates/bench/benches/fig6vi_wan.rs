//! Figure 6(vi)/(vii): wide-area replication over 1–6 regions.

use flexitrust::prelude::*;
use flexitrust_bench::{eval_spec, print_table, run};

fn main() {
    let protocols = [ProtocolId::MinBft, ProtocolId::Pbft, ProtocolId::FlexiZz];
    let mut rows = Vec::new();
    for protocol in protocols {
        for regions in 1..=6usize {
            let mut spec = eval_spec(protocol, 2);
            spec.regions = regions;
            // WAN latencies need a longer window to reach steady state.
            spec.duration_us = 1_200_000;
            spec.warmup_us = 400_000;
            spec.clients = 4_000;
            let report = run(spec);
            rows.push(format!(
                "{:<11} regions={} tput={:>10.0} txn/s   lat={:>7.2} ms",
                protocol.name(),
                regions,
                report.throughput_tps,
                report.avg_latency_ms,
            ));
        }
    }
    print_table(
        "Figure 6(vi)/(vii): wide-area replication, regions added in paper order (f = 2)",
        "Protocol    regions     throughput          latency",
        &rows,
    );
}
