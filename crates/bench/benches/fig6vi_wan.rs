//! Figure 6(vi)/(vii): wide-area replication over 1–6 regions, plus the two
//! bandwidth experiments the wire-size model enables: the same six-region
//! topology swept over per-link WAN bandwidth, and an offered-load sweep at
//! fixed bandwidth showing throughput saturating as the leader's NIC queue
//! builds — the sender-side contention the serialising FIFO link model
//! captures and an infinite-capacity pipe cannot.
//!
//! `FLEXITRUST_BENCH_SCALE=smoke` shrinks every sweep to a representative
//! handful of points (the CI smoke configuration).

use flexitrust::prelude::*;
use flexitrust_bench::{bench_scale, eval_spec, print_table, run, BenchScale};

fn wan_spec(protocol: ProtocolId, regions: usize, clients: usize) -> ScenarioSpec {
    let mut spec = eval_spec(protocol, 2);
    spec.regions = regions;
    // WAN latencies need a longer window to reach steady state.
    spec.duration_us = 1_200_000;
    spec.warmup_us = 400_000;
    spec.clients = clients;
    spec
}

fn main() {
    let smoke = bench_scale() == BenchScale::Smoke;

    let protocols: &[ProtocolId] = if smoke {
        &[ProtocolId::FlexiZz]
    } else {
        &[ProtocolId::MinBft, ProtocolId::Pbft, ProtocolId::FlexiZz]
    };
    let region_sweep: Vec<usize> = if smoke { vec![1, 6] } else { (1..=6).collect() };
    let mut rows = Vec::new();
    for &protocol in protocols {
        for &regions in &region_sweep {
            let report = run(wan_spec(protocol, regions, 4_000));
            rows.push(format!(
                "{:<11} regions={} tput={:>10.0} txn/s   lat={:>7.2} ms",
                protocol.name(),
                regions,
                report.throughput_tps,
                report.avg_latency_ms,
            ));
        }
    }
    print_table(
        "Figure 6(vi)/(vii): wide-area replication, regions added in paper order (f = 2)",
        "Protocol    regions     throughput          latency",
        &rows,
    );

    // Bandwidth sweep: six regions, shrinking WAN links. Unlimited is the
    // seed's pure-latency model; the constrained rows add size/bandwidth
    // transmission time — and now sender-NIC queueing — to every
    // inter-region delivery.
    let bw_protocols: &[ProtocolId] = if smoke {
        &[ProtocolId::FlexiZz]
    } else {
        &[ProtocolId::Pbft, ProtocolId::FlexiZz]
    };
    let bw_points: &[(&str, BandwidthConfig)] = if smoke {
        &[
            ("unlimited", BandwidthConfig::unlimited()),
            ("20 Mbps", BandwidthConfig::wan_constrained(20)),
        ]
    } else {
        &[
            ("unlimited", BandwidthConfig::unlimited()),
            ("100 Mbps", BandwidthConfig::wan_constrained(100)),
            ("20 Mbps", BandwidthConfig::wan_constrained(20)),
            ("5 Mbps", BandwidthConfig::wan_constrained(5)),
        ]
    };
    let mut bw_rows = Vec::new();
    for &protocol in bw_protocols {
        for (label, bandwidth) in bw_points {
            let mut spec = wan_spec(protocol, 6, 2_000);
            spec.bandwidth = *bandwidth;
            let report = run(spec);
            bw_rows.push(format!(
                "{:<11} wan={:<9} tput={:>10.0} txn/s   lat={:>7.2} ms   queue={:>8.2} ms",
                protocol.name(),
                label,
                report.throughput_tps,
                report.avg_latency_ms,
                report.net_queue_delay_ns as f64 / 1e6,
            ));
        }
    }
    print_table(
        "Figure 6(vi) extension: six regions under per-link WAN bandwidth limits (f = 2)",
        "Protocol    bandwidth      throughput          latency        total queueing",
        &bw_rows,
    );

    // Saturation sweep: fixed (thin) WAN links, growing offered load. With
    // links as serialising FIFO queues, every broadcast copy the leader
    // emits occupies its NIC for a full wire time, so throughput flattens
    // against the NIC's capacity while queueing delay — and with it client
    // latency — keeps climbing: the saturation knee of a leader-based
    // protocol at geo-scale.
    let load_sweep: &[usize] = if smoke {
        &[250, 2_000]
    } else {
        &[125, 250, 500, 1_000, 2_000, 4_000]
    };
    let mut sat_rows = Vec::new();
    for &clients in load_sweep {
        let mut spec = wan_spec(ProtocolId::FlexiZz, 6, clients);
        spec.bandwidth = BandwidthConfig::wan_constrained(20);
        let report = run(spec);
        let leader_util = report.max_link_utilization();
        sat_rows.push(format!(
            "clients={:<6} tput={:>10.0} txn/s   lat={:>8.2} ms   leader NIC util={:>5.2}   queue={:>9.2} ms",
            clients,
            report.throughput_tps,
            report.avg_latency_ms,
            leader_util,
            report.net_queue_delay_ns as f64 / 1e6,
        ));
    }
    print_table(
        "Figure 6(vi) extension: Flexi-ZZ saturation under 20 Mbps WAN links (6 regions, f = 2)",
        "Load         throughput            latency       busiest link           queueing",
        &sat_rows,
    );
}
