//! The zero-copy message-plane throughput harness (PR 5).
//!
//! Unlike the figure benches, which report *simulated* metrics, this
//! harness measures the repository itself: how fast the simulator's event
//! loop runs on the wall clock (events/sec), the end-to-end transaction
//! rate the simulated cluster sustains on the broadcast-heavy scenario,
//! and the wall-clock throughput of the loopback-TCP host. Together they
//! are the repo's recorded performance trajectory: the numbers land in
//! `BENCH_PR5.json` (committed at the repo root, regenerated and uploaded
//! as a CI artifact on every run).
//!
//! The scenario is deliberately the message plane's worst case: n = 25
//! replicas (f = 8), batches of 50 × 4 KiB updates (a ~210 kB PrePrepare
//! elephant per batch), finite replica links with MTU chunking *and*
//! constrained ingress — so every proposal broadcast fans out 25 ways,
//! crosses its egress lane chunk by chunk and serialises again on every
//! receiver's ingest lane. Before the zero-copy refactor each of those
//! fan-out copies deep-cloned the batch (and every event carried the full
//! message by value through the heap); after it a broadcast is one
//! allocation plus reference-count bumps.
//!
//! `BASELINE_EVENTS_PER_SEC` is the pre-refactor baseline, measured with
//! this same harness on this same scenario at the parent commit of the
//! zero-copy refactor (deep-copying message plane), on the machine that
//! generated the committed `BENCH_PR5.json`. The JSON records the current
//! run's speedup against it; CI gates on the absolute events/sec floor,
//! which is set far enough below the measured post-refactor rate to
//! absorb runner variance while still failing on a true message-plane
//! regression (a reintroduced deep copy roughly halves the rate).

use flexitrust::prelude::*;
use flexitrust_bench::{bench_scale, broadcast_heavy_spec, BenchScale};
use std::time::Instant;

/// Pre-refactor baseline (events/sec), measured with this harness at the
/// commit preceding the zero-copy message plane; see the module docs.
/// Methodology is identical to the current measurement: best wall-clock of
/// three back-to-back runs on a quiet machine (best-of-N is the standard
/// way to strip scheduler noise from a deterministic workload — every run
/// processes the exact same 309 072 events).
const BASELINE_EVENTS_PER_SEC: f64 = 324_000.0;

/// Minimum acceptable simulator speed on the broadcast-heavy scenario, in
/// events/sec. CI fails below this floor. It is set well under the
/// post-refactor rate (≈ 700 k events/s on the reference machine) because
/// CI runners are slower and noisy — the floor catches a message plane
/// that collapsed (the pre-refactor deep-copying plane measured ≈ 320 k
/// on the reference machine), while the machine-independent zero-copy pin
/// is `tests/zero_copy.rs`'s allocation-count test.
const MIN_EVENTS_PER_SEC: f64 = 150_000.0;

/// Wall-clock measurement repetitions; the best run is recorded.
const MEASURE_RUNS: usize = 3;

struct SimMeasurement {
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    sim_txn_per_sec: f64,
    completed_txns: u64,
    messages_delivered: u64,
}

fn measure_sim_once(spec: ScenarioSpec) -> SimMeasurement {
    let start = Instant::now();
    let report = Simulation::new(spec).run();
    let wall_s = start.elapsed().as_secs_f64();
    SimMeasurement {
        events: report.events_processed,
        wall_s,
        events_per_sec: report.events_processed as f64 / wall_s,
        sim_txn_per_sec: report.throughput_tps,
        completed_txns: report.completed_txns,
        messages_delivered: report.messages_delivered,
    }
}

/// Best of [`MEASURE_RUNS`] back-to-back runs. The simulation is
/// deterministic — every run processes the identical event schedule — so
/// the spread between runs is pure machine noise and the minimum wall
/// time is the honest estimate of the simulator's speed.
fn measure_sim(spec: ScenarioSpec) -> SimMeasurement {
    let mut best: Option<SimMeasurement> = None;
    for _ in 0..MEASURE_RUNS {
        let m = measure_sim_once(spec.clone());
        if best.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            best = Some(m);
        }
    }
    best.expect("at least one measurement run")
}

fn main() {
    let scale = bench_scale();
    // The smoke run keeps CI minutes bounded; quick/full measure a longer
    // window so the steady-state rate dominates the warm-up.
    // Closed-loop latency on this saturated scenario is ~250 ms, so even
    // the smoke window must stretch past it for completions to land
    // inside the measured span.
    let (duration_us, warmup_us, tcp_txns) = match scale {
        BenchScale::Smoke => (300_000, 60_000, 200),
        BenchScale::Quick => (400_000, 100_000, 400),
        BenchScale::Full => (1_200_000, 300_000, 1_000),
    };

    println!("=== zero-copy message plane: measured throughput ===");
    let sim = measure_sim(broadcast_heavy_spec(duration_us, warmup_us));
    assert!(
        sim.completed_txns > 0,
        "the broadcast-heavy scenario must complete transactions in the measured window"
    );
    println!(
        "simulator  n=25 batch=50 chunked+ingress: {} events in {:.3} s = {:>10.0} events/s",
        sim.events, sim.wall_s, sim.events_per_sec
    );
    println!(
        "           simulated end-to-end rate: {:>10.0} txn/s ({} txns, {} messages)",
        sim.sim_txn_per_sec, sim.completed_txns, sim.messages_delivered
    );

    // The TCP host: real bytes over loopback sockets, wall-clock rate.
    // Two spans are recorded: the workload span (`wall_seconds`, which
    // `txn_per_sec` is computed over) and the total including cluster
    // startup and shutdown (`total_seconds`).
    let tcp_start = Instant::now();
    let cluster = flexitrust::runtime::TcpCluster::start(ProtocolId::FlexiBft, 1, 20)
        .expect("tcp cluster starts");
    let summary = cluster.run_workload(tcp_txns, 8, std::time::Duration::from_secs(120));
    cluster.shutdown();
    let tcp_total_s = tcp_start.elapsed().as_secs_f64();
    let tcp_wall_s = summary.elapsed.as_secs_f64();
    assert_eq!(
        summary.completed_txns, tcp_txns as u64,
        "TCP workload must complete"
    );
    println!(
        "tcp host   n=4 batch=20: {} txns in {:.3} s = {:>8.0} txn/s wall-clock ({:.3} s with startup/shutdown)",
        summary.completed_txns, tcp_wall_s, summary.throughput_tps, tcp_total_s
    );

    let speedup = if BASELINE_EVENTS_PER_SEC > 0.0 {
        sim.events_per_sec / BASELINE_EVENTS_PER_SEC
    } else {
        0.0
    };
    if BASELINE_EVENTS_PER_SEC > 0.0 {
        println!(
            "speedup vs pre-refactor baseline ({:.0} events/s): {:.2}x",
            BASELINE_EVENTS_PER_SEC, speedup
        );
    }

    // BENCH_PR5.json lands at the repo root whatever directory the bench
    // runs from.
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    let json = format!(
        "{{\n  \"scenario\": {{\n    \"protocol\": \"FlexiBft\",\n    \"n\": 25,\n    \"batch_size\": 50,\n    \"value_size\": 4096,\n    \"clients\": 2000,\n    \"chunk_bytes\": 9000,\n    \"local_mbps\": 10000,\n    \"ingress_mbps\": 10000,\n    \"duration_us\": {duration_us},\n    \"warmup_us\": {warmup_us},\n    \"scale\": \"{scale:?}\"\n  }},\n  \"simulator\": {{\n    \"events_processed\": {events},\n    \"wall_seconds\": {wall:.4},\n    \"events_per_sec\": {eps:.0},\n    \"sim_txn_per_sec\": {tps:.0},\n    \"completed_txns\": {txns},\n    \"messages_delivered\": {msgs}\n  }},\n  \"baseline\": {{\n    \"pre_refactor_events_per_sec\": {base:.0},\n    \"speedup_vs_baseline\": {speedup:.2}\n  }},\n  \"tcp_host\": {{\n    \"n\": 4,\n    \"batch_size\": 20,\n    \"txns\": {tcp_txns},\n    \"wall_seconds\": {tcp_wall:.4},\n    \"total_seconds\": {tcp_total:.4},\n    \"txn_per_sec\": {tcp_tps:.0}\n  }},\n  \"gate\": {{\n    \"min_events_per_sec\": {floor:.0}\n  }}\n}}\n",
        events = sim.events,
        wall = sim.wall_s,
        eps = sim.events_per_sec,
        tps = sim.sim_txn_per_sec,
        txns = sim.completed_txns,
        msgs = sim.messages_delivered,
        base = BASELINE_EVENTS_PER_SEC,
        speedup = speedup,
        tcp_wall = tcp_wall_s,
        tcp_total = tcp_total_s,
        tcp_tps = summary.throughput_tps,
        floor = MIN_EVENTS_PER_SEC,
    );
    std::fs::write(json_path, &json).expect("write BENCH_PR5.json");
    println!("wrote {json_path}");

    // The CI gate: the simulator must clear the events/sec floor. Skipped
    // while the floor is unset (the pre-refactor measurement run).
    if MIN_EVENTS_PER_SEC > 0.0 {
        assert!(
            sim.events_per_sec >= MIN_EVENTS_PER_SEC,
            "simulator events/sec regressed: {:.0} < floor {:.0}",
            sim.events_per_sec,
            MIN_EVENTS_PER_SEC
        );
    }
}
