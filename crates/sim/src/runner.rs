//! The discrete-event simulation loop.
//!
//! The simulator drives the same [`ConsensusEngine`] implementations used by
//! the threaded runtime, but instead of real threads and sockets it keeps a
//! global event queue ordered by simulated time (nanoseconds). Each replica
//! is modelled as:
//!
//! * a set of **worker threads** (one per `workers_per_replica`, except that
//!   protocols without out-of-order consensus effectively use a single
//!   worker — the paper's observation that sequential protocols leave their
//!   threads under-saturated);
//! * a **trusted component** whose accesses (observed through the enclave's
//!   statistics) are serialised and charged the hardware access latency plus
//!   in-enclave signing cost; and
//! * the **engine** itself, hosted behind the shared
//!   [`flexitrust_host::Dispatcher`]: the engine's emitted actions are
//!   translated once, in the host layer, into simulator events (message
//!   deliveries after sender-NIC queueing plus wire-size/bandwidth
//!   transmission time plus latency — see [`crate::link::LinkQueues`] —
//!   and timer expirations) or into client accounting (replies). The
//!   simulator itself only implements the [`EngineHost`] primitives.
//!
//! Clients are closed-loop and modelled in aggregate: each of the
//! `spec.clients` logical clients keeps exactly one transaction outstanding;
//! a transaction completes when the protocol's reply quorum of distinct
//! replicas has replied (with the Zyzzyva/MinZZ fallback path modelled as a
//! timeout plus an extra round trip when the full-replica quorum cannot be
//! reached), after which the client immediately submits a fresh transaction.

use crate::chaos::{ChaosEvent, CrashAtSeq, LinkChaos};
use crate::cost::CostModel;
use crate::faults::{DeliveryFate, FaultPlan};
use crate::link::{Direction, LinkClass, LinkQueues, Nic};
use crate::metrics::{latency_stats_ms, CommittedTxn, SimReport};
use crate::net::NetworkModel;
use crate::registry::{build_replicas, ReplicaSetup};
use crate::spec::ScenarioSpec;
use flexitrust_host::{Dispatcher, EngineHost, TimerToken};
use flexitrust_protocol::{
    result_key, result_matches_key, ClientReply, ConsensusEngine, KvResultKey, Message,
    SharedMessage, TimerKind,
};
use flexitrust_trusted::SharedEnclave;
use flexitrust_types::{ClientId, QuorumRule, ReplicaId, RequestId, SeqNum, Transaction};
use flexitrust_workload::WorkloadGenerator;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

type Ns = u64;

#[derive(Debug)]
enum EventKind {
    Deliver {
        to: ReplicaId,
        from: ReplicaId,
        msg: SharedMessage,
    },
    /// A message departing over a finite-bandwidth link: reserves the
    /// sender's NIC when the clock reaches the departure time, so
    /// concurrent transfers reserve in global time order (a departure-time
    /// FIFO) rather than in event-dispatch order — an engine invocation
    /// processed early but departing late must not hold the wire against a
    /// transfer that physically leaves first. Zero-transmit traffic skips
    /// this hop and schedules its `Deliver` directly (the bit-exact
    /// pure-latency path).
    ///
    /// With `chunk_bytes` configured, a transfer crosses the lane one
    /// MTU-sized chunk at a time: `offset_bytes` marks how much has already
    /// cleared the wire, and each chunk's completion schedules the next
    /// chunk as a fresh `Transmit`, letting other transfers that became
    /// ready in between interleave instead of waiting for the last byte.
    Transmit {
        to: ReplicaId,
        from: ReplicaId,
        msg: SharedMessage,
        /// Total wire size, computed once at send time — chunk events must
        /// not re-walk the message (a batch) per chunk.
        bytes: usize,
        transmit_ns: u64,
        extra_ns: u64,
        offset_bytes: usize,
    },
    /// A message whose last byte reached the receiver: reserves the
    /// receiver's ingress lane (FIFO in arrival order) before the engine
    /// sees it, so a vote implosion at the leader serialises on its ingest
    /// NIC. Skipped entirely when no ingress bandwidth is configured (the
    /// bit-exact receivers-ingest-for-free path).
    ///
    /// With `chunk_bytes` configured, ingest crosses the lane chunk by
    /// chunk exactly like egress (`offset_bytes` marks how much has been
    /// ingested; each chunk's completion schedules the next), so an
    /// elephant no longer head-of-line blocks the receiver's ingest lane
    /// that egress chunking opened up on the send side.
    Ingest {
        to: ReplicaId,
        from: ReplicaId,
        msg: SharedMessage,
        /// Total wire size, for cutting chunk spans.
        bytes: usize,
        /// Atomic ingest wire time of the whole message.
        rx_ns: u64,
        offset_bytes: usize,
    },
    /// A client reply departing over a finite-bandwidth client lane;
    /// same departure-time FIFO (and chunking) as `Transmit`. Replies pay
    /// no ingress: the aggregate client pool stands for hundreds of
    /// independent client NICs, not one ingest pipe.
    TransmitReply {
        from: ReplicaId,
        reply: ClientReply,
        bytes: usize,
        transmit_ns: u64,
        offset_bytes: usize,
    },
    /// A batch of client request uploads ready to cross the aggregate
    /// client uplink; same departure-time FIFO (and chunking) as
    /// `Transmit`.
    ClientUpload {
        txns: Vec<Transaction>,
        bytes: usize,
        offset_bytes: usize,
    },
    /// A batch of client request uploads arriving at the primary's
    /// client-facing NIC; same ingress serialisation (and chunking) as
    /// `Ingest`.
    IngestUpload {
        txns: Vec<Transaction>,
        /// Total wire size, for cutting chunk spans.
        bytes: usize,
        /// Atomic ingest wire time of the whole batch.
        rx_ns: u64,
        offset_bytes: usize,
        /// The NIC charged for this ingest: resolved from the current
        /// primary when the first chunk starts, then pinned so later
        /// chunks of one batch cannot smear across NICs if a view change
        /// completes mid-ingest.
        nic: Option<ReplicaId>,
    },
    Timer {
        replica: ReplicaId,
        timer: TimerKind,
        token: TimerToken,
    },
    ClientArrival {
        txns: Vec<Transaction>,
    },
    FallbackComplete {
        client: ClientId,
        request: RequestId,
    },
}

/// Which stateless transmit-time function governs a transfer's lane, so
/// the shared chunk-reservation step can cut cumulative chunk spans for
/// replica links and client links alike.
#[derive(Clone, Copy)]
enum ChunkLane {
    /// A replica-to-replica link (local or WAN bandwidth by region).
    Replica { from: ReplicaId, to: ReplicaId },
    /// A client↔replica link (client bandwidth).
    Client,
    /// The receive side of a replica-to-replica link (ingress bandwidth).
    ReplicaIngress { from: ReplicaId, to: ReplicaId },
    /// The receive side of a replica's client-facing lane (ingress
    /// bandwidth on request uploads).
    ClientIngress,
}

struct Event {
    at: Ns,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Host {
    engine: Box<dyn ConsensusEngine>,
    enclave: Option<SharedEnclave>,
    workers: Vec<Ns>,
    tc_free: Ns,
    tc_seen: u64,
}

struct RequestTracker {
    submit: Ns,
    /// Votes per `(seq, result digest)` candidate, mirroring
    /// `ClientLibrary`: divergent speculative replies must not count
    /// towards one quorum, however many distinct replicas sent them.
    /// A small insertion-ordered list, probed by comparing against the
    /// incoming reply without cloning its result bytes — almost every
    /// request only ever has one candidate.
    votes: Vec<((SeqNum, KvResultKey), BTreeSet<ReplicaId>)>,
    /// Every distinct replica that replied, across all candidates. Arms the
    /// fast-path fallback timer: hearing from a fallback quorum of replicas
    /// without completing means the fast path has failed, whether the
    /// replies agree or not.
    repliers: BTreeSet<ReplicaId>,
    /// Sequence number of the candidate that completed the request; set
    /// when the quorum (or fallback) is reached. Completion removes the
    /// tracker from the request map, so a tracker's presence *is* the
    /// not-yet-completed state.
    seq: SeqNum,
    fallback_scheduled: bool,
}

impl RequestTracker {
    fn new(submit: Ns) -> Self {
        RequestTracker {
            submit,
            votes: Vec::new(),
            repliers: BTreeSet::new(),
            seq: SeqNum(0),
            fallback_scheduled: false,
        }
    }

    /// The strongest `(seq, digest)` candidate and its vote count; ties
    /// break towards the smallest candidate so the choice is deterministic
    /// regardless of hash-map iteration order.
    fn best_candidate(&self) -> Option<(SeqNum, usize)> {
        let mut best: Option<(&(SeqNum, KvResultKey), usize)> = None;
        for (candidate, voters) in &self.votes {
            let count = voters.len();
            best = match best {
                Some((bk, bc)) if bc > count || (bc == count && bk <= candidate) => Some((bk, bc)),
                _ => Some((candidate, count)),
            };
        }
        best.map(|(k, c)| (k.0, c))
    }
}

/// The outcome of consulting the chaos plan for one send.
enum ChaosFate {
    /// Never deliver (crashed endpoint, partition boundary, or a seeded
    /// link drop).
    Drop,
    /// Deliver, possibly delayed (reorder) and possibly twice (duplicate).
    Deliver {
        /// Extra delay on the primary copy, nanoseconds (reorder draw).
        extra_ns: u64,
        /// When set, a duplicate copy arrives this much later than the
        /// primary copy would have, nanoseconds.
        duplicate_extra_ns: Option<u64>,
    },
}

/// The send-path view of the chaos state: membership drops (crashed
/// endpoints, partition boundaries) plus seeded per-link drop/dup/reorder.
/// Built only when the scenario carries a non-empty plan, so fault-free
/// runs make zero RNG draws and schedule zero extra events.
struct ChaosLinkCtx<'a> {
    down: &'a BTreeSet<ReplicaId>,
    /// Group id per replica index while a partition is active.
    partition: Option<&'a [u32]>,
    link: &'a LinkChaos,
    rng: &'a mut ChaCha12Rng,
}

impl ChaosLinkCtx<'_> {
    fn consult(&mut self, from: ReplicaId, to: ReplicaId, msg: &Message) -> ChaosFate {
        if self.down.contains(&from) || self.down.contains(&to) {
            return ChaosFate::Drop;
        }
        if let Some(groups) = self.partition {
            let group = |r: ReplicaId| groups.get(r.as_usize()).copied().unwrap_or(u32::MAX);
            if group(from) != group(to) {
                return ChaosFate::Drop;
            }
        }
        if self.link.is_empty() || !self.link.applies_to(msg) {
            return ChaosFate::Deliver {
                extra_ns: 0,
                duplicate_extra_ns: None,
            };
        }
        // Fixed draw order — drop, duplicate, reorder, each gated on its
        // configured rate — so a plan's ChaCha stream is a pure function of
        // the traffic it sees and the schedule reproduces bit-identically
        // from the seed.
        if self.link.drop_per_10k > 0 && self.rng.gen_range(0..10_000u32) < self.link.drop_per_10k {
            return ChaosFate::Drop;
        }
        let duplicate_extra_ns = if self.link.duplicate_per_10k > 0
            && self.rng.gen_range(0..10_000u32) < self.link.duplicate_per_10k
        {
            Some(self.draw_delay_ns())
        } else {
            None
        };
        let extra_ns = if self.link.reorder_per_10k > 0
            && self.rng.gen_range(0..10_000u32) < self.link.reorder_per_10k
        {
            self.draw_delay_ns()
        } else {
            0
        };
        ChaosFate::Deliver {
            extra_ns,
            duplicate_extra_ns,
        }
    }

    fn draw_delay_ns(&mut self) -> u64 {
        if self.link.reorder_max_delay_us == 0 {
            return 0;
        }
        self.rng.gen_range(0..=self.link.reorder_max_delay_us) * 1_000
    }
}

/// The simulator's [`EngineHost`] implementation: one engine invocation's
/// view of the world. Effects are buffered (events to schedule, replies to
/// account) and applied by the simulation loop once the dispatch batch
/// completes; `begin_batch` performs the CPU / trusted-component accounting
/// that fixes the batch's departure time.
struct SimEnv<'a> {
    start: Ns,
    base_cost_ns: Ns,
    tc_access_ns: Ns,
    enclave: Option<&'a SharedEnclave>,
    tc_free: &'a mut Ns,
    tc_seen: &'a mut u64,
    worker: &'a mut Ns,
    cost: &'a CostModel,
    net: &'a NetworkModel,
    faults: &'a FaultPlan,
    /// Chaos membership/link state; `None` whenever the plan is empty (the
    /// zero-cost fault-free path).
    chaos: Option<ChaosLinkCtx<'a>>,
    /// Departure time of the current dispatch batch (set by `begin_batch`).
    at: Ns,
    events: Vec<(Ns, EventKind)>,
    replies: Vec<(ReplicaId, ClientReply, Ns)>,
}

impl EngineHost for SimEnv<'_> {
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: SharedMessage) {
        let mut extra_ns = match self.faults.fate(from, to, &msg) {
            DeliveryFate::Drop => return,
            DeliveryFate::Deliver => 0,
            DeliveryFate::Delay(extra_us) => extra_us * 1_000,
        };
        if let Some(chaos) = self.chaos.as_mut() {
            match chaos.consult(from, to, &msg) {
                ChaosFate::Drop => return,
                ChaosFate::Deliver {
                    extra_ns: chaos_extra_ns,
                    duplicate_extra_ns,
                } => {
                    extra_ns += chaos_extra_ns;
                    if let Some(dup_extra_ns) = duplicate_extra_ns {
                        // The duplicate copy bypasses the bandwidth model
                        // (pure latency) — chaos duplicates are rare
                        // injected traffic, not part of the throughput
                        // accounting the link model exists for.
                        let latency_ns = self.net.replica_latency_us(from, to) * 1_000;
                        self.events.push((
                            self.at + latency_ns + extra_ns + dup_extra_ns,
                            EventKind::Deliver {
                                to,
                                from,
                                msg: msg.clone(),
                            },
                        ));
                    }
                }
            }
        }
        let bytes = msg.wire_size_bytes();
        let transmit_ns = self.net.replica_transmit_ns(from, to, bytes);
        if transmit_ns == 0 {
            // Self-delivery or an unlimited link class: pure latency, no
            // sender NIC involved — but the receiver's ingest lane may
            // still be constrained.
            let latency_ns = self.net.replica_latency_us(from, to) * 1_000;
            let arrival = self.at + latency_ns + extra_ns;
            let rx_ns = self.net.replica_ingress_ns(from, to, bytes);
            if rx_ns == 0 {
                // The seed's schedule, bit-exactly.
                self.events
                    .push((arrival, EventKind::Deliver { to, from, msg }));
            } else {
                self.events.push((
                    arrival,
                    EventKind::Ingest {
                        to,
                        from,
                        msg,
                        bytes,
                        rx_ns,
                        offset_bytes: 0,
                    },
                ));
            }
        } else {
            // The sender's NIC is a serial resource: the transfer reserves
            // it when the clock reaches the departure time, queueing behind
            // whatever is on the wire then — a broadcast's k-th copy waits
            // for the first k − 1.
            self.events.push((
                self.at,
                EventKind::Transmit {
                    to,
                    from,
                    msg,
                    bytes,
                    transmit_ns,
                    extra_ns,
                    offset_bytes: 0,
                },
            ));
        }
    }

    fn reply(&mut self, from: ReplicaId, reply: ClientReply) {
        let bytes = reply.wire_size_bytes();
        let transmit_ns = self.net.client_transmit_ns(bytes);
        if transmit_ns == 0 {
            let arrive = self.at + self.net.client_latency_us(from) * 1_000;
            self.replies.push((from, reply, arrive));
        } else {
            self.events.push((
                self.at,
                EventKind::TransmitReply {
                    from,
                    reply,
                    bytes,
                    transmit_ns,
                    offset_bytes: 0,
                },
            ));
        }
    }

    fn schedule_timer(
        &mut self,
        replica: ReplicaId,
        timer: TimerKind,
        delay_us: u64,
        token: TimerToken,
    ) {
        self.events.push((
            self.at + delay_us * 1_000,
            EventKind::Timer {
                replica,
                timer,
                token,
            },
        ));
    }

    fn send_cost_ns(&self, msg: &Message, destinations: usize) -> u64 {
        self.cost.send_cost_ns(msg, destinations)
    }

    fn execution_cost_ns(&self, txns: usize) -> u64 {
        self.cost.execution_cost_ns(txns)
    }

    fn begin_batch(&mut self, _from: ReplicaId, actions_cost_ns: u64) {
        // Trusted-component accesses observed during this invocation are
        // serialised on the component and charged its access latency.
        let mut tc_end = self.start + self.base_cost_ns;
        if let Some(enclave) = self.enclave {
            let total = enclave.stats().snapshot().total_accesses();
            let delta = total.saturating_sub(*self.tc_seen);
            *self.tc_seen = total;
            if delta > 0 {
                let tc_start = (self.start + self.base_cost_ns).max(*self.tc_free);
                *self.tc_free = tc_start + delta * self.tc_access_ns;
                tc_end = *self.tc_free;
            }
        }
        let departure = tc_end.max(self.start + self.base_cost_ns) + actions_cost_ns;
        *self.worker = departure;
        self.at = departure;
    }
}

/// A single simulation run.
pub struct Simulation {
    spec: ScenarioSpec,
    net: NetworkModel,
    /// Per-link FIFO occupancy state. Lives with the runner — the network
    /// model is cloned/shared and must stay stateless.
    links: LinkQueues,
    hosts: Vec<Host>,
    dispatcher: Dispatcher,
    events: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    now: Ns,
    requests: BTreeMap<(u64, u64), RequestTracker>,
    next_request_id: Vec<u64>,
    op_generator: WorkloadGenerator,
    latencies: Vec<Ns>,
    completed_txns: u64,
    commit_log: Vec<CommittedTxn>,
    messages_delivered: u64,
    events_processed: u64,
    reply_quorum: usize,
    fallback_quorum: usize,
    all_replicas_rule: bool,
    /// Transactions the closed-loop clients will resubmit, each with its
    /// own deadline: several clients completing in one event drain must not
    /// clobber each other's resubmit time.
    pending_resubmits: Vec<(Ns, Transaction)>,
    /// Whether the scenario carries a non-empty chaos plan; all chaos
    /// bookkeeping below is inert when false, so the event schedule stays
    /// bit-identical to a run without a plan.
    chaos_active: bool,
    /// Index of the next scripted chaos event to apply.
    chaos_cursor: usize,
    /// Replicas currently crashed by the chaos plan (distinct from
    /// `FaultPlan::failed`, which is down for the whole run).
    chaos_down: BTreeSet<ReplicaId>,
    /// Group id per replica index while a partition is active.
    chaos_partition: Option<Vec<u32>>,
    /// The plan's private seeded stream for link-chaos draws.
    chaos_rng: ChaCha12Rng,
    /// Commit-progress-triggered crash windows and their phase.
    chaos_windows: Vec<(CrashAtSeq, WindowPhase)>,
    /// Disruptive chaos events applied (partitions formed, crashes).
    chaos_disruptions: u64,
    /// Virtual time of the last restorative event (heal / recover).
    last_restore_ns: Ns,
    /// Client completions at or after the last restorative event — the
    /// liveness checker's progress signal.
    completed_after_restore: u64,
}

/// Lifecycle of one commit-progress-triggered crash window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowPhase {
    /// Waiting for the replica's own frontier to reach `crash_at_seq`.
    Armed,
    /// Crashed; waiting for the rest of the cluster to reach
    /// `recover_at_seq`.
    Down,
    /// Recovered; the window is spent.
    Done,
}

impl Simulation {
    /// Builds a simulation from a scenario, constructing the engines via the
    /// protocol registry.
    pub fn new(spec: ScenarioSpec) -> Self {
        let replicas = build_replicas(&spec);
        Self::with_replicas(spec, replicas)
    }

    /// Builds a simulation over externally constructed replicas (used by the
    /// Figure 5 ablation, which wires non-standard engine/enclave
    /// combinations).
    pub fn with_replicas(spec: ScenarioSpec, replicas: Vec<ReplicaSetup>) -> Self {
        let config = spec.system_config();
        let properties = replicas[0].engine.properties();
        let workers = if properties.out_of_order {
            spec.workers_per_replica.max(1)
        } else {
            1
        };
        let net = if spec.regions <= 1 {
            NetworkModel::lan(config.n)
        } else {
            NetworkModel::wan(config.n, spec.regions)
        }
        .with_bandwidth(spec.bandwidth);
        let reply_quorum = config.quorum(properties.reply_quorum);
        // Slow-path threshold for all-replica fast paths: Zyzzyva clients
        // gather a commit certificate from 2f + 1 speculative responses;
        // MinZZ (n = 2f + 1) needs f + 1.
        let fallback_quorum = match properties.reply_quorum {
            QuorumRule::AllReplicas => {
                if config.n == config.large_quorum() {
                    config.small_quorum()
                } else {
                    config.large_quorum()
                }
            }
            _ => reply_quorum,
        };
        let hosts: Vec<Host> = replicas
            .into_iter()
            .map(|setup| Host {
                engine: setup.engine,
                enclave: setup.enclave,
                workers: vec![0; workers],
                tc_free: 0,
                tc_seen: 0,
            })
            .collect();
        Simulation {
            op_generator: WorkloadGenerator::new(spec.workload.clone(), ClientId(0), spec.seed),
            next_request_id: vec![1; spec.clients],
            net,
            links: LinkQueues::new(),
            dispatcher: Dispatcher::new(hosts.len()),
            hosts,
            events: BinaryHeap::new(),
            event_seq: 0,
            now: 0,
            requests: BTreeMap::new(),
            latencies: Vec::new(),
            completed_txns: 0,
            commit_log: Vec::new(),
            messages_delivered: 0,
            events_processed: 0,
            reply_quorum,
            fallback_quorum,
            all_replicas_rule: properties.reply_quorum == QuorumRule::AllReplicas,
            pending_resubmits: Vec::new(),
            chaos_active: !spec.chaos.is_empty(),
            chaos_cursor: 0,
            chaos_down: BTreeSet::new(),
            chaos_partition: None,
            chaos_rng: ChaCha12Rng::seed_from_u64(spec.chaos.seed),
            chaos_windows: spec
                .chaos
                .crash_windows
                .iter()
                .map(|w| (*w, WindowPhase::Armed))
                .collect(),
            chaos_disruptions: 0,
            last_restore_ns: 0,
            completed_after_restore: 0,
            spec,
        }
    }

    fn push_event(&mut self, at: Ns, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(Reverse(Event {
            at,
            seq: self.event_seq,
            kind,
        }));
    }

    fn fresh_txn(&mut self, client: usize) -> Transaction {
        let request = self.next_request_id[client];
        self.next_request_id[client] += 1;
        let template = self.op_generator.next_transaction();
        Transaction::new(
            ClientId(client as u64),
            RequestId(request),
            template.into_op(),
        )
    }

    /// Whether a replica is currently unresponsive: crashed for the whole
    /// run by the fault plan, or temporarily down under the chaos plan.
    fn is_down(&self, replica: ReplicaId) -> bool {
        self.spec.faults.is_failed(replica) || self.chaos_down.contains(&replica)
    }

    fn current_primary(&self) -> ReplicaId {
        // Use the view of the first live replica to locate the primary.
        let n = self.hosts.len();
        for (i, host) in self.hosts.iter().enumerate() {
            if !self.is_down(ReplicaId(i as u32)) {
                return host.engine.view().primary(n);
            }
        }
        ReplicaId(0)
    }

    /// Runs the scenario to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        let total_ns = self.spec.total_time_us() * 1_000;
        let warmup_ns = self.spec.warmup_us * 1_000;
        // Initial client load: every logical client submits one transaction.
        let initial: Vec<Transaction> = (0..self.spec.clients).map(|c| self.fresh_txn(c)).collect();
        self.schedule_client_upload(1_000, initial);

        while let Some(Reverse(event)) = self.events.pop() {
            if event.at > total_ns {
                break;
            }
            if self.chaos_active {
                self.apply_chaos_until(event.at);
            }
            self.now = event.at;
            self.events_processed += 1;
            match event.kind {
                EventKind::Deliver { to, from, msg } => self.on_deliver(to, from, msg),
                EventKind::Transmit {
                    to,
                    from,
                    msg,
                    bytes,
                    transmit_ns,
                    extra_ns,
                    offset_bytes,
                } => self.on_transmit(to, from, msg, bytes, transmit_ns, extra_ns, offset_bytes),
                EventKind::Ingest {
                    to,
                    from,
                    msg,
                    bytes,
                    rx_ns,
                    offset_bytes,
                } => self.on_ingest(to, from, msg, bytes, rx_ns, offset_bytes),
                EventKind::TransmitReply {
                    from,
                    reply,
                    bytes,
                    transmit_ns,
                    offset_bytes,
                } => self.on_transmit_reply(from, reply, bytes, transmit_ns, offset_bytes),
                EventKind::ClientUpload {
                    txns,
                    bytes,
                    offset_bytes,
                } => self.on_client_upload(txns, bytes, offset_bytes),
                EventKind::IngestUpload {
                    txns,
                    bytes,
                    rx_ns,
                    offset_bytes,
                    nic,
                } => self.on_ingest_upload(txns, bytes, rx_ns, offset_bytes, nic),
                EventKind::Timer {
                    replica,
                    timer,
                    token,
                } => self.on_timer(replica, timer, token),
                EventKind::ClientArrival { txns } => self.on_client_arrival(txns),
                EventKind::FallbackComplete { client, request } => {
                    self.on_fallback(client, request)
                }
            }
            self.flush_resubmits();
            if self.chaos_active && !self.chaos_windows.is_empty() {
                self.poll_crash_windows();
            }
        }

        self.report(total_ns, warmup_ns)
    }

    // ------------------------------------------------------------------
    // Chaos plan application.
    // ------------------------------------------------------------------

    /// Applies every scripted chaos event whose time has come (the clock is
    /// about to advance to `upto`).
    fn apply_chaos_until(&mut self, upto: Ns) {
        while let Some(event) = self.spec.chaos.schedule.get(self.chaos_cursor) {
            if event.at_ns() > upto {
                break;
            }
            let event = event.clone();
            self.chaos_cursor += 1;
            self.apply_chaos_event(event);
        }
    }

    fn apply_chaos_event(&mut self, event: ChaosEvent) {
        let at = event.at_ns();
        match event {
            ChaosEvent::PartitionForm { groups, .. } => {
                let n = self.hosts.len();
                // Unnamed replicas share the implicit extra group.
                let mut membership = vec![groups.len() as u32; n];
                for (g, members) in groups.iter().enumerate() {
                    for replica in members {
                        if let Some(slot) = membership.get_mut(replica.as_usize()) {
                            *slot = g as u32;
                        }
                    }
                }
                self.chaos_partition = Some(membership);
                self.chaos_disruptions += 1;
            }
            ChaosEvent::PartitionHeal { .. } => {
                self.chaos_partition = None;
                self.mark_restored(at);
            }
            ChaosEvent::Crash { replica, .. } => {
                self.chaos_down.insert(replica);
                self.chaos_disruptions += 1;
            }
            ChaosEvent::Recover { replica, .. } => {
                self.chaos_down.remove(&replica);
                self.mark_restored(at);
                self.inject_recovery(replica, at);
            }
        }
    }

    /// A restorative event (heal / recover) was applied: restart the
    /// liveness clock the invariant checker measures progress from.
    fn mark_restored(&mut self, at: Ns) {
        self.last_restore_ns = at.max(self.now);
        self.completed_after_restore = 0;
    }

    /// A recovered replica immediately asks every live peer for the latest
    /// stable checkpoint; peers answer with `CheckpointState` (snapshot plus
    /// replay batches) through the normal engine path. The injected requests
    /// bypass the bandwidth model — they are header-only and rare, not part
    /// of the throughput the link model accounts.
    fn inject_recovery(&mut self, replica: ReplicaId, at: Ns) {
        let last_executed = self.hosts[replica.as_usize()].engine.last_executed();
        let msg: SharedMessage = Arc::new(Message::CheckpointRequest { last_executed });
        let at = at.max(self.now);
        for peer in 0..self.hosts.len() {
            let to = ReplicaId(peer as u32);
            if to == replica || self.is_down(to) {
                continue;
            }
            let latency_ns = self.net.replica_latency_us(replica, to) * 1_000;
            self.push_event(
                at + latency_ns,
                EventKind::Deliver {
                    to,
                    from: replica,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Commit-progress-triggered crash windows: crash once the replica's
    /// own frontier reaches `crash_at_seq`, recover once the rest of the
    /// cluster reaches `recover_at_seq`. Keyed on sequence numbers, not
    /// virtual time, so the same window pins identical behaviour on the
    /// threaded cluster (whose wall clock is incomparable).
    fn poll_crash_windows(&mut self) {
        for i in 0..self.chaos_windows.len() {
            let (window, phase) = self.chaos_windows[i];
            match phase {
                WindowPhase::Armed => {
                    let own = self.hosts[window.replica.as_usize()]
                        .engine
                        .last_executed()
                        .0;
                    if own >= window.crash_at_seq && !self.is_down(window.replica) {
                        self.chaos_down.insert(window.replica);
                        self.chaos_disruptions += 1;
                        self.chaos_windows[i].1 = WindowPhase::Down;
                    }
                }
                WindowPhase::Down => {
                    let others_frontier = self
                        .hosts
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != window.replica.as_usize())
                        .map(|(_, h)| h.engine.last_executed().0)
                        .max()
                        .unwrap_or(0);
                    if others_frontier >= window.recover_at_seq {
                        self.chaos_down.remove(&window.replica);
                        self.mark_restored(self.now);
                        self.chaos_windows[i].1 = WindowPhase::Done;
                        self.inject_recovery(window.replica, self.now);
                    }
                }
                WindowPhase::Done => {}
            }
        }
    }

    fn flush_resubmits(&mut self) {
        if self.pending_resubmits.is_empty() {
            return;
        }
        // Group resubmissions by their own deadline (completions in one
        // drain usually share one, so this is normally a single upload) —
        // a BTreeMap keeps the grouping deterministic.
        let mut groups: BTreeMap<Ns, Vec<Transaction>> = BTreeMap::new();
        for (at, txn) in std::mem::take(&mut self.pending_resubmits) {
            groups.entry(at.max(self.now + 1)).or_default().push(txn);
        }
        for (ready, txns) in groups {
            self.schedule_client_upload(ready, txns);
        }
    }

    /// Routes a batch of request uploads towards the primary: under
    /// unlimited client bandwidth they arrive at `ready` directly (the
    /// pure-latency path); otherwise a `ClientUpload` event reserves the
    /// aggregate client uplink when the clock reaches `ready`, so uploads
    /// serialise FIFO in departure-time order behind earlier uploads still
    /// on the pipe.
    fn schedule_client_upload(&mut self, ready: Ns, txns: Vec<Transaction>) {
        // Charge the exact bytes of the canonical submission frame the TCP
        // transport would carry, framing overhead included.
        let bytes = flexitrust_wire::client_upload_wire_size(&txns);
        let rx_ns = self.net.client_ingress_ns(bytes);
        if self.net.client_transmit_ns(bytes) > 0 {
            self.push_event(
                ready,
                EventKind::ClientUpload {
                    txns,
                    bytes,
                    offset_bytes: 0,
                },
            );
        } else if rx_ns > 0 {
            self.push_event(
                ready,
                EventKind::IngestUpload {
                    txns,
                    bytes,
                    rx_ns,
                    offset_bytes: 0,
                    nic: None,
                },
            );
        } else {
            self.push_event(ready, EventKind::ClientArrival { txns });
        }
    }

    // ------------------------------------------------------------------
    // Engine hosting: CPU / trusted-component accounting around the shared
    // dispatcher. The closure receives the dispatcher, the engine and the
    // simulator's EngineHost view; buffered effects are applied afterwards.
    // ------------------------------------------------------------------

    fn run_engine(
        &mut self,
        replica: ReplicaId,
        base_cost_ns: Ns,
        f: impl FnOnce(&mut Dispatcher, &mut dyn ConsensusEngine, &mut SimEnv),
    ) {
        let tc_access_ns = self.spec.hardware.access_latency_us() * 1_000
            + self.spec.cost.attestation_generation_ns();
        let now = self.now;
        let host = &mut self.hosts[replica.as_usize()];

        // Pick the earliest-available worker thread.
        let (widx, free_at) = host
            .workers
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, t)| (i, *t))
            .expect("hosts always have at least one worker");
        let start = now.max(free_at);

        let Host {
            engine,
            enclave,
            workers,
            tc_free,
            tc_seen,
        } = host;
        let chaos = if self.chaos_active {
            Some(ChaosLinkCtx {
                down: &self.chaos_down,
                partition: self.chaos_partition.as_deref(),
                link: &self.spec.chaos.link,
                rng: &mut self.chaos_rng,
            })
        } else {
            None
        };
        let mut env = SimEnv {
            start,
            base_cost_ns,
            tc_access_ns,
            enclave: enclave.as_ref(),
            tc_free,
            tc_seen,
            worker: &mut workers[widx],
            cost: &self.spec.cost,
            net: &self.net,
            faults: &self.spec.faults,
            chaos,
            at: start + base_cost_ns,
            events: Vec::new(),
            replies: Vec::new(),
        };
        f(&mut self.dispatcher, engine.as_mut(), &mut env);
        let SimEnv {
            events, replies, ..
        } = env;
        for (at, kind) in events {
            self.push_event(at, kind);
        }
        for (from, reply, arrive) in replies {
            self.record_reply(from, &reply, arrive);
        }
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn on_client_arrival(&mut self, txns: Vec<Transaction>) {
        let now = self.now;
        for txn in &txns {
            // `or_insert` keeps the original submit time on a
            // retransmission, so latency covers the whole client wait.
            self.requests
                .entry((txn.client().0, txn.request().0))
                .or_insert_with(|| RequestTracker::new(now));
        }
        let primary = self.current_primary();
        if self.is_down(primary) {
            // The primary is down: a real client hears nothing, times out,
            // and retransmits to whoever leads once the view has moved on.
            // Dropping the batch here would wedge the closed-loop clients
            // forever.
            let timeout_ns = self.spec.system_config().client_timeout_us * 1_000;
            self.schedule_client_upload(now + timeout_ns.max(1), txns);
            return;
        }
        let base_cost = self.spec.cost.client_request_cost_ns(txns.len());
        self.run_engine(primary, base_cost, move |dispatcher, engine, env| {
            dispatcher.client_request(engine, txns, env)
        });
    }

    /// A chunk of a message reached the head of its departure queue:
    /// reserve the sender's NIC for it (FIFO behind everything reserved
    /// before `now`). Without `chunk_bytes` the whole transfer is one
    /// chunk — the atomic reservation. The last chunk schedules the
    /// delivery (cut-through: propagation latency is paid once, after the
    /// final byte clears the wire).
    // The parameter list is the `Transmit` event payload, destructured at
    // the single dispatch site.
    #[allow(clippy::too_many_arguments)]
    fn on_transmit(
        &mut self,
        to: ReplicaId,
        from: ReplicaId,
        msg: SharedMessage,
        bytes: usize,
        transmit_ns: u64,
        extra_ns: u64,
        offset_bytes: usize,
    ) {
        let (done, end) = self.reserve_transfer_step(
            Nic::Replica(from),
            self.net.replica_link_class(from, to),
            Direction::Egress,
            ChunkLane::Replica { from, to },
            bytes,
            offset_bytes,
            transmit_ns,
            self.now,
        );
        if end < bytes {
            self.push_event(
                done,
                EventKind::Transmit {
                    to,
                    from,
                    msg,
                    bytes,
                    transmit_ns,
                    extra_ns,
                    offset_bytes: end,
                },
            );
        } else {
            self.schedule_replica_arrival(to, from, msg, bytes, done, extra_ns);
        }
    }

    /// One reservation step of a (possibly chunked) transfer on a link
    /// lane — egress and ingress alike. Returns `(done, end)`: the instant
    /// the reserved span clears the lane and the byte offset it reached —
    /// `end == total_bytes` means the transfer's last byte cleared at
    /// `done`; otherwise the caller re-enqueues its continuation event at
    /// `done` with offset `end`, so transfers that became ready in between
    /// interleave chunk by chunk. Chunk wire times are cut as cumulative
    /// differences, so the chunk times of one transfer sum to `atomic_ns`
    /// exactly — per-chunk rounding never inflates the total.
    ///
    /// `ready` is the instant this span may start (the clock for egress;
    /// the backdated arrival for an ingress first chunk).
    #[allow(clippy::too_many_arguments)]
    fn reserve_transfer_step(
        &mut self,
        nic: Nic,
        class: LinkClass,
        direction: Direction,
        lane: ChunkLane,
        total_bytes: usize,
        offset_bytes: usize,
        atomic_ns: u64,
        ready: Ns,
    ) -> (Ns, usize) {
        match self.net.chunk_bytes() {
            // A dead lane (0 Mbps saturates to u64::MAX) must never be
            // chunked: every cumulative difference would be
            // MAX.saturating_sub(MAX) = 0, turning the never-delivers link
            // infinitely fast — the exact edge the saturation exists for.
            Some(chunk) if total_bytes > chunk && atomic_ns < u64::MAX => {
                let end = (offset_bytes + chunk).min(total_bytes);
                let chunk_ns = self
                    .lane_wire_ns(lane, end)
                    .saturating_sub(self.lane_wire_ns(lane, offset_bytes));
                // Only the first chunk counts a message: `messages` tallies
                // transfers, not the chunks they crossed the wire in.
                let done = if offset_bytes == 0 {
                    self.links.reserve(nic, class, direction, ready, chunk_ns)
                } else {
                    self.links
                        .reserve_continuation(nic, class, direction, ready, chunk_ns)
                };
                (done, end)
            }
            _ => {
                let done = self.links.reserve(nic, class, direction, ready, atomic_ns);
                (done, total_bytes)
            }
        }
    }

    /// The stateless wire-time function of a transfer's lane, for cutting
    /// cumulative chunk spans.
    fn lane_wire_ns(&self, lane: ChunkLane, bytes: usize) -> u64 {
        match lane {
            ChunkLane::Replica { from, to } => self.net.replica_transmit_ns(from, to, bytes),
            ChunkLane::Client => self.net.client_transmit_ns(bytes),
            ChunkLane::ReplicaIngress { from, to } => self.net.replica_ingress_ns(from, to, bytes),
            ChunkLane::ClientIngress => self.net.client_ingress_ns(bytes),
        }
    }

    /// The last byte of a transfer left the sender at `sent`: schedule its
    /// arrival, routed through the receiver's ingress lane when one is
    /// configured.
    fn schedule_replica_arrival(
        &mut self,
        to: ReplicaId,
        from: ReplicaId,
        msg: SharedMessage,
        bytes: usize,
        sent: Ns,
        extra_ns: u64,
    ) {
        let latency_ns = self.net.replica_latency_us(from, to) * 1_000;
        let arrival = sent.saturating_add(latency_ns).saturating_add(extra_ns);
        let rx_ns = self.net.replica_ingress_ns(from, to, bytes);
        if rx_ns == 0 {
            self.push_event(arrival, EventKind::Deliver { to, from, msg });
        } else {
            self.push_event(
                arrival,
                EventKind::Ingest {
                    to,
                    from,
                    msg,
                    bytes,
                    rx_ns,
                    offset_bytes: 0,
                },
            );
        }
    }

    /// A message's last byte reached the receiver (or, for a continuation
    /// chunk, the previous chunk finished ingesting): serialise it on the
    /// receiver's ingress lane. The first reservation is backdated by the
    /// ingest wire time — the bits streamed into the NIC while crossing
    /// the wire — so an uncontended message is delivered at its arrival
    /// instant (transmit is paid once) and only ingress *contention* adds
    /// delay: delivery = tx queue + transmit + latency + rx queue. The
    /// backdated window saturates at clock 0: a message whose ingest time
    /// exceeds the sim time so far cannot have been streaming before the
    /// run started, so its delivery waits for a full ingest window — a
    /// boundary artifact of the approximation, bounded by one `rx_ns` at
    /// the start of a run.
    ///
    /// With `chunk_bytes` configured the ingest crosses the lane one chunk
    /// at a time, chunk spans cut as cumulative differences (they sum to
    /// `rx_ns` exactly, so an uncontended chunked ingest still lands at
    /// the arrival instant); messages arriving in between slip into the
    /// lane instead of waiting for an elephant's last byte — the same
    /// head-of-line fix egress chunking applies on the send side.
    fn on_ingest(
        &mut self,
        to: ReplicaId,
        from: ReplicaId,
        msg: SharedMessage,
        bytes: usize,
        rx_ns: u64,
        offset_bytes: usize,
    ) {
        let class = self.net.replica_link_class(from, to);
        let ready = if offset_bytes == 0 {
            self.now.saturating_sub(rx_ns)
        } else {
            // Continuation chunks fire when their predecessor clears the
            // lane; the backdating already happened on the first chunk.
            self.now
        };
        let (done, end) = self.reserve_transfer_step(
            Nic::Replica(to),
            class,
            Direction::Ingress,
            ChunkLane::ReplicaIngress { from, to },
            bytes,
            offset_bytes,
            rx_ns,
            ready,
        );
        if end < bytes {
            // `done` can precede `self.now` (the first chunk's span starts
            // at the backdated ready), so this push briefly runs the clock
            // backwards — by construction the window [done, now] holds no
            // other event (the heap minimum was `now`), only this chunk
            // chain, and delivery is clamped to the arrival instant below.
            // Handlers keyed to a monotone clock must not run off Ingest
            // continuation events.
            self.push_event(
                done,
                EventKind::Ingest {
                    to,
                    from,
                    msg,
                    bytes,
                    rx_ns,
                    offset_bytes: end,
                },
            );
        } else {
            self.push_event(done.max(self.now), EventKind::Deliver { to, from, msg });
        }
    }

    /// A chunk of a client reply departing over a finite-bandwidth client
    /// lane; the last chunk accounts the reply at its arrival time.
    fn on_transmit_reply(
        &mut self,
        from: ReplicaId,
        reply: ClientReply,
        bytes: usize,
        transmit_ns: u64,
        offset_bytes: usize,
    ) {
        let (done, end) = self.reserve_transfer_step(
            Nic::Replica(from),
            LinkClass::Client,
            Direction::Egress,
            ChunkLane::Client,
            bytes,
            offset_bytes,
            transmit_ns,
            self.now,
        );
        if end < bytes {
            self.push_event(
                done,
                EventKind::TransmitReply {
                    from,
                    reply,
                    bytes,
                    transmit_ns,
                    offset_bytes: end,
                },
            );
        } else {
            // Replies pay no ingress: the aggregate client pool stands for
            // hundreds of independent client NICs, not one ingest pipe.
            let arrive = done.saturating_add(self.net.client_latency_us(from) * 1_000);
            self.record_reply(from, &reply, arrive);
        }
    }

    /// A chunk of a request-upload batch crossing the aggregate client
    /// uplink; the last chunk lands the batch at the primary (through its
    /// client-facing ingress lane when one is configured).
    fn on_client_upload(&mut self, txns: Vec<Transaction>, bytes: usize, offset_bytes: usize) {
        let transmit_ns = self.net.client_transmit_ns(bytes);
        let (done, end) = self.reserve_transfer_step(
            Nic::ClientPool,
            LinkClass::Client,
            Direction::Egress,
            ChunkLane::Client,
            bytes,
            offset_bytes,
            transmit_ns,
            self.now,
        );
        if end < bytes {
            self.push_event(
                done,
                EventKind::ClientUpload {
                    txns,
                    bytes,
                    offset_bytes: end,
                },
            );
            return;
        }
        let rx_ns = self.net.client_ingress_ns(bytes);
        if rx_ns > 0 {
            self.push_event(
                done,
                EventKind::IngestUpload {
                    txns,
                    bytes,
                    rx_ns,
                    offset_bytes: 0,
                    nic: None,
                },
            );
        } else {
            self.push_event(done, EventKind::ClientArrival { txns });
        }
    }

    /// A request-upload batch's last byte reached the primary (or a
    /// continuation chunk finished): serialise it on the primary's
    /// client-facing ingress lane, chunked exactly like `on_ingest`. The
    /// primary is resolved when the first chunk starts and pinned for the
    /// rest of the batch; `on_client_arrival` re-resolves it at dispatch,
    /// so if a view change completed within the ingest span the charged
    /// NIC and the processing replica could diverge by that one span — an
    /// accepted approximation (the arrival handler must re-resolve anyway
    /// to handle a failed primary).
    fn on_ingest_upload(
        &mut self,
        txns: Vec<Transaction>,
        bytes: usize,
        rx_ns: u64,
        offset_bytes: usize,
        nic: Option<ReplicaId>,
    ) {
        let primary = nic.unwrap_or_else(|| self.current_primary());
        let ready = if offset_bytes == 0 {
            self.now.saturating_sub(rx_ns)
        } else {
            self.now
        };
        let (done, end) = self.reserve_transfer_step(
            Nic::Replica(primary),
            LinkClass::Client,
            Direction::Ingress,
            ChunkLane::ClientIngress,
            bytes,
            offset_bytes,
            rx_ns,
            ready,
        );
        if end < bytes {
            // As in `on_ingest`: `done` may precede `self.now` on the
            // backdated first chunk — an event-free window only this chunk
            // chain occupies, with arrival clamped below.
            self.push_event(
                done,
                EventKind::IngestUpload {
                    txns,
                    bytes,
                    rx_ns,
                    offset_bytes: end,
                    nic: Some(primary),
                },
            );
        } else {
            self.push_event(done.max(self.now), EventKind::ClientArrival { txns });
        }
    }

    fn on_deliver(&mut self, to: ReplicaId, from: ReplicaId, msg: SharedMessage) {
        if self.is_down(to) {
            return;
        }
        self.messages_delivered += 1;
        let base_cost = self.spec.cost.receive_cost_ns(&msg);
        self.run_engine(to, base_cost, move |dispatcher, engine, env| {
            dispatcher.deliver(engine, from, msg, env)
        });
    }

    fn on_timer(&mut self, replica: ReplicaId, timer: TimerKind, token: TimerToken) {
        if self.is_down(replica) {
            return;
        }
        let base_cost = self.spec.cost.base_receive_ns;
        // Token validation lives in the dispatcher: a stale token (re-armed
        // or cancelled since) never reaches the engine and charges nothing.
        self.run_engine(replica, base_cost, move |dispatcher, engine, env| {
            dispatcher.timer_expired(engine, timer, token, env);
        });
    }

    fn on_fallback(&mut self, client: ClientId, request: RequestId) {
        let key = (client.0, request.0);
        let Some(tracker) = self.requests.get_mut(&key) else {
            // Unknown or already completed (completion removes the
            // tracker): nothing to do.
            return;
        };
        // The fallback round trip gathers a commit certificate for the
        // strongest (seq, digest) candidate — divergent speculative replies
        // still do not count together.
        if let Some((seq, count)) = tracker.best_candidate() {
            if count >= self.fallback_quorum {
                tracker.seq = seq;
                self.complete_request(key, self.now);
                return;
            }
        }
        // No candidate holds a fallback quorum yet (replies diverged, e.g.
        // across a view change): the client keeps waiting and retries the
        // certificate round after another timeout, so the request cannot
        // wedge out of the closed loop while late replies may still
        // reconcile it.
        self.schedule_fallback(client, request, self.now);
    }

    /// Arms (or re-arms) the fast-path fallback for a request: a client
    /// timeout plus one round trip to whichever replica currently leads —
    /// after a view change the primary may sit in a different region, and a
    /// stale RTT base would misprice every fallback.
    fn schedule_fallback(&mut self, client: ClientId, request: RequestId, at: Ns) {
        let timeout_ns = self.spec.system_config().client_timeout_us * 1_000;
        let rtt_ns = 2 * self.net.client_latency_us(self.current_primary()) * 1_000;
        self.push_event(
            at + timeout_ns + rtt_ns,
            EventKind::FallbackComplete { client, request },
        );
    }

    // ------------------------------------------------------------------
    // Client accounting.
    // ------------------------------------------------------------------

    fn record_reply(&mut self, replica: ReplicaId, reply: &ClientReply, at: Ns) {
        let key = (reply.client.0, reply.request.0);
        let Some(tracker) = self.requests.get_mut(&key) else {
            // Unknown or already completed (completion removes the
            // tracker): late replies are normal in BFT systems.
            return;
        };
        // Mirror `ClientLibrary`: a quorum is a set of distinct replicas
        // voting for the same (seq, result digest) candidate. Divergent
        // speculative replies — same request, different seq or result —
        // accumulate in separate candidates and can never complete one
        // quorum between them. Probe existing candidates without cloning
        // the reply's result bytes; a key is only built when a new
        // candidate first appears.
        let voters = match tracker.votes.iter().position(|((seq, result), _)| {
            *seq == reply.seq && result_matches_key(&reply.result, result)
        }) {
            Some(i) => &mut tracker.votes[i].1,
            None => {
                tracker
                    .votes
                    .push(((reply.seq, result_key(&reply.result)), BTreeSet::new()));
                &mut tracker.votes.last_mut().expect("just pushed").1
            }
        };
        voters.insert(replica);
        let count = voters.len();
        tracker.repliers.insert(replica);
        if count >= self.reply_quorum {
            tracker.seq = reply.seq;
            self.complete_request(key, at);
        } else if !tracker.fallback_scheduled
            && tracker.repliers.len() >= self.fallback_quorum
            && (self.all_replicas_rule || tracker.votes.len() > 1)
        {
            // Two ways the fast path can have failed despite a fallback
            // quorum of distinct repliers: Zyzzyva / MinZZ need every
            // replica and will never hear from a crashed one, or replies
            // diverged across candidates (e.g. over a view change) so no
            // single (seq, digest) can complete. Either way the client
            // falls back after a timeout plus an extra round trip
            // (gathering/distributing a commit certificate); `on_fallback`
            // completes the strongest candidate once it holds the fallback
            // quorum and re-arms otherwise, so a divergent request can
            // still converge instead of silently dropping its client out
            // of the closed loop.
            tracker.fallback_scheduled = true;
            self.schedule_fallback(reply.client, reply.request, at);
        }
    }

    fn complete_request(&mut self, key: (u64, u64), at: Ns) {
        let warmup_ns = self.spec.warmup_us * 1_000;
        let total_ns = self.spec.total_time_us() * 1_000;
        let Some(tracker) = self.requests.get_mut(&key) else {
            return;
        };
        let submit = tracker.submit;
        if self.spec.record_commit_log {
            self.commit_log.push(CommittedTxn {
                seq: tracker.seq,
                client: ClientId(key.0),
                request: RequestId(key.1),
            });
        }
        if submit >= warmup_ns && at <= total_ns {
            self.latencies.push(at - submit);
            self.completed_txns += 1;
        }
        if self.chaos_active && at >= self.last_restore_ns {
            self.completed_after_restore += 1;
        }
        // The closed-loop client immediately submits its next transaction
        // after one client round trip to the replica it actually contacts —
        // the current primary, which may have moved since the run started.
        // The deadline rides with the transaction: several clients
        // completing in one drain each keep their own resubmit time.
        let client = key.0 as usize;
        if client < self.spec.clients {
            let txn = self.fresh_txn(client);
            let primary = self.current_primary();
            let resubmit_at = at + 2 * self.net.client_latency_us(primary) * 1_000;
            self.pending_resubmits.push((resubmit_at, txn));
        }
        self.requests.remove(&key);
    }

    // ------------------------------------------------------------------
    // Reporting.
    // ------------------------------------------------------------------

    fn report(mut self, total_ns: Ns, warmup_ns: Ns) -> SimReport {
        let measured_s = (total_ns - warmup_ns) as f64 / 1e9;
        let (avg, p50, p99) = latency_stats_ms(&mut self.latencies);
        let tc_accesses: Vec<u64> = self
            .hosts
            .iter()
            .map(|h| {
                h.enclave
                    .as_ref()
                    .map(|e| e.stats().snapshot().total_accesses())
                    .unwrap_or(0)
            })
            .collect();
        let config = self.spec.system_config();
        let mut commit_log = self.commit_log;
        commit_log.sort_unstable();
        SimReport {
            protocol: self.spec.protocol,
            f: self.spec.f,
            n: config.n,
            clients: self.spec.clients,
            duration_s: measured_s,
            total_duration_s: total_ns as f64 / 1e9,
            completed_txns: self.completed_txns,
            throughput_tps: self.completed_txns as f64 / measured_s,
            avg_latency_ms: avg,
            p50_latency_ms: p50,
            p99_latency_ms: p99,
            messages_delivered: self.messages_delivered,
            events_processed: self.events_processed,
            tc_accesses_total: tc_accesses.iter().sum(),
            tc_accesses_primary: tc_accesses.first().copied().unwrap_or(0),
            max_replica_executed: self
                .hosts
                .iter()
                .map(|h| h.engine.executed_txns())
                .max()
                .unwrap_or(0),
            net_busy_ns: self.links.total_busy_ns(),
            net_queue_delay_ns: self.links.total_queue_delay_ns(),
            link_usage: self.links.usage(),
            replica_frontiers: self
                .hosts
                .iter()
                .map(|h| (h.engine.last_executed().0, h.engine.state_digest()))
                .collect(),
            chaos_disruptions: self.chaos_disruptions,
            last_restore_ns: self.last_restore_ns,
            completed_after_restore: self.completed_after_restore,
            commit_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{BandwidthConfig, KvResult, ProtocolId, View};

    fn run_quick(protocol: ProtocolId) -> SimReport {
        let spec = ScenarioSpec::quick_test(protocol);
        Simulation::new(spec).run()
    }

    #[test]
    fn arrivals_at_a_failed_primary_are_retransmitted_not_dropped() {
        let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        spec.clients = 3;
        spec.faults = crate::faults::FaultPlan::single_failure(ReplicaId(0));
        let timeout_ns = spec.system_config().client_timeout_us * 1_000;
        let mut sim = Simulation::new(spec);
        sim.now = 5_000;
        let txns: Vec<Transaction> = (0..3).map(|c| sim.fresh_txn(c)).collect();
        let retry = txns.clone();
        sim.on_client_arrival(txns);
        // The transactions stay tracked — the closed loop must not wedge…
        assert_eq!(sim.requests.len(), 3);
        // …and the batch is rescheduled after the client timeout instead of
        // vanishing (unlimited client bandwidth: a direct arrival event).
        let Reverse(event) = sim.events.pop().expect("a retransmission is scheduled");
        assert_eq!(event.at, 5_000 + timeout_ns);
        assert!(matches!(event.kind, EventKind::ClientArrival { ref txns } if txns.len() == 3));
        assert!(sim.events.pop().is_none());
        // A retransmission arriving later keeps the original submit time,
        // so the eventual latency covers the whole client wait.
        sim.now = 5_000 + timeout_ns;
        sim.on_client_arrival(retry);
        for tracker in sim.requests.values() {
            assert_eq!(tracker.submit, 5_000);
        }
    }

    #[test]
    fn resubmit_deadlines_are_per_transaction() {
        let spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        let rtt_ns = 2 * 250 * 1_000; // LAN client round trip
        let mut sim = Simulation::new(spec);
        sim.requests.insert((0, 1), RequestTracker::new(0));
        sim.requests.insert((1, 1), RequestTracker::new(0));
        sim.now = 10_000;
        // Two clients complete in the same drain with different reply
        // arrival times: each must resubmit after its *own* round trip, not
        // whichever deadline was written last.
        sim.complete_request((0, 1), 1_000_000);
        sim.complete_request((1, 1), 2_000_000);
        assert_eq!(sim.pending_resubmits.len(), 2);
        sim.flush_resubmits();
        let Reverse(first) = sim.events.pop().unwrap();
        let Reverse(second) = sim.events.pop().unwrap();
        assert_eq!(first.at, 1_000_000 + rtt_ns);
        assert_eq!(second.at, 2_000_000 + rtt_ns);
        assert!(matches!(first.kind, EventKind::ClientArrival { ref txns } if txns.len() == 1));
        assert!(matches!(second.kind, EventKind::ClientArrival { ref txns } if txns.len() == 1));
    }

    #[test]
    fn divergent_speculative_replies_cannot_complete_a_quorum() {
        let spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        let mut sim = Simulation::new(spec);
        assert_eq!(sim.reply_quorum, 2, "Flexi-BFT f=1 completes at f + 1");
        sim.requests.insert((0, 1), RequestTracker::new(0));
        let reply = |replica: u32, seq: u64, value: u8| ClientReply {
            client: ClientId(0),
            request: RequestId(1),
            seq: SeqNum(seq),
            view: View(0),
            replica: ReplicaId(replica),
            result: KvResult::Value(Some(vec![value].into())),
            speculative: true,
        };
        // Three distinct replicas reply, but no two agree on (seq, result):
        // under distinct-replier counting this would already have completed
        // twice over.
        sim.record_reply(ReplicaId(0), &reply(0, 5, 1), 100);
        sim.record_reply(ReplicaId(1), &reply(1, 6, 1), 100); // divergent seq
        sim.record_reply(ReplicaId(2), &reply(2, 5, 2), 100); // divergent result
        assert!(
            sim.requests.contains_key(&(0, 1)),
            "divergent replies must not form a quorum"
        );
        // Observed divergence arms the fallback watchdog even for a
        // quorum-rule protocol, so the request can converge later instead
        // of wedging its client out of the closed loop.
        assert!(sim.requests[&(0, 1)].fallback_scheduled);
        // A second vote for the (5, value 1) candidate completes it — and
        // logs the candidate's sequence number, not a bystander's.
        sim.record_reply(ReplicaId(3), &reply(3, 5, 1), 100);
        assert!(!sim.requests.contains_key(&(0, 1)));
        let logged = sim.commit_log.last().expect("completion is logged");
        assert_eq!(logged.seq, SeqNum(5));
        // Duplicate votes from one replica still count once.
        sim.requests.insert((0, 2), RequestTracker::new(0));
        let dup = |seq| ClientReply {
            request: RequestId(2),
            ..reply(0, seq, 1)
        };
        sim.record_reply(ReplicaId(0), &dup(7), 100);
        sim.record_reply(ReplicaId(0), &dup(7), 100);
        assert!(sim.requests.contains_key(&(0, 2)));
    }

    #[test]
    fn divergent_fallback_rearms_until_a_candidate_quorum_forms() {
        // MinZZ (all-replicas fast path, f = 1, n = 3): the fallback timer
        // arms once a fallback quorum of *distinct* replicas has replied —
        // hearing from them without completing means the fast path failed,
        // agreeing or not — but it may only complete on a candidate that
        // itself holds the quorum, retrying otherwise instead of wedging
        // the closed loop.
        let spec = ScenarioSpec::quick_test(ProtocolId::MinZz);
        let mut sim = Simulation::new(spec);
        assert!(sim.all_replicas_rule);
        assert_eq!(sim.reply_quorum, 3);
        assert_eq!(sim.fallback_quorum, 2);
        sim.requests.insert((0, 1), RequestTracker::new(0));
        let reply = |replica: u32, seq: u64| ClientReply {
            client: ClientId(0),
            request: RequestId(1),
            seq: SeqNum(seq),
            view: View(0),
            replica: ReplicaId(replica),
            result: KvResult::Written,
            speculative: true,
        };
        sim.record_reply(ReplicaId(0), &reply(0, 5), 100);
        sim.record_reply(ReplicaId(1), &reply(1, 6), 100); // divergent seq
        assert!(sim.requests[&(0, 1)].fallback_scheduled);
        let Reverse(armed) = sim.events.pop().expect("fallback timer armed");
        assert!(matches!(armed.kind, EventKind::FallbackComplete { .. }));
        // The timer fires with no candidate at quorum: the request stays
        // alive and the timer re-arms.
        sim.now = armed.at;
        sim.on_fallback(ClientId(0), RequestId(1));
        assert!(sim.requests.contains_key(&(0, 1)));
        let Reverse(rearmed) = sim.events.pop().expect("fallback timer re-armed");
        assert!(matches!(rearmed.kind, EventKind::FallbackComplete { .. }));
        assert!(rearmed.at > armed.at);
        // A third reply joins the (seq 5) candidate: the next fallback
        // completes on it and logs its sequence number.
        sim.record_reply(ReplicaId(2), &reply(2, 5), 200);
        sim.now = rearmed.at;
        sim.on_fallback(ClientId(0), RequestId(1));
        assert!(!sim.requests.contains_key(&(0, 1)));
        assert_eq!(sim.commit_log.last().unwrap().seq, SeqNum(5));
    }

    #[test]
    fn minority_partition_then_heal_holds_safety_and_liveness() {
        use crate::chaos::ChaosPlan;
        let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        // Isolate replica 3 from 50 ms to 120 ms; the majority group keeps
        // its quorums and commit progress must resume (continue) after the
        // heal.
        spec.chaos = ChaosPlan::partition_then_heal(
            7,
            vec![
                vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
                vec![ReplicaId(3)],
            ],
            50_000_000,
            120_000_000,
        );
        let report = Simulation::new(spec).run();
        assert_eq!(report.chaos_disruptions, 1);
        assert_eq!(report.last_restore_ns, 120_000_000);
        report
            .check_chaos_invariants()
            .expect("partition-heal plan must hold safety and restore liveness");
    }

    #[test]
    fn crash_then_recover_rejoins_via_checkpoint_transfer() {
        use crate::chaos::ChaosPlan;
        for protocol in [ProtocolId::FlexiBft, ProtocolId::FlexiZz, ProtocolId::Pbft] {
            let mut spec = ScenarioSpec::quick_test(protocol);
            // Short checkpoint interval so the downtime spans several stable
            // checkpoints and recovery exercises real state transfer.
            spec.checkpoint_interval = Some(10);
            spec.chaos = ChaosPlan::crash_then_recover(11, ReplicaId(2), 40_000_000, 100_000_000);
            let report = Simulation::new(spec).run();
            assert_eq!(report.chaos_disruptions, 1, "{protocol}");
            report
                .check_chaos_invariants()
                .unwrap_or_else(|e| panic!("{protocol}: {e}"));
            // The recovered replica rejoined via checkpoint state transfer:
            // its frontier moved past at least one full checkpoint interval.
            assert!(
                report.replica_frontiers[2].0 >= 10,
                "{protocol}: recovered replica stuck at {:?}",
                report.replica_frontiers[2]
            );
        }
    }

    #[test]
    fn identical_chaos_seeds_reproduce_identical_runs() {
        use crate::chaos::{ChaosPlan, LinkChaos};
        let spec_with = |seed: u64| {
            let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
            spec.chaos = ChaosPlan::crash_then_recover(seed, ReplicaId(3), 60_000_000, 110_000_000)
                .with_link(LinkChaos {
                    drop_per_10k: 20,
                    duplicate_per_10k: 20,
                    reorder_per_10k: 50,
                    reorder_max_delay_us: 500,
                    ..LinkChaos::default()
                });
            spec.checkpoint_interval = Some(10);
            spec
        };
        let a = Simulation::new(spec_with(5)).run();
        let b = Simulation::new(spec_with(5)).run();
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.commit_log, b.commit_log);
        assert_eq!(a.replica_frontiers, b.replica_frontiers);
        // A different chaos seed draws different link fates.
        let c = Simulation::new(spec_with(6)).run();
        assert!(
            c.events_processed != a.events_processed || c.commit_log != a.commit_log,
            "different chaos seeds should diverge"
        );
    }

    #[test]
    fn flexi_zz_quick_scenario_makes_progress() {
        let report = run_quick(ProtocolId::FlexiZz);
        assert!(report.completed_txns > 0, "{report:?}");
        assert!(report.throughput_tps > 0.0);
        assert!(report.avg_latency_ms > 0.0);
        assert!(report.max_replica_executed > 0);
    }

    #[test]
    fn every_protocol_completes_transactions_in_simulation() {
        for protocol in ProtocolId::ALL {
            let report = run_quick(protocol);
            assert!(
                report.completed_txns > 0,
                "{protocol} completed no transactions: {report:?}"
            );
        }
    }

    #[test]
    fn simulation_is_deterministic_for_a_fixed_seed() {
        let a = run_quick(ProtocolId::FlexiBft);
        let b = run_quick(ProtocolId::FlexiBft);
        assert_eq!(a.completed_txns, b.completed_txns);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.commit_log, b.commit_log);
    }

    #[test]
    fn commit_log_records_every_completion_in_sequence_order() {
        let report = run_quick(ProtocolId::FlexiBft);
        assert!(!report.commit_log.is_empty());
        for pair in report.commit_log.windows(2) {
            assert!(pair[0].seq <= pair[1].seq);
        }
    }

    #[test]
    fn flexitrust_touches_the_trusted_component_once_per_batch_at_the_primary() {
        let report = run_quick(ProtocolId::FlexiZz);
        // All TC accesses happen at the primary.
        assert_eq!(report.tc_accesses_total, report.tc_accesses_primary);
        // Roughly one access per executed batch (allowing for the final
        // partially processed batch).
        let batches = report.max_replica_executed / 10; // batch_size = 10 in quick_test
        assert!(
            report.tc_accesses_primary >= batches.saturating_sub(2)
                && report.tc_accesses_primary <= batches + 25,
            "accesses {} vs batches {batches}",
            report.tc_accesses_primary
        );
    }

    #[test]
    fn minbft_touches_trusted_components_at_every_replica() {
        let report = run_quick(ProtocolId::MinBft);
        assert!(report.tc_accesses_total > report.tc_accesses_primary);
    }

    #[test]
    fn wan_deployment_increases_latency() {
        let slow_enough = |regions: usize| {
            let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
            spec.regions = regions;
            spec.duration_us = 1_200_000;
            spec.warmup_us = 300_000;
            Simulation::new(spec).run()
        };
        let lan = slow_enough(1);
        let wan = slow_enough(6);
        assert!(wan.completed_txns > 0);
        assert!(
            wan.avg_latency_ms > lan.avg_latency_ms,
            "wan {} <= lan {}",
            wan.avg_latency_ms,
            lan.avg_latency_ms
        );
    }

    #[test]
    fn bandwidth_constrained_wan_raises_latency_with_message_size_over_bandwidth() {
        // Figure 6(vi)-style: same WAN topology, only the per-link bandwidth
        // changes, so every latency difference comes from the wire-size /
        // bandwidth term of the delivery-time model.
        let run_with = |bandwidth: BandwidthConfig| {
            let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
            spec.regions = 3;
            spec.bandwidth = bandwidth;
            spec.duration_us = 1_200_000;
            spec.warmup_us = 300_000;
            spec.clients = 400;
            Simulation::new(spec).run()
        };
        let unlimited = run_with(BandwidthConfig::unlimited());
        let moderate = run_with(BandwidthConfig::wan_constrained(50));
        let tight = run_with(BandwidthConfig::wan_constrained(5));
        assert!(unlimited.completed_txns > 0);
        assert!(tight.completed_txns > 0);
        assert!(
            moderate.avg_latency_ms > unlimited.avg_latency_ms,
            "constrained WAN ({} ms) should be slower than unlimited ({} ms)",
            moderate.avg_latency_ms,
            unlimited.avg_latency_ms
        );
        assert!(
            tight.avg_latency_ms > moderate.avg_latency_ms,
            "5 Mbps ({} ms) should be slower than 50 Mbps ({} ms)",
            tight.avg_latency_ms,
            moderate.avg_latency_ms
        );
    }

    #[test]
    fn client_link_bandwidth_slows_uploads_and_replies() {
        let run_with = |bandwidth: BandwidthConfig| {
            let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
            spec.bandwidth = bandwidth;
            Simulation::new(spec).run()
        };
        let unlimited = run_with(BandwidthConfig::unlimited());
        let constrained = run_with(BandwidthConfig::uniform(50));
        assert!(constrained.completed_txns > 0);
        assert!(
            constrained.avg_latency_ms > unlimited.avg_latency_ms,
            "client-link constraint ({} ms) should add latency over unlimited ({} ms)",
            constrained.avg_latency_ms,
            unlimited.avg_latency_ms
        );
    }

    #[test]
    fn single_non_primary_failure_hurts_minzz_more_than_flexi_zz() {
        let run = |protocol, fail: bool| {
            let mut spec = ScenarioSpec::quick_test(protocol);
            spec.duration_us = 400_000;
            spec.warmup_us = 100_000;
            if fail {
                let victim = ReplicaId((spec.replicas() - 1) as u32);
                spec.faults = crate::faults::FaultPlan::single_failure(victim);
            }
            Simulation::new(spec).run()
        };
        let healthy_minzz = run(ProtocolId::MinZz, false);
        let failed_minzz = run(ProtocolId::MinZz, true);
        let healthy_flexi = run(ProtocolId::FlexiZz, false);
        let failed_flexi = run(ProtocolId::FlexiZz, true);
        // MinZZ loses its all-replica fast path: every request pays the
        // slow-path timeout, so latency rises sharply and throughput drops.
        assert!(
            failed_minzz.avg_latency_ms > healthy_minzz.avg_latency_ms * 2.0,
            "minzz failed {} vs healthy {}",
            failed_minzz.avg_latency_ms,
            healthy_minzz.avg_latency_ms
        );
        // Flexi-ZZ keeps its fast path (2f + 1 of 3f + 1 replies suffice).
        assert!(
            failed_flexi.avg_latency_ms < healthy_flexi.avg_latency_ms * 2.0,
            "flexi failed {} vs healthy {}",
            failed_flexi.avg_latency_ms,
            healthy_flexi.avg_latency_ms
        );
        assert!(failed_flexi.throughput_tps > 0.5 * healthy_flexi.throughput_tps);
    }

    #[test]
    fn slower_trusted_hardware_reduces_minbft_throughput() {
        let fast = run_quick(ProtocolId::MinBft);
        let mut slow_spec = ScenarioSpec::quick_test(ProtocolId::MinBft);
        slow_spec.hardware = flexitrust_trusted::TrustedHardware::Custom {
            access_us: 10_000,
            rollback_protected: true,
        };
        let slow = Simulation::new(slow_spec).run();
        assert!(
            slow.throughput_tps < fast.throughput_tps,
            "slow {} >= fast {}",
            slow.throughput_tps,
            fast.throughput_tps
        );
    }
}
