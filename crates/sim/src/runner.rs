//! The discrete-event simulation loop.
//!
//! The simulator drives the same [`ConsensusEngine`] implementations used by
//! the threaded runtime, but instead of real threads and sockets it keeps a
//! global event queue ordered by simulated time (nanoseconds). Each replica
//! is modelled as:
//!
//! * a set of **worker threads** (one per `workers_per_replica`, except that
//!   protocols without out-of-order consensus effectively use a single
//!   worker — the paper's observation that sequential protocols leave their
//!   threads under-saturated);
//! * a **trusted component** whose accesses (observed through the enclave's
//!   statistics) are serialised and charged the hardware access latency plus
//!   in-enclave signing cost; and
//! * the **engine** itself, hosted behind the shared
//!   [`flexitrust_host::Dispatcher`]: the engine's emitted actions are
//!   translated once, in the host layer, into simulator events (message
//!   deliveries after sender-NIC queueing plus wire-size/bandwidth
//!   transmission time plus latency — see [`crate::link::LinkQueues`] —
//!   and timer expirations) or into client accounting (replies). The
//!   simulator itself only implements the [`EngineHost`] primitives.
//!
//! Clients are closed-loop and modelled in aggregate: each of the
//! `spec.clients` logical clients keeps exactly one transaction outstanding;
//! a transaction completes when the protocol's reply quorum of distinct
//! replicas has replied (with the Zyzzyva/MinZZ fallback path modelled as a
//! timeout plus an extra round trip when the full-replica quorum cannot be
//! reached), after which the client immediately submits a fresh transaction.

use crate::cost::CostModel;
use crate::faults::{DeliveryFate, FaultPlan};
use crate::link::{LinkClass, LinkQueues, Nic};
use crate::metrics::{latency_stats_ms, CommittedTxn, SimReport};
use crate::net::NetworkModel;
use crate::registry::{build_replicas, ReplicaSetup};
use crate::spec::ScenarioSpec;
use flexitrust_host::{Dispatcher, EngineHost, TimerToken};
use flexitrust_protocol::{ClientReply, ConsensusEngine, Message, TimerKind};
use flexitrust_trusted::SharedEnclave;
use flexitrust_types::{ClientId, QuorumRule, ReplicaId, RequestId, SeqNum, Transaction};
use flexitrust_workload::WorkloadGenerator;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

type Ns = u64;

#[derive(Debug)]
enum EventKind {
    Deliver {
        to: ReplicaId,
        from: ReplicaId,
        msg: Message,
    },
    /// A message departing over a finite-bandwidth link: reserves the
    /// sender's NIC when the clock reaches the departure time, so
    /// concurrent transfers reserve in global time order (a departure-time
    /// FIFO) rather than in event-dispatch order — an engine invocation
    /// processed early but departing late must not hold the wire against a
    /// transfer that physically leaves first. Zero-transmit traffic skips
    /// this hop and schedules its `Deliver` directly (the bit-exact
    /// pure-latency path).
    Transmit {
        to: ReplicaId,
        from: ReplicaId,
        msg: Message,
        transmit_ns: u64,
        extra_ns: u64,
    },
    /// A client reply departing over a finite-bandwidth client lane;
    /// same departure-time FIFO as `Transmit`.
    TransmitReply {
        from: ReplicaId,
        reply: ClientReply,
        transmit_ns: u64,
    },
    /// A batch of client request uploads ready to cross the aggregate
    /// client uplink; same departure-time FIFO as `Transmit`.
    ClientUpload {
        txns: Vec<Transaction>,
    },
    Timer {
        replica: ReplicaId,
        timer: TimerKind,
        token: TimerToken,
    },
    ClientArrival {
        txns: Vec<Transaction>,
    },
    FallbackComplete {
        client: ClientId,
        request: RequestId,
    },
}

struct Event {
    at: Ns,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Host {
    engine: Box<dyn ConsensusEngine>,
    enclave: Option<SharedEnclave>,
    workers: Vec<Ns>,
    tc_free: Ns,
    tc_seen: u64,
}

struct RequestTracker {
    submit: Ns,
    replies: BTreeSet<ReplicaId>,
    seq: SeqNum,
    completed: bool,
    fallback_scheduled: bool,
}

/// The simulator's [`EngineHost`] implementation: one engine invocation's
/// view of the world. Effects are buffered (events to schedule, replies to
/// account) and applied by the simulation loop once the dispatch batch
/// completes; `begin_batch` performs the CPU / trusted-component accounting
/// that fixes the batch's departure time.
struct SimEnv<'a> {
    start: Ns,
    base_cost_ns: Ns,
    tc_access_ns: Ns,
    enclave: Option<&'a SharedEnclave>,
    tc_free: &'a mut Ns,
    tc_seen: &'a mut u64,
    worker: &'a mut Ns,
    cost: &'a CostModel,
    net: &'a NetworkModel,
    faults: &'a FaultPlan,
    /// Departure time of the current dispatch batch (set by `begin_batch`).
    at: Ns,
    events: Vec<(Ns, EventKind)>,
    replies: Vec<(ReplicaId, ClientReply, Ns)>,
}

impl EngineHost for SimEnv<'_> {
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: Message) {
        let extra_ns = match self.faults.fate(from, to, &msg) {
            DeliveryFate::Drop => return,
            DeliveryFate::Deliver => 0,
            DeliveryFate::Delay(extra_us) => extra_us * 1_000,
        };
        let transmit_ns = self
            .net
            .replica_transmit_ns(from, to, msg.wire_size_bytes());
        if transmit_ns == 0 {
            // Self-delivery or an unlimited link class: pure latency, no
            // NIC involved — the seed's schedule, bit-exactly.
            let latency_ns = self.net.replica_latency_us(from, to) * 1_000;
            let arrival = self.at + latency_ns + extra_ns;
            self.events
                .push((arrival, EventKind::Deliver { to, from, msg }));
        } else {
            // The sender's NIC is a serial resource: the transfer reserves
            // it when the clock reaches the departure time, queueing behind
            // whatever is on the wire then — a broadcast's k-th copy waits
            // for the first k − 1.
            self.events.push((
                self.at,
                EventKind::Transmit {
                    to,
                    from,
                    msg,
                    transmit_ns,
                    extra_ns,
                },
            ));
        }
    }

    fn reply(&mut self, from: ReplicaId, reply: ClientReply) {
        let transmit_ns = self.net.client_transmit_ns(reply.wire_size_bytes());
        if transmit_ns == 0 {
            let arrive = self.at + self.net.client_latency_us(from) * 1_000;
            self.replies.push((from, reply, arrive));
        } else {
            self.events.push((
                self.at,
                EventKind::TransmitReply {
                    from,
                    reply,
                    transmit_ns,
                },
            ));
        }
    }

    fn schedule_timer(
        &mut self,
        replica: ReplicaId,
        timer: TimerKind,
        delay_us: u64,
        token: TimerToken,
    ) {
        self.events.push((
            self.at + delay_us * 1_000,
            EventKind::Timer {
                replica,
                timer,
                token,
            },
        ));
    }

    fn send_cost_ns(&self, msg: &Message, destinations: usize) -> u64 {
        self.cost.send_cost_ns(msg, destinations)
    }

    fn execution_cost_ns(&self, txns: usize) -> u64 {
        self.cost.execution_cost_ns(txns)
    }

    fn begin_batch(&mut self, _from: ReplicaId, actions_cost_ns: u64) {
        // Trusted-component accesses observed during this invocation are
        // serialised on the component and charged its access latency.
        let mut tc_end = self.start + self.base_cost_ns;
        if let Some(enclave) = self.enclave {
            let total = enclave.stats().snapshot().total_accesses();
            let delta = total.saturating_sub(*self.tc_seen);
            *self.tc_seen = total;
            if delta > 0 {
                let tc_start = (self.start + self.base_cost_ns).max(*self.tc_free);
                *self.tc_free = tc_start + delta * self.tc_access_ns;
                tc_end = *self.tc_free;
            }
        }
        let departure = tc_end.max(self.start + self.base_cost_ns) + actions_cost_ns;
        *self.worker = departure;
        self.at = departure;
    }
}

/// A single simulation run.
pub struct Simulation {
    spec: ScenarioSpec,
    net: NetworkModel,
    /// Per-link FIFO occupancy state. Lives with the runner — the network
    /// model is cloned/shared and must stay stateless.
    links: LinkQueues,
    hosts: Vec<Host>,
    dispatcher: Dispatcher,
    events: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    now: Ns,
    requests: HashMap<(u64, u64), RequestTracker>,
    next_request_id: Vec<u64>,
    op_generator: WorkloadGenerator,
    latencies: Vec<Ns>,
    completed_txns: u64,
    commit_log: Vec<CommittedTxn>,
    messages_delivered: u64,
    reply_quorum: usize,
    fallback_quorum: usize,
    all_replicas_rule: bool,
    pending_resubmits: Vec<Transaction>,
    pending_resubmit_at: Ns,
}

impl Simulation {
    /// Builds a simulation from a scenario, constructing the engines via the
    /// protocol registry.
    pub fn new(spec: ScenarioSpec) -> Self {
        let replicas = build_replicas(&spec);
        Self::with_replicas(spec, replicas)
    }

    /// Builds a simulation over externally constructed replicas (used by the
    /// Figure 5 ablation, which wires non-standard engine/enclave
    /// combinations).
    pub fn with_replicas(spec: ScenarioSpec, replicas: Vec<ReplicaSetup>) -> Self {
        let config = spec.system_config();
        let properties = replicas[0].engine.properties();
        let workers = if properties.out_of_order {
            spec.workers_per_replica.max(1)
        } else {
            1
        };
        let net = if spec.regions <= 1 {
            NetworkModel::lan(config.n)
        } else {
            NetworkModel::wan(config.n, spec.regions)
        }
        .with_bandwidth(spec.bandwidth);
        let reply_quorum = config.quorum(properties.reply_quorum);
        // Slow-path threshold for all-replica fast paths: Zyzzyva clients
        // gather a commit certificate from 2f + 1 speculative responses;
        // MinZZ (n = 2f + 1) needs f + 1.
        let fallback_quorum = match properties.reply_quorum {
            QuorumRule::AllReplicas => {
                if config.n == config.large_quorum() {
                    config.small_quorum()
                } else {
                    config.large_quorum()
                }
            }
            _ => reply_quorum,
        };
        let hosts: Vec<Host> = replicas
            .into_iter()
            .map(|setup| Host {
                engine: setup.engine,
                enclave: setup.enclave,
                workers: vec![0; workers],
                tc_free: 0,
                tc_seen: 0,
            })
            .collect();
        Simulation {
            op_generator: WorkloadGenerator::new(spec.workload.clone(), ClientId(0), spec.seed),
            next_request_id: vec![1; spec.clients],
            net,
            links: LinkQueues::new(),
            dispatcher: Dispatcher::new(hosts.len()),
            hosts,
            events: BinaryHeap::new(),
            event_seq: 0,
            now: 0,
            requests: HashMap::new(),
            latencies: Vec::new(),
            completed_txns: 0,
            commit_log: Vec::new(),
            messages_delivered: 0,
            reply_quorum,
            fallback_quorum,
            all_replicas_rule: properties.reply_quorum == QuorumRule::AllReplicas,
            pending_resubmits: Vec::new(),
            pending_resubmit_at: 0,
            spec,
        }
    }

    fn push_event(&mut self, at: Ns, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(Reverse(Event {
            at,
            seq: self.event_seq,
            kind,
        }));
    }

    fn fresh_txn(&mut self, client: usize) -> Transaction {
        let request = self.next_request_id[client];
        self.next_request_id[client] += 1;
        let template = self.op_generator.next_transaction();
        Transaction::new(ClientId(client as u64), RequestId(request), template.op)
    }

    fn current_primary(&self) -> ReplicaId {
        // Use the view of the first live replica to locate the primary.
        let n = self.hosts.len();
        for (i, host) in self.hosts.iter().enumerate() {
            if !self.spec.faults.is_failed(ReplicaId(i as u32)) {
                return host.engine.view().primary(n);
            }
        }
        ReplicaId(0)
    }

    /// Runs the scenario to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        let total_ns = self.spec.total_time_us() * 1_000;
        let warmup_ns = self.spec.warmup_us * 1_000;
        // Initial client load: every logical client submits one transaction.
        let initial: Vec<Transaction> = (0..self.spec.clients).map(|c| self.fresh_txn(c)).collect();
        self.schedule_client_upload(1_000, initial);

        while let Some(Reverse(event)) = self.events.pop() {
            if event.at > total_ns {
                break;
            }
            self.now = event.at;
            match event.kind {
                EventKind::Deliver { to, from, msg } => self.on_deliver(to, from, msg),
                EventKind::Transmit {
                    to,
                    from,
                    msg,
                    transmit_ns,
                    extra_ns,
                } => self.on_transmit(to, from, msg, transmit_ns, extra_ns),
                EventKind::TransmitReply {
                    from,
                    reply,
                    transmit_ns,
                } => self.on_transmit_reply(from, reply, transmit_ns),
                EventKind::ClientUpload { txns } => self.on_client_upload(txns),
                EventKind::Timer {
                    replica,
                    timer,
                    token,
                } => self.on_timer(replica, timer, token),
                EventKind::ClientArrival { txns } => self.on_client_arrival(txns),
                EventKind::FallbackComplete { client, request } => {
                    self.on_fallback(client, request)
                }
            }
            self.flush_resubmits();
        }

        self.report(total_ns, warmup_ns)
    }

    fn flush_resubmits(&mut self) {
        if self.pending_resubmits.is_empty() {
            return;
        }
        let txns = std::mem::take(&mut self.pending_resubmits);
        let ready = self.pending_resubmit_at.max(self.now + 1);
        self.schedule_client_upload(ready, txns);
    }

    /// Routes a batch of request uploads towards the primary: under
    /// unlimited client bandwidth they arrive at `ready` directly (the
    /// pure-latency path); otherwise a `ClientUpload` event reserves the
    /// aggregate client uplink when the clock reaches `ready`, so uploads
    /// serialise FIFO in departure-time order behind earlier uploads still
    /// on the pipe.
    fn schedule_client_upload(&mut self, ready: Ns, txns: Vec<Transaction>) {
        let bytes: usize = txns.iter().map(Transaction::wire_size).sum();
        if self.net.client_transmit_ns(bytes) == 0 {
            self.push_event(ready, EventKind::ClientArrival { txns });
        } else {
            self.push_event(ready, EventKind::ClientUpload { txns });
        }
    }

    // ------------------------------------------------------------------
    // Engine hosting: CPU / trusted-component accounting around the shared
    // dispatcher. The closure receives the dispatcher, the engine and the
    // simulator's EngineHost view; buffered effects are applied afterwards.
    // ------------------------------------------------------------------

    fn run_engine(
        &mut self,
        replica: ReplicaId,
        base_cost_ns: Ns,
        f: impl FnOnce(&mut Dispatcher, &mut dyn ConsensusEngine, &mut SimEnv),
    ) {
        let tc_access_ns = self.spec.hardware.access_latency_us() * 1_000
            + self.spec.cost.attestation_generation_ns();
        let now = self.now;
        let host = &mut self.hosts[replica.as_usize()];

        // Pick the earliest-available worker thread.
        let (widx, free_at) = host
            .workers
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, t)| (i, *t))
            .expect("hosts always have at least one worker");
        let start = now.max(free_at);

        let Host {
            engine,
            enclave,
            workers,
            tc_free,
            tc_seen,
        } = host;
        let mut env = SimEnv {
            start,
            base_cost_ns,
            tc_access_ns,
            enclave: enclave.as_ref(),
            tc_free,
            tc_seen,
            worker: &mut workers[widx],
            cost: &self.spec.cost,
            net: &self.net,
            faults: &self.spec.faults,
            at: start + base_cost_ns,
            events: Vec::new(),
            replies: Vec::new(),
        };
        f(&mut self.dispatcher, engine.as_mut(), &mut env);
        let SimEnv {
            events, replies, ..
        } = env;
        for (at, kind) in events {
            self.push_event(at, kind);
        }
        for (from, reply, arrive) in replies {
            self.record_reply(from, &reply, arrive);
        }
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn on_client_arrival(&mut self, txns: Vec<Transaction>) {
        let primary = self.current_primary();
        if self.spec.faults.is_failed(primary) {
            return;
        }
        for txn in &txns {
            self.requests.insert(
                (txn.client.0, txn.request.0),
                RequestTracker {
                    submit: self.now,
                    replies: BTreeSet::new(),
                    seq: SeqNum(0),
                    completed: false,
                    fallback_scheduled: false,
                },
            );
        }
        let base_cost = self.spec.cost.client_request_cost_ns(txns.len());
        self.run_engine(primary, base_cost, move |dispatcher, engine, env| {
            dispatcher.client_request(engine, txns, env)
        });
    }

    /// A message reached the head of its departure queue: reserve the
    /// sender's NIC (FIFO behind everything reserved before `now`) and
    /// schedule the delivery for when the last byte has crossed the wire
    /// and the propagation latency has passed.
    fn on_transmit(
        &mut self,
        to: ReplicaId,
        from: ReplicaId,
        msg: Message,
        transmit_ns: u64,
        extra_ns: u64,
    ) {
        let sent = self.links.reserve(
            Nic::Replica(from),
            self.net.replica_link_class(from, to),
            self.now,
            transmit_ns,
        );
        let latency_ns = self.net.replica_latency_us(from, to) * 1_000;
        let arrival = sent.saturating_add(latency_ns).saturating_add(extra_ns);
        self.push_event(arrival, EventKind::Deliver { to, from, msg });
    }

    /// A client reply departing over a finite-bandwidth client lane:
    /// reserve the replica's client lane and account the reply at its
    /// arrival time.
    fn on_transmit_reply(&mut self, from: ReplicaId, reply: ClientReply, transmit_ns: u64) {
        let sent = self
            .links
            .reserve(Nic::Replica(from), LinkClass::Client, self.now, transmit_ns);
        let arrive = sent.saturating_add(self.net.client_latency_us(from) * 1_000);
        self.record_reply(from, &reply, arrive);
    }

    /// A batch of request uploads crossing the aggregate client uplink.
    fn on_client_upload(&mut self, txns: Vec<Transaction>) {
        let bytes: usize = txns.iter().map(Transaction::wire_size).sum();
        let transmit_ns = self.net.client_transmit_ns(bytes);
        let arrival = self
            .links
            .reserve(Nic::ClientPool, LinkClass::Client, self.now, transmit_ns);
        self.push_event(arrival, EventKind::ClientArrival { txns });
    }

    fn on_deliver(&mut self, to: ReplicaId, from: ReplicaId, msg: Message) {
        if self.spec.faults.is_failed(to) {
            return;
        }
        self.messages_delivered += 1;
        let base_cost = self.spec.cost.receive_cost_ns(&msg);
        self.run_engine(to, base_cost, move |dispatcher, engine, env| {
            dispatcher.deliver(engine, from, msg, env)
        });
    }

    fn on_timer(&mut self, replica: ReplicaId, timer: TimerKind, token: TimerToken) {
        if self.spec.faults.is_failed(replica) {
            return;
        }
        let base_cost = self.spec.cost.base_receive_ns;
        // Token validation lives in the dispatcher: a stale token (re-armed
        // or cancelled since) never reaches the engine and charges nothing.
        self.run_engine(replica, base_cost, move |dispatcher, engine, env| {
            dispatcher.timer_expired(engine, timer, token, env);
        });
    }

    fn on_fallback(&mut self, client: ClientId, request: RequestId) {
        let key = (client.0, request.0);
        let Some(tracker) = self.requests.get(&key) else {
            return;
        };
        if tracker.completed || tracker.replies.len() < self.fallback_quorum {
            return;
        }
        self.complete_request(key, self.now);
    }

    // ------------------------------------------------------------------
    // Client accounting.
    // ------------------------------------------------------------------

    fn record_reply(&mut self, replica: ReplicaId, reply: &ClientReply, at: Ns) {
        let key = (reply.client.0, reply.request.0);
        let Some(tracker) = self.requests.get_mut(&key) else {
            return;
        };
        if tracker.completed {
            return;
        }
        tracker.replies.insert(replica);
        // The aggregate client model counts distinct repliers without
        // matching (seq, result) votes, so the logged seq is the one carried
        // by the reply that completes the quorum. In failure-free runs (what
        // the cross-host equivalence test exercises) every reply agrees; a
        // divergent-seq scenario would need per-seq vote counting here to
        // mirror `ClientLibrary` exactly.
        tracker.seq = reply.seq;
        let count = tracker.replies.len();
        if count >= self.reply_quorum {
            self.complete_request(key, at);
        } else if self.all_replicas_rule
            && count >= self.fallback_quorum
            && !tracker.fallback_scheduled
        {
            // Zyzzyva / MinZZ: the fast path needs every replica; if that
            // never happens the client falls back after a timeout plus an
            // extra round trip (gathering/distributing a commit certificate).
            tracker.fallback_scheduled = true;
            // The extra round trip goes to whichever replica currently
            // leads, not a hard-coded replica 0: after a view change the
            // primary may sit in a different region, and the stale RTT base
            // would misprice every fallback.
            let primary = self.current_primary();
            let timeout_ns = self.spec.system_config().client_timeout_us * 1_000;
            let rtt_ns = 2 * self.net.client_latency_us(primary) * 1_000;
            self.push_event(
                at + timeout_ns + rtt_ns,
                EventKind::FallbackComplete {
                    client: reply.client,
                    request: reply.request,
                },
            );
        }
    }

    fn complete_request(&mut self, key: (u64, u64), at: Ns) {
        let warmup_ns = self.spec.warmup_us * 1_000;
        let total_ns = self.spec.total_time_us() * 1_000;
        let Some(tracker) = self.requests.get_mut(&key) else {
            return;
        };
        tracker.completed = true;
        let submit = tracker.submit;
        if self.spec.record_commit_log {
            self.commit_log.push(CommittedTxn {
                seq: tracker.seq,
                client: ClientId(key.0),
                request: RequestId(key.1),
            });
        }
        if submit >= warmup_ns && at <= total_ns {
            self.latencies.push(at - submit);
            self.completed_txns += 1;
        }
        // The closed-loop client immediately submits its next transaction
        // after one client round trip to the replica it actually contacts —
        // the current primary, which may have moved since the run started.
        let client = key.0 as usize;
        if client < self.spec.clients {
            let txn = self.fresh_txn(client);
            self.pending_resubmits.push(txn);
            let primary = self.current_primary();
            self.pending_resubmit_at = at + 2 * self.net.client_latency_us(primary) * 1_000;
        }
        self.requests.remove(&key);
    }

    // ------------------------------------------------------------------
    // Reporting.
    // ------------------------------------------------------------------

    fn report(mut self, total_ns: Ns, warmup_ns: Ns) -> SimReport {
        let measured_s = (total_ns - warmup_ns) as f64 / 1e9;
        let (avg, p50, p99) = latency_stats_ms(&mut self.latencies);
        let tc_accesses: Vec<u64> = self
            .hosts
            .iter()
            .map(|h| {
                h.enclave
                    .as_ref()
                    .map(|e| e.stats().snapshot().total_accesses())
                    .unwrap_or(0)
            })
            .collect();
        let config = self.spec.system_config();
        let mut commit_log = self.commit_log;
        commit_log.sort_unstable();
        SimReport {
            protocol: self.spec.protocol,
            f: self.spec.f,
            n: config.n,
            clients: self.spec.clients,
            duration_s: measured_s,
            total_duration_s: total_ns as f64 / 1e9,
            completed_txns: self.completed_txns,
            throughput_tps: self.completed_txns as f64 / measured_s,
            avg_latency_ms: avg,
            p50_latency_ms: p50,
            p99_latency_ms: p99,
            messages_delivered: self.messages_delivered,
            tc_accesses_total: tc_accesses.iter().sum(),
            tc_accesses_primary: tc_accesses.first().copied().unwrap_or(0),
            max_replica_executed: self
                .hosts
                .iter()
                .map(|h| h.engine.executed_txns())
                .max()
                .unwrap_or(0),
            net_busy_ns: self.links.total_busy_ns(),
            net_queue_delay_ns: self.links.total_queue_delay_ns(),
            link_usage: self.links.usage(),
            commit_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{BandwidthConfig, ProtocolId};

    fn run_quick(protocol: ProtocolId) -> SimReport {
        let spec = ScenarioSpec::quick_test(protocol);
        Simulation::new(spec).run()
    }

    #[test]
    fn flexi_zz_quick_scenario_makes_progress() {
        let report = run_quick(ProtocolId::FlexiZz);
        assert!(report.completed_txns > 0, "{report:?}");
        assert!(report.throughput_tps > 0.0);
        assert!(report.avg_latency_ms > 0.0);
        assert!(report.max_replica_executed > 0);
    }

    #[test]
    fn every_protocol_completes_transactions_in_simulation() {
        for protocol in ProtocolId::ALL {
            let report = run_quick(protocol);
            assert!(
                report.completed_txns > 0,
                "{protocol} completed no transactions: {report:?}"
            );
        }
    }

    #[test]
    fn simulation_is_deterministic_for_a_fixed_seed() {
        let a = run_quick(ProtocolId::FlexiBft);
        let b = run_quick(ProtocolId::FlexiBft);
        assert_eq!(a.completed_txns, b.completed_txns);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.commit_log, b.commit_log);
    }

    #[test]
    fn commit_log_records_every_completion_in_sequence_order() {
        let report = run_quick(ProtocolId::FlexiBft);
        assert!(!report.commit_log.is_empty());
        for pair in report.commit_log.windows(2) {
            assert!(pair[0].seq <= pair[1].seq);
        }
    }

    #[test]
    fn flexitrust_touches_the_trusted_component_once_per_batch_at_the_primary() {
        let report = run_quick(ProtocolId::FlexiZz);
        // All TC accesses happen at the primary.
        assert_eq!(report.tc_accesses_total, report.tc_accesses_primary);
        // Roughly one access per executed batch (allowing for the final
        // partially processed batch).
        let batches = report.max_replica_executed / 10; // batch_size = 10 in quick_test
        assert!(
            report.tc_accesses_primary >= batches.saturating_sub(2)
                && report.tc_accesses_primary <= batches + 25,
            "accesses {} vs batches {batches}",
            report.tc_accesses_primary
        );
    }

    #[test]
    fn minbft_touches_trusted_components_at_every_replica() {
        let report = run_quick(ProtocolId::MinBft);
        assert!(report.tc_accesses_total > report.tc_accesses_primary);
    }

    #[test]
    fn wan_deployment_increases_latency() {
        let slow_enough = |regions: usize| {
            let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
            spec.regions = regions;
            spec.duration_us = 1_200_000;
            spec.warmup_us = 300_000;
            Simulation::new(spec).run()
        };
        let lan = slow_enough(1);
        let wan = slow_enough(6);
        assert!(wan.completed_txns > 0);
        assert!(
            wan.avg_latency_ms > lan.avg_latency_ms,
            "wan {} <= lan {}",
            wan.avg_latency_ms,
            lan.avg_latency_ms
        );
    }

    #[test]
    fn bandwidth_constrained_wan_raises_latency_with_message_size_over_bandwidth() {
        // Figure 6(vi)-style: same WAN topology, only the per-link bandwidth
        // changes, so every latency difference comes from the wire-size /
        // bandwidth term of the delivery-time model.
        let run_with = |bandwidth: BandwidthConfig| {
            let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
            spec.regions = 3;
            spec.bandwidth = bandwidth;
            spec.duration_us = 1_200_000;
            spec.warmup_us = 300_000;
            spec.clients = 400;
            Simulation::new(spec).run()
        };
        let unlimited = run_with(BandwidthConfig::unlimited());
        let moderate = run_with(BandwidthConfig::wan_constrained(50));
        let tight = run_with(BandwidthConfig::wan_constrained(5));
        assert!(unlimited.completed_txns > 0);
        assert!(tight.completed_txns > 0);
        assert!(
            moderate.avg_latency_ms > unlimited.avg_latency_ms,
            "constrained WAN ({} ms) should be slower than unlimited ({} ms)",
            moderate.avg_latency_ms,
            unlimited.avg_latency_ms
        );
        assert!(
            tight.avg_latency_ms > moderate.avg_latency_ms,
            "5 Mbps ({} ms) should be slower than 50 Mbps ({} ms)",
            tight.avg_latency_ms,
            moderate.avg_latency_ms
        );
    }

    #[test]
    fn client_link_bandwidth_slows_uploads_and_replies() {
        let run_with = |bandwidth: BandwidthConfig| {
            let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
            spec.bandwidth = bandwidth;
            Simulation::new(spec).run()
        };
        let unlimited = run_with(BandwidthConfig::unlimited());
        let constrained = run_with(BandwidthConfig::uniform(50));
        assert!(constrained.completed_txns > 0);
        assert!(
            constrained.avg_latency_ms > unlimited.avg_latency_ms,
            "client-link constraint ({} ms) should add latency over unlimited ({} ms)",
            constrained.avg_latency_ms,
            unlimited.avg_latency_ms
        );
    }

    #[test]
    fn single_non_primary_failure_hurts_minzz_more_than_flexi_zz() {
        let run = |protocol, fail: bool| {
            let mut spec = ScenarioSpec::quick_test(protocol);
            spec.duration_us = 400_000;
            spec.warmup_us = 100_000;
            if fail {
                let victim = ReplicaId((spec.replicas() - 1) as u32);
                spec.faults = crate::faults::FaultPlan::single_failure(victim);
            }
            Simulation::new(spec).run()
        };
        let healthy_minzz = run(ProtocolId::MinZz, false);
        let failed_minzz = run(ProtocolId::MinZz, true);
        let healthy_flexi = run(ProtocolId::FlexiZz, false);
        let failed_flexi = run(ProtocolId::FlexiZz, true);
        // MinZZ loses its all-replica fast path: every request pays the
        // slow-path timeout, so latency rises sharply and throughput drops.
        assert!(
            failed_minzz.avg_latency_ms > healthy_minzz.avg_latency_ms * 2.0,
            "minzz failed {} vs healthy {}",
            failed_minzz.avg_latency_ms,
            healthy_minzz.avg_latency_ms
        );
        // Flexi-ZZ keeps its fast path (2f + 1 of 3f + 1 replies suffice).
        assert!(
            failed_flexi.avg_latency_ms < healthy_flexi.avg_latency_ms * 2.0,
            "flexi failed {} vs healthy {}",
            failed_flexi.avg_latency_ms,
            healthy_flexi.avg_latency_ms
        );
        assert!(failed_flexi.throughput_tps > 0.5 * healthy_flexi.throughput_tps);
    }

    #[test]
    fn slower_trusted_hardware_reduces_minbft_throughput() {
        let fast = run_quick(ProtocolId::MinBft);
        let mut slow_spec = ScenarioSpec::quick_test(ProtocolId::MinBft);
        slow_spec.hardware = flexitrust_trusted::TrustedHardware::Custom {
            access_us: 10_000,
            rollback_protected: true,
        };
        let slow = Simulation::new(slow_spec).run();
        assert!(
            slow.throughput_tps < fast.throughput_tps,
            "slow {} >= fast {}",
            slow.throughput_tps,
            fast.throughput_tps
        );
    }
}
