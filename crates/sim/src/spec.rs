//! Scenario specifications.

use crate::chaos::ChaosPlan;
use crate::cost::CostModel;
use crate::faults::FaultPlan;
use flexitrust_trusted::TrustedHardware;
use flexitrust_types::{BandwidthConfig, ProtocolId, SystemConfig};
use flexitrust_workload::WorkloadConfig;

/// Everything needed to run one simulated experiment.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The protocol under test.
    pub protocol: ProtocolId,
    /// Fault threshold `f` (the replica count follows from the protocol).
    pub f: usize,
    /// Transactions per consensus batch.
    pub batch_size: usize,
    /// Number of closed-loop clients (each keeps one transaction in flight).
    pub clients: usize,
    /// Number of worker threads per replica.
    pub workers_per_replica: usize,
    /// Trusted hardware at each replica (access latency / rollback model).
    pub hardware: TrustedHardware,
    /// CPU cost model.
    pub cost: CostModel,
    /// Number of WAN regions (1 = single-datacenter LAN).
    pub regions: usize,
    /// Per-link network bandwidth; unlimited reproduces the pure-latency
    /// model, `wan_constrained` opens Figure 6(vi)-style scenarios where
    /// delivery time grows with message wire size.
    pub bandwidth: BandwidthConfig,
    /// Whether to record every completion in `SimReport::commit_log`.
    /// On for test-scale scenarios (cross-host equivalence checks read it);
    /// off for bench-scale runs, which would otherwise accumulate hundreds
    /// of thousands of entries nobody reads.
    pub record_commit_log: bool,
    /// Simulated duration to measure, in microseconds.
    pub duration_us: u64,
    /// Simulated warm-up excluded from measurement, in microseconds.
    pub warmup_us: u64,
    /// Workload mix.
    pub workload: WorkloadConfig,
    /// Fault / adversary plan.
    pub faults: FaultPlan,
    /// Time-scripted chaos plan (partitions, seeded drop/dup/reorder,
    /// crash-recovery via checkpoint rejoin). Empty plans cost nothing: the
    /// event schedule stays bit-identical to a run without one.
    pub chaos: ChaosPlan,
    /// Overrides the protocol's checkpoint interval when set; chaos
    /// scenarios shorten it so crash-recovery exercises state transfer
    /// within test-scale runs.
    pub checkpoint_interval: Option<u64>,
    /// Random seed for workload generation.
    pub seed: u64,
    /// Overrides the protocol's default in-flight window when set (used to
    /// turn the `oFlexi-*` ablations on and off explicitly).
    pub max_in_flight: Option<usize>,
    /// Overrides the client retry/fallback timeout (microseconds); short
    /// simulations lower it so that the Zyzzyva/MinZZ slow path fits inside
    /// the simulated window.
    pub client_timeout_us: Option<u64>,
    /// Execution-layer shard workers per replica (1 = serial). Purely a
    /// parallelism knob: results and state digests are identical for every
    /// value.
    pub exec_workers: usize,
}

impl ScenarioSpec {
    /// The paper's default setup scaled to simulation length: f = 8,
    /// batch size 100, LAN, SGX-enclave counters, YCSB, 16 workers.
    pub fn paper_default(protocol: ProtocolId) -> Self {
        ScenarioSpec {
            protocol,
            f: 8,
            batch_size: 100,
            clients: 20_000,
            workers_per_replica: 16,
            hardware: TrustedHardware::default_enclave(),
            cost: CostModel::calibrated(),
            regions: 1,
            bandwidth: BandwidthConfig::unlimited(),
            record_commit_log: false,
            duration_us: 400_000,
            warmup_us: 100_000,
            workload: WorkloadConfig::tiny(),
            faults: FaultPlan::none(),
            chaos: ChaosPlan::none(),
            checkpoint_interval: None,
            seed: 42,
            max_in_flight: None,
            client_timeout_us: None,
            exec_workers: 1,
        }
    }

    /// A small, fast configuration for unit/integration tests.
    pub fn quick_test(protocol: ProtocolId) -> Self {
        ScenarioSpec {
            f: 1,
            batch_size: 10,
            clients: 200,
            duration_us: 150_000,
            warmup_us: 30_000,
            client_timeout_us: Some(20_000),
            record_commit_log: true,
            ..Self::paper_default(protocol)
        }
    }

    /// The derived system configuration for the protocol engines.
    pub fn system_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::for_protocol(self.protocol, self.f);
        cfg.batch_size = self.batch_size;
        if let Some(mif) = self.max_in_flight {
            cfg.max_in_flight = mif;
        }
        if let Some(timeout) = self.client_timeout_us {
            cfg.client_timeout_us = timeout;
        }
        if let Some(interval) = self.checkpoint_interval {
            cfg.checkpoint_interval = interval;
        }
        cfg.exec_workers = self.exec_workers.max(1);
        cfg
    }

    /// Total number of replicas in the deployment.
    pub fn replicas(&self) -> usize {
        self.system_config().n
    }

    /// Total simulated time (warm-up + measurement) in microseconds.
    pub fn total_time_us(&self) -> u64 {
        self.duration_us + self.warmup_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let spec = ScenarioSpec::paper_default(ProtocolId::FlexiZz);
        assert_eq!(spec.f, 8);
        assert_eq!(spec.batch_size, 100);
        assert_eq!(spec.replicas(), 25);
        assert_eq!(spec.workers_per_replica, 16);
        let minbft = ScenarioSpec::paper_default(ProtocolId::MinBft);
        assert_eq!(minbft.replicas(), 17);
    }

    #[test]
    fn max_in_flight_override_applies() {
        let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiBft);
        assert!(spec.system_config().max_in_flight > 1);
        spec.max_in_flight = Some(1);
        assert_eq!(spec.system_config().max_in_flight, 1);
    }

    #[test]
    fn total_time_includes_warmup() {
        let spec = ScenarioSpec::quick_test(ProtocolId::Pbft);
        assert_eq!(spec.total_time_us(), spec.duration_us + spec.warmup_us);
    }
}
