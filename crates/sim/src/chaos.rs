//! Deterministic chaos scenario engine: time-scripted partitions and
//! crash/recover events, seeded per-link drop/duplicate/reorder, and
//! commit-progress-triggered crash windows.
//!
//! A [`ChaosPlan`] grows [`crate::faults::FaultPlan`] into a *schedule*: the
//! runner consults it at every send with the current virtual time, applies
//! scripted events as the clock passes them, and draws probabilistic link
//! fates from the plan's own seeded ChaCha stream — never the thread RNG —
//! so an identical plan reproduces a bit-identical event schedule. Recovery
//! rejoins through the checkpoint state-transfer path (`CheckpointRequest` /
//! `CheckpointState`), replaying from the latest stable checkpoint.

use crate::faults::MessageClass;
use flexitrust_protocol::Message;
use flexitrust_types::ReplicaId;
use std::collections::BTreeSet;

/// A scripted chaos event, applied when virtual time reaches `at_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Split the replicas into disjoint groups; replica-to-replica traffic
    /// crossing a group boundary is dropped. Replicas named in no group
    /// share one implicit extra group. Forming a partition replaces any
    /// partition already active.
    PartitionForm {
        /// Virtual time the partition forms, nanoseconds.
        at_ns: u64,
        /// The explicit groups; disjointness is the caller's contract.
        groups: Vec<Vec<ReplicaId>>,
    },
    /// Remove the active partition; all links flow again.
    PartitionHeal {
        /// Virtual time the partition heals, nanoseconds.
        at_ns: u64,
    },
    /// Crash a replica: from `at_ns` it receives nothing, sends nothing and
    /// its timers are discarded.
    Crash {
        /// Virtual time of the crash, nanoseconds.
        at_ns: u64,
        /// The replica that goes down.
        replica: ReplicaId,
    },
    /// Recover a crashed replica: it comes back up and immediately asks
    /// every peer for the latest stable checkpoint (`CheckpointRequest`),
    /// rejoining via state transfer plus replay.
    Recover {
        /// Virtual time of the recovery, nanoseconds.
        at_ns: u64,
        /// The replica that rejoins.
        replica: ReplicaId,
    },
}

impl ChaosEvent {
    /// The virtual time this event fires at.
    pub fn at_ns(&self) -> u64 {
        match self {
            ChaosEvent::PartitionForm { at_ns, .. }
            | ChaosEvent::PartitionHeal { at_ns }
            | ChaosEvent::Crash { at_ns, .. }
            | ChaosEvent::Recover { at_ns, .. } => *at_ns,
        }
    }

    /// Whether applying this event ends a disruption (heals a partition or
    /// recovers a replica) — the instants the liveness bound is measured
    /// from.
    pub fn is_restorative(&self) -> bool {
        matches!(
            self,
            ChaosEvent::PartitionHeal { .. } | ChaosEvent::Recover { .. }
        )
    }
}

/// Per-link probabilistic chaos. Rates are integral events-per-10 000
/// messages so plans stay exactly serialisable; draws come from the plan's
/// seeded ChaCha stream in a fixed order, so the same plan over the same
/// traffic yields the same fates.
///
/// Duplicates are always survivable (the engines are idempotent). Drops
/// and reorders may *legitimately* cost liveness: votes are never
/// retransmitted, and the engines assume FIFO links (attested counter
/// values must arrive in order), so a lost or out-of-order protocol
/// message can permanently stall one replica's sequential execution.
/// Safety is unconditional either way — use
/// [`crate::metrics::SimReport::check_chaos_invariants`] accordingly:
/// assert the full checker on drop-free, reorder-free plans, and the
/// safety half on arbitrary ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkChaos {
    /// Messages silently dropped, per 10 000.
    pub drop_per_10k: u32,
    /// Messages delivered twice, per 10 000; the copy arrives after an
    /// extra delay drawn from `[0, reorder_max_delay_us]`.
    pub duplicate_per_10k: u32,
    /// Messages delayed past later traffic (reordered), per 10 000.
    pub reorder_per_10k: u32,
    /// Upper bound (microseconds) of the extra delay drawn for reordered
    /// messages and duplicate copies.
    pub reorder_max_delay_us: u64,
    /// Message classes the link chaos applies to; empty targets every class.
    pub classes: BTreeSet<MessageClass>,
}

impl LinkChaos {
    /// True when no probabilistic fault can ever fire — the runner then
    /// makes zero RNG draws.
    pub fn is_empty(&self) -> bool {
        self.drop_per_10k == 0 && self.duplicate_per_10k == 0 && self.reorder_per_10k == 0
    }

    /// Whether this chaos applies to the given message.
    pub fn applies_to(&self, msg: &Message) -> bool {
        self.classes.is_empty() || self.classes.contains(&MessageClass::of(msg))
    }
}

/// A crash/recover window keyed on commit progress rather than virtual
/// time, so the same plan pins behaviour across the simulator and the
/// threaded cluster (whose wall clocks are incomparable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashAtSeq {
    /// The replica that crashes and later rejoins.
    pub replica: ReplicaId,
    /// Crash once this replica's own last-executed sequence reaches this.
    pub crash_at_seq: u64,
    /// Recover once the rest of the cluster's frontier (max last-executed
    /// over the other replicas) reaches this.
    pub recover_at_seq: u64,
}

/// A declarative, time-scripted chaos plan: a sorted schedule of partition
/// and crash/recover events, per-link probabilistic faults, and
/// commit-triggered crash windows, all reproducible from `seed`.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Scripted events, sorted ascending by `at_ns` (constructors sort;
    /// hand-built plans should too — the runner applies them in order).
    pub schedule: Vec<ChaosEvent>,
    /// Per-link probabilistic drop/duplicate/reorder.
    pub link: LinkChaos,
    /// Commit-progress-triggered crash/recover windows.
    pub crash_windows: Vec<CrashAtSeq>,
    /// Seed of the plan's private ChaCha stream (independent of the
    /// workload seed, so adding chaos never perturbs the workload).
    pub seed: u64,
}

impl ChaosPlan {
    /// No chaos at all: the runner takes the exact fault-free path.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// True when the plan can never do anything; the runner skips all chaos
    /// bookkeeping and the schedule stays bit-identical to a run without
    /// a plan.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty() && self.link.is_empty() && self.crash_windows.is_empty()
    }

    /// A plan from an explicit schedule; events are sorted by time.
    pub fn scripted(seed: u64, mut schedule: Vec<ChaosEvent>) -> Self {
        schedule.sort_by_key(ChaosEvent::at_ns);
        ChaosPlan {
            schedule,
            seed,
            ..ChaosPlan::default()
        }
    }

    /// Partition the replicas into `groups` at `form_ns`, heal at `heal_ns`.
    pub fn partition_then_heal(
        seed: u64,
        groups: Vec<Vec<ReplicaId>>,
        form_ns: u64,
        heal_ns: u64,
    ) -> Self {
        Self::scripted(
            seed,
            vec![
                ChaosEvent::PartitionForm {
                    at_ns: form_ns,
                    groups,
                },
                ChaosEvent::PartitionHeal { at_ns: heal_ns },
            ],
        )
    }

    /// Crash `replica` at `crash_ns` and recover it at `recover_ns` (it
    /// rejoins via checkpoint state transfer).
    pub fn crash_then_recover(
        seed: u64,
        replica: ReplicaId,
        crash_ns: u64,
        recover_ns: u64,
    ) -> Self {
        Self::scripted(
            seed,
            vec![
                ChaosEvent::Crash {
                    at_ns: crash_ns,
                    replica,
                },
                ChaosEvent::Recover {
                    at_ns: recover_ns,
                    replica,
                },
            ],
        )
    }

    /// Churn preset: starting at `start_ns`, crash the rotating replica
    /// `round % n` for `down_ns`, then `period_ns` later the next one, for
    /// `rounds` rounds. Crashing replica `v` while it leads view `v` forces
    /// a view change, so the rotation repeatedly exercises that path.
    pub fn churn(
        seed: u64,
        n: usize,
        start_ns: u64,
        period_ns: u64,
        down_ns: u64,
        rounds: usize,
    ) -> Self {
        let mut schedule = Vec::with_capacity(rounds * 2);
        for round in 0..rounds {
            let replica = ReplicaId((round % n) as u32);
            let crash = start_ns + round as u64 * period_ns;
            schedule.push(ChaosEvent::Crash {
                at_ns: crash,
                replica,
            });
            schedule.push(ChaosEvent::Recover {
                at_ns: crash + down_ns,
                replica,
            });
        }
        Self::scripted(seed, schedule)
    }

    /// Attaches per-link probabilistic chaos to the plan.
    pub fn with_link(mut self, link: LinkChaos) -> Self {
        self.link = link;
        self
    }

    /// Attaches commit-progress-triggered crash windows to the plan.
    pub fn with_crash_windows(mut self, windows: Vec<CrashAtSeq>) -> Self {
        self.crash_windows = windows;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_presets_are_not() {
        assert!(ChaosPlan::none().is_empty());
        assert!(!ChaosPlan::crash_then_recover(1, ReplicaId(2), 10, 20).is_empty());
        assert!(!ChaosPlan::none()
            .with_link(LinkChaos {
                drop_per_10k: 1,
                ..LinkChaos::default()
            })
            .is_empty());
        assert!(!ChaosPlan::none()
            .with_crash_windows(vec![CrashAtSeq {
                replica: ReplicaId(2),
                crash_at_seq: 40,
                recover_at_seq: 120,
            }])
            .is_empty());
    }

    #[test]
    fn scripted_plans_sort_their_schedule() {
        let plan = ChaosPlan::scripted(
            7,
            vec![
                ChaosEvent::PartitionHeal { at_ns: 500 },
                ChaosEvent::Crash {
                    at_ns: 100,
                    replica: ReplicaId(1),
                },
            ],
        );
        assert_eq!(plan.schedule[0].at_ns(), 100);
        assert_eq!(plan.schedule[1].at_ns(), 500);
        assert!(plan.schedule[1].is_restorative());
        assert!(!plan.schedule[0].is_restorative());
    }

    #[test]
    fn churn_rotates_replicas_and_interleaves_recoveries() {
        let plan = ChaosPlan::churn(3, 4, 1_000, 10_000, 2_000, 5);
        assert_eq!(plan.schedule.len(), 10);
        // Round 4 wraps back to replica 0.
        let crashes: Vec<(u64, ReplicaId)> = plan
            .schedule
            .iter()
            .filter_map(|e| match e {
                ChaosEvent::Crash { at_ns, replica } => Some((*at_ns, *replica)),
                _ => None,
            })
            .collect();
        assert_eq!(crashes[0], (1_000, ReplicaId(0)));
        assert_eq!(crashes[1], (11_000, ReplicaId(1)));
        assert_eq!(crashes[4], (41_000, ReplicaId(0)));
        // Every crash is followed by its recovery before the next crash.
        for pair in plan.schedule.windows(2) {
            assert!(pair[0].at_ns() <= pair[1].at_ns());
        }
    }

    #[test]
    fn link_chaos_class_filter_defaults_to_everything() {
        use flexitrust_types::SeqNum;
        let vote = Message::Prepare {
            view: flexitrust_types::View(0),
            seq: SeqNum(1),
            digest: flexitrust_types::Digest::ZERO,
            attestation: None,
        };
        let open = LinkChaos {
            drop_per_10k: 100,
            ..LinkChaos::default()
        };
        assert!(open.applies_to(&vote));
        let targeted = LinkChaos {
            drop_per_10k: 100,
            classes: BTreeSet::from([MessageClass::Checkpoint]),
            ..LinkChaos::default()
        };
        assert!(!targeted.applies_to(&vote));
        assert!(targeted.applies_to(&Message::CheckpointRequest {
            last_executed: SeqNum(3),
        }));
    }
}
