//! Builds engine clusters for every protocol in the repository.

use crate::spec::ScenarioSpec;
use flexitrust_baselines::{CheapBft, MinBft, MinZz, OpbftEa, Pbft, PbftEa, Zyzzyva};
use flexitrust_core::{FlexiBft, FlexiZz};
use flexitrust_protocol::ConsensusEngine;
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{ProtocolId, ReplicaId, SystemConfig};
use std::sync::Arc;

/// One simulated replica: its engine and (when the protocol uses one) its
/// trusted component, which the simulator observes to charge access latency.
pub struct ReplicaSetup {
    /// The protocol engine.
    pub engine: Box<dyn ConsensusEngine>,
    /// The replica's trusted component, if the protocol uses one.
    pub enclave: Option<SharedEnclave>,
}

/// Builds the full replica set for a scenario.
///
/// All enclaves use counting-mode attestations (structurally checked but not
/// cryptographically signed) so that simulating millions of messages stays
/// cheap; the *cost* of signing/verifying is charged by the
/// [`crate::cost::CostModel`] instead.
pub fn build_replicas(spec: &ScenarioSpec) -> Vec<ReplicaSetup> {
    // The one allocation the whole cluster shares: every engine holds this
    // same `Arc`, and the registry's key table is itself Arc-backed, so
    // replica construction is reference-count bumps from here on.
    let config: Arc<SystemConfig> = Arc::new(spec.system_config());
    let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Counting);
    let make_enclave = |id: ReplicaId, logs: bool| -> SharedEnclave {
        let base = if logs {
            EnclaveConfig::log_based(id, AttestationMode::Counting)
        } else {
            EnclaveConfig::counter_only(id, AttestationMode::Counting)
        };
        Enclave::shared(base.with_hardware(spec.hardware))
    };

    (0..config.n)
        .map(|i| {
            let id = ReplicaId(i as u32);
            match spec.protocol {
                ProtocolId::Pbft => ReplicaSetup {
                    engine: Box::new(Pbft::engine(Arc::clone(&config), id)),
                    enclave: None,
                },
                ProtocolId::Zyzzyva => ReplicaSetup {
                    engine: Box::new(Zyzzyva::engine(Arc::clone(&config), id)),
                    enclave: None,
                },
                ProtocolId::PbftEa => {
                    let enclave = make_enclave(id, true);
                    ReplicaSetup {
                        engine: Box::new(PbftEa::engine(
                            Arc::clone(&config),
                            id,
                            enclave.clone(),
                            registry.clone(),
                        )),
                        enclave: Some(enclave),
                    }
                }
                ProtocolId::OpbftEa => {
                    let enclave = make_enclave(id, true);
                    ReplicaSetup {
                        engine: Box::new(OpbftEa::engine(
                            Arc::clone(&config),
                            id,
                            enclave.clone(),
                            registry.clone(),
                        )),
                        enclave: Some(enclave),
                    }
                }
                ProtocolId::MinBft => {
                    let enclave = make_enclave(id, false);
                    ReplicaSetup {
                        engine: Box::new(MinBft::engine(
                            Arc::clone(&config),
                            id,
                            enclave.clone(),
                            registry.clone(),
                        )),
                        enclave: Some(enclave),
                    }
                }
                ProtocolId::MinZz => {
                    let enclave = make_enclave(id, false);
                    ReplicaSetup {
                        engine: Box::new(MinZz::engine(
                            Arc::clone(&config),
                            id,
                            enclave.clone(),
                            registry.clone(),
                        )),
                        enclave: Some(enclave),
                    }
                }
                ProtocolId::CheapBft => {
                    let enclave = make_enclave(id, false);
                    ReplicaSetup {
                        engine: Box::new(CheapBft::engine(
                            Arc::clone(&config),
                            id,
                            enclave.clone(),
                            registry.clone(),
                        )),
                        enclave: Some(enclave),
                    }
                }
                ProtocolId::FlexiBft | ProtocolId::OFlexiBft => {
                    let enclave = make_enclave(id, false);
                    ReplicaSetup {
                        engine: Box::new(FlexiBft::new(
                            Arc::clone(&config),
                            id,
                            enclave.clone(),
                            registry.clone(),
                        )),
                        enclave: Some(enclave),
                    }
                }
                ProtocolId::FlexiZz | ProtocolId::OFlexiZz => {
                    let enclave = make_enclave(id, false);
                    ReplicaSetup {
                        engine: Box::new(FlexiZz::new(
                            Arc::clone(&config),
                            id,
                            enclave.clone(),
                            registry.clone(),
                        )),
                        enclave: Some(enclave),
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_builds_the_right_cluster_size() {
        for protocol in ProtocolId::ALL {
            let spec = ScenarioSpec::quick_test(protocol);
            let replicas = build_replicas(&spec);
            assert_eq!(replicas.len(), spec.replicas(), "{protocol}");
            assert_eq!(replicas[0].engine.id(), ReplicaId(0));
            assert_eq!(
                replicas[0].enclave.is_some(),
                protocol.uses_trusted_component(),
                "{protocol}"
            );
        }
    }

    #[test]
    fn enclaves_inherit_the_scenario_hardware() {
        let mut spec = ScenarioSpec::quick_test(ProtocolId::MinBft);
        spec.hardware = flexitrust_trusted::TrustedHardware::Custom {
            access_us: 5_000,
            rollback_protected: true,
        };
        let replicas = build_replicas(&spec);
        assert_eq!(
            replicas[0].enclave.as_ref().unwrap().access_latency_us(),
            5_000
        );
    }

    #[test]
    fn oflexi_variants_are_sequential() {
        let spec = ScenarioSpec::quick_test(ProtocolId::OFlexiZz);
        assert_eq!(spec.system_config().max_in_flight, 1);
        let replicas = build_replicas(&spec);
        assert!(!replicas[0].engine.properties().out_of_order);
    }
}
