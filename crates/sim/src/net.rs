//! Network latency and bandwidth model.
//!
//! This is the **stateless** half of the network model: per-link latency
//! (LAN, WAN matrix entry, or the loopback cost for self-delivery), the
//! transmission time of a message's wire bytes through the link's
//! configured bandwidth ([`BandwidthConfig`]), and the link-class
//! classification consumed by the serialising queues. Link *occupancy* —
//! concurrent transfers on one sender NIC queueing behind each other — is
//! the runner-owned [`crate::link::LinkQueues`]; delivery time of a message
//! is `queue wait + size / bandwidth + latency`. The seed model was
//! latency-only; unlimited bandwidth (the default) reproduces it exactly.

use crate::link::LinkClass;
use flexitrust_types::{BandwidthConfig, RegionMap, ReplicaId, WanMatrix};

/// One-way latencies and per-link bandwidth between replicas and between
/// clients and replicas.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    regions: RegionMap,
    wan: WanMatrix,
    /// One-way latency between co-located nodes (same region / same rack).
    local_one_way_us: u64,
    /// One-way latency between a client and its nearest replica.
    client_one_way_us: u64,
    /// Latency a replica pays to deliver a message to itself (kernel
    /// loopback, not the NIC); kept explicit so the cost model accounts for
    /// self-delivery consistently instead of hard-coding it at call sites.
    loopback_us: u64,
    /// Per-link-class bandwidth; `None` entries model infinitely fast links.
    bandwidth: BandwidthConfig,
}

impl NetworkModel {
    /// A single-datacenter (LAN) deployment of `n` replicas, matching the
    /// paper's default setup: ~250 µs one-way within the region.
    pub fn lan(n: usize) -> Self {
        NetworkModel {
            regions: RegionMap::single_region(n),
            wan: WanMatrix::uniform(250),
            local_one_way_us: 250,
            client_one_way_us: 250,
            loopback_us: 1,
            bandwidth: BandwidthConfig::unlimited(),
        }
    }

    /// The paper's WAN deployment: `n` replicas spread round-robin over the
    /// first `region_count` of the six Oracle Cloud regions (§9.7). Clients
    /// are co-located with the primary's region.
    pub fn wan(n: usize, region_count: usize) -> Self {
        NetworkModel {
            regions: RegionMap::round_robin(n, region_count),
            wan: WanMatrix::oracle_cloud(),
            local_one_way_us: 250,
            client_one_way_us: 250,
            loopback_us: 1,
            bandwidth: BandwidthConfig::unlimited(),
        }
    }

    /// Sets the per-link bandwidth configuration.
    pub fn with_bandwidth(mut self, bandwidth: BandwidthConfig) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the self-delivery (loopback) latency.
    pub fn with_loopback_us(mut self, loopback_us: u64) -> Self {
        self.loopback_us = loopback_us;
        self
    }

    /// The region map in use.
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// The per-link bandwidth configuration in use.
    pub fn bandwidth(&self) -> &BandwidthConfig {
        &self.bandwidth
    }

    /// The self-delivery latency, in microseconds.
    pub fn loopback_us(&self) -> u64 {
        self.loopback_us
    }

    /// One-way latency between two replicas, in microseconds.
    pub fn replica_latency_us(&self, from: ReplicaId, to: ReplicaId) -> u64 {
        if from == to {
            return self.loopback_us;
        }
        let a = self.regions.region_of(from);
        let b = self.regions.region_of(to);
        if a == b {
            self.local_one_way_us
        } else {
            self.wan.latency_us(a, b)
        }
    }

    /// The bandwidth class of the replica link `from → to`: local within a
    /// region, WAN across regions. Also the lane transfers serialise on in
    /// [`crate::link::LinkQueues`].
    pub fn replica_link_class(&self, from: ReplicaId, to: ReplicaId) -> LinkClass {
        if self.regions.region_of(from) == self.regions.region_of(to) {
            LinkClass::Local
        } else {
            LinkClass::Wan
        }
    }

    /// Transmission time (nanoseconds) of `bytes` over the replica link
    /// `from → to`: zero for self-delivery (no NIC involved), the local link
    /// bandwidth within a region, the WAN bandwidth across regions.
    pub fn replica_transmit_ns(&self, from: ReplicaId, to: ReplicaId, bytes: usize) -> u64 {
        if from == to {
            return 0;
        }
        let mbps = if self.replica_link_class(from, to) == LinkClass::Local {
            self.bandwidth.local_mbps
        } else {
            self.bandwidth.wan_mbps
        };
        BandwidthConfig::transmit_time_ns(mbps, bytes)
    }

    /// Transmission time (nanoseconds) of `bytes` over a client link.
    pub fn client_transmit_ns(&self, bytes: usize) -> u64 {
        BandwidthConfig::transmit_time_ns(self.bandwidth.client_mbps, bytes)
    }

    /// Ingest (receive-side) time of `bytes` at a replica NIC: zero for
    /// self-delivery (no NIC involved) or when no ingress bandwidth is
    /// configured — receivers then ingest for free, the sender-side-only
    /// model.
    pub fn replica_ingress_ns(&self, from: ReplicaId, to: ReplicaId, bytes: usize) -> u64 {
        if from == to {
            return 0;
        }
        BandwidthConfig::transmit_time_ns(self.bandwidth.ingress_mbps, bytes)
    }

    /// Ingest (receive-side) time of `bytes` at a replica's client-facing
    /// lane (request uploads landing at the primary). Replies to the
    /// aggregate client pool pay no ingress — the pool stands for many
    /// independent client NICs, not one ingest pipe.
    pub fn client_ingress_ns(&self, bytes: usize) -> u64 {
        BandwidthConfig::transmit_time_ns(self.bandwidth.ingress_mbps, bytes)
    }

    /// The MTU-style chunk size transfers are split into on the serialising
    /// link queues, if configured. A hand-built `Some(0)` is clamped to one
    /// byte so chunked transfers always make progress.
    pub fn chunk_bytes(&self) -> Option<usize> {
        self.bandwidth.chunk_bytes.map(|c| c.max(1))
    }

    /// One-way latency between a client and a replica, in microseconds.
    ///
    /// Clients are modelled as co-located with the first region (where the
    /// initial primary lives), as in the paper's WAN experiment.
    pub fn client_latency_us(&self, replica: ReplicaId) -> u64 {
        let client_region = self.regions.region_of(ReplicaId(0));
        let replica_region = self.regions.region_of(replica);
        if client_region == replica_region {
            self.client_one_way_us
        } else {
            self.wan.latency_us(client_region, replica_region)
        }
    }

    /// The slowest one-way replica-to-replica latency in the deployment;
    /// useful for sizing timeouts.
    pub fn max_latency_us(&self, n: usize) -> u64 {
        let mut max = self.local_one_way_us;
        for a in 0..n {
            for b in 0..n {
                max = max.max(self.replica_latency_us(ReplicaId(a as u32), ReplicaId(b as u32)));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_latencies_are_flat() {
        let net = NetworkModel::lan(4);
        assert_eq!(net.replica_latency_us(ReplicaId(0), ReplicaId(3)), 250);
        assert_eq!(net.replica_latency_us(ReplicaId(1), ReplicaId(1)), 1);
        assert_eq!(net.client_latency_us(ReplicaId(2)), 250);
        assert_eq!(net.max_latency_us(4), 250);
    }

    #[test]
    fn wan_latencies_depend_on_regions() {
        let net = NetworkModel::wan(12, 6);
        // Replica 0 (San Jose) to replica 1 (Ashburn) crosses the continent.
        let cross = net.replica_latency_us(ReplicaId(0), ReplicaId(1));
        assert!(cross >= 30_000, "got {cross}");
        // Replica 0 to replica 6 (both San Jose) stays local.
        assert_eq!(net.replica_latency_us(ReplicaId(0), ReplicaId(6)), 250);
        assert!(net.max_latency_us(12) >= 150_000);
    }

    #[test]
    fn more_regions_increase_worst_case_latency() {
        let two = NetworkModel::wan(12, 2).max_latency_us(12);
        let six = NetworkModel::wan(12, 6).max_latency_us(12);
        assert!(six > two);
    }

    #[test]
    fn clients_are_near_the_first_region() {
        let net = NetworkModel::wan(12, 6);
        assert_eq!(net.client_latency_us(ReplicaId(0)), 250);
        assert!(net.client_latency_us(ReplicaId(2)) > 10_000);
    }

    #[test]
    fn self_delivery_routes_through_the_loopback_field() {
        let net = NetworkModel::lan(4).with_loopback_us(7);
        assert_eq!(net.replica_latency_us(ReplicaId(2), ReplicaId(2)), 7);
        assert_eq!(net.loopback_us(), 7);
        // Loopback pays no transmission time even under tight bandwidth.
        let tight = NetworkModel::lan(4).with_bandwidth(BandwidthConfig::uniform(1));
        assert_eq!(
            tight.replica_transmit_ns(ReplicaId(1), ReplicaId(1), 1 << 20),
            0
        );
    }

    #[test]
    fn unlimited_bandwidth_reproduces_the_pure_latency_model() {
        let net = NetworkModel::wan(12, 6);
        assert_eq!(
            net.replica_transmit_ns(ReplicaId(0), ReplicaId(1), 1 << 20),
            0
        );
        assert_eq!(net.client_transmit_ns(1 << 20), 0);
    }

    #[test]
    fn ingress_time_applies_to_remote_deliveries_only() {
        // No ingress bandwidth: receivers ingest for free.
        let free = NetworkModel::wan(12, 6);
        assert_eq!(
            free.replica_ingress_ns(ReplicaId(0), ReplicaId(1), 1 << 20),
            0
        );
        assert_eq!(free.client_ingress_ns(1 << 20), 0);
        // 100 Mbps ingest: 100 kB takes 8 ms to ingest, on replica and
        // client lanes alike — but self-delivery never touches the NIC.
        let rx = NetworkModel::wan(12, 6)
            .with_bandwidth(BandwidthConfig::unlimited().with_ingress_mbps(100));
        assert_eq!(
            rx.replica_ingress_ns(ReplicaId(0), ReplicaId(1), 100_000),
            8_000_000
        );
        assert_eq!(rx.client_ingress_ns(100_000), 8_000_000);
        assert_eq!(
            rx.replica_ingress_ns(ReplicaId(2), ReplicaId(2), 100_000),
            0
        );
    }

    #[test]
    fn chunk_bytes_passes_through_and_clamps_zero() {
        assert_eq!(NetworkModel::lan(4).chunk_bytes(), None);
        let chunked = NetworkModel::lan(4)
            .with_bandwidth(BandwidthConfig::uniform(100).with_chunk_bytes(1_500));
        assert_eq!(chunked.chunk_bytes(), Some(1_500));
        // A hand-built zero chunk is clamped so chunked transfers always
        // make progress.
        let zero = NetworkModel::lan(4).with_bandwidth(BandwidthConfig {
            chunk_bytes: Some(0),
            ..BandwidthConfig::uniform(100)
        });
        assert_eq!(zero.chunk_bytes(), Some(1));
    }

    #[test]
    fn transmit_time_scales_with_wire_size_and_picks_the_link_class() {
        let net = NetworkModel::wan(12, 6).with_bandwidth(BandwidthConfig {
            local_mbps: Some(10_000),
            wan_mbps: Some(100),
            client_mbps: None,
            ..BandwidthConfig::default()
        });
        // Replicas 0 and 6 share San Jose: the fast local link applies.
        let local = net.replica_transmit_ns(ReplicaId(0), ReplicaId(6), 100_000);
        // Replicas 0 and 1 are in different regions: the slow WAN link.
        let wan = net.replica_transmit_ns(ReplicaId(0), ReplicaId(1), 100_000);
        assert_eq!(local, 80_000); // 800 kbit at 10 Gbps = 80 µs
        assert_eq!(wan, 8_000_000); // 800 kbit at 100 Mbps = 8 ms
                                    // Ten times the bytes, ten times the time.
        assert_eq!(
            net.replica_transmit_ns(ReplicaId(0), ReplicaId(1), 1_000_000),
            10 * wan
        );
    }
}
