//! Network latency model.

use flexitrust_types::{RegionMap, ReplicaId, WanMatrix};

/// One-way latencies between replicas and between clients and replicas.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    regions: RegionMap,
    wan: WanMatrix,
    /// One-way latency between co-located nodes (same region / same rack).
    local_one_way_us: u64,
    /// One-way latency between a client and its nearest replica.
    client_one_way_us: u64,
}

impl NetworkModel {
    /// A single-datacenter (LAN) deployment of `n` replicas, matching the
    /// paper's default setup: ~250 µs one-way within the region.
    pub fn lan(n: usize) -> Self {
        NetworkModel {
            regions: RegionMap::single_region(n),
            wan: WanMatrix::uniform(250),
            local_one_way_us: 250,
            client_one_way_us: 250,
        }
    }

    /// The paper's WAN deployment: `n` replicas spread round-robin over the
    /// first `region_count` of the six Oracle Cloud regions (§9.7). Clients
    /// are co-located with the primary's region.
    pub fn wan(n: usize, region_count: usize) -> Self {
        NetworkModel {
            regions: RegionMap::round_robin(n, region_count),
            wan: WanMatrix::oracle_cloud(),
            local_one_way_us: 250,
            client_one_way_us: 250,
        }
    }

    /// The region map in use.
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// One-way latency between two replicas, in microseconds.
    pub fn replica_latency_us(&self, from: ReplicaId, to: ReplicaId) -> u64 {
        if from == to {
            return 1;
        }
        let a = self.regions.region_of(from);
        let b = self.regions.region_of(to);
        if a == b {
            self.local_one_way_us
        } else {
            self.wan.latency_us(a, b)
        }
    }

    /// One-way latency between a client and a replica, in microseconds.
    ///
    /// Clients are modelled as co-located with the first region (where the
    /// initial primary lives), as in the paper's WAN experiment.
    pub fn client_latency_us(&self, replica: ReplicaId) -> u64 {
        let client_region = self.regions.region_of(ReplicaId(0));
        let replica_region = self.regions.region_of(replica);
        if client_region == replica_region {
            self.client_one_way_us
        } else {
            self.wan.latency_us(client_region, replica_region)
        }
    }

    /// The slowest one-way replica-to-replica latency in the deployment;
    /// useful for sizing timeouts.
    pub fn max_latency_us(&self, n: usize) -> u64 {
        let mut max = self.local_one_way_us;
        for a in 0..n {
            for b in 0..n {
                max = max.max(self.replica_latency_us(
                    ReplicaId(a as u32),
                    ReplicaId(b as u32),
                ));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_latencies_are_flat() {
        let net = NetworkModel::lan(4);
        assert_eq!(net.replica_latency_us(ReplicaId(0), ReplicaId(3)), 250);
        assert_eq!(net.replica_latency_us(ReplicaId(1), ReplicaId(1)), 1);
        assert_eq!(net.client_latency_us(ReplicaId(2)), 250);
        assert_eq!(net.max_latency_us(4), 250);
    }

    #[test]
    fn wan_latencies_depend_on_regions() {
        let net = NetworkModel::wan(12, 6);
        // Replica 0 (San Jose) to replica 1 (Ashburn) crosses the continent.
        let cross = net.replica_latency_us(ReplicaId(0), ReplicaId(1));
        assert!(cross >= 30_000, "got {cross}");
        // Replica 0 to replica 6 (both San Jose) stays local.
        assert_eq!(net.replica_latency_us(ReplicaId(0), ReplicaId(6)), 250);
        assert!(net.max_latency_us(12) >= 150_000);
    }

    #[test]
    fn more_regions_increase_worst_case_latency() {
        let two = NetworkModel::wan(12, 2).max_latency_us(12);
        let six = NetworkModel::wan(12, 6).max_latency_us(12);
        assert!(six > two);
    }

    #[test]
    fn clients_are_near_the_first_region() {
        let net = NetworkModel::wan(12, 6);
        assert_eq!(net.client_latency_us(ReplicaId(0)), 250);
        assert!(net.client_latency_us(ReplicaId(2)) > 10_000);
    }
}
