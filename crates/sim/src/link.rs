//! Serialising FIFO link queues: the stateful half of the bandwidth model.
//!
//! [`crate::net::NetworkModel`] answers the stateless questions — what is
//! the latency of a link, how long do `bytes` take to cross it — but a real
//! NIC is a serial resource: two transfers leaving the same sender at the
//! same time do not each get the full link, the second waits for the first.
//! [`LinkQueues`] adds that state. Every outbound link is identified by its
//! sender-side [`Nic`] and a [`LinkClass`] (which bandwidth knob governs
//! it), and tracks the time until which it is busy. Reserving a transfer
//! returns when its last byte leaves the wire:
//!
//! ```text
//! start  = max(ready, busy_until)      // FIFO behind earlier transfers
//! done   = start + transmit            // then the wire time itself
//! ```
//!
//! so a broadcast's k-th copy queues behind the k − 1 copies enqueued before
//! it — the sender-NIC contention that throttles broadcast-heavy leaders at
//! geo-scale, which an infinite-capacity pipe model cannot show.
//!
//! Links have **two ends**: every lane is additionally keyed by a
//! [`Direction`]. Egress lanes serialise what a NIC sends; ingress lanes
//! serialise what it receives, so a leader collecting n − 1 simultaneous
//! votes pays for ingesting them one after another (the vote implosion that
//! pins leader-based protocols at scale) instead of absorbing the whole fan-
//! in for free. As on the egress side, each link class is its own lane:
//! a NIC's local, WAN and client traffic do not (yet) share one ingest
//! rate — cross-class contention on a physical NIC is future work. An ingress reservation is made with `ready` set to *arrival
//! minus the ingest wire time*: the bits streamed into the NIC while they
//! crossed the wire, so an uncontended message finishes ingesting exactly at
//! its arrival instant (transmit time is paid once, cut-through), and only
//! contention adds delay.
//!
//! Zero-length transfers (an unlimited link class) bypass the queue
//! entirely and never touch its state, so `BandwidthConfig::unlimited()`
//! reproduces the pure-latency schedule bit-exactly.
//!
//! The queues live with the [`crate::runner::Simulation`] rather than the
//! (cloned, shared) `NetworkModel`, and double as the accounting point for
//! per-link utilisation and queueing delay reported in
//! [`crate::metrics::SimReport`].

use flexitrust_types::ReplicaId;
use std::collections::BTreeMap;

/// Simulated time in nanoseconds.
type Ns = u64;

/// Which bandwidth knob of `BandwidthConfig` governs a link.
///
/// Each class is a separate lane of the sender's NIC: a replica pushing a
/// WAN broadcast does not stall its intra-region traffic in this model,
/// matching the per-link-class bandwidth configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkClass {
    /// Intra-region replica-to-replica links (`local_mbps`).
    Local,
    /// Inter-region replica-to-replica links (`wan_mbps`).
    Wan,
    /// Client↔replica links (`client_mbps`): request uploads and reply
    /// downloads.
    Client,
}

impl LinkClass {
    /// Short label for tables and summaries.
    pub fn name(self) -> &'static str {
        match self {
            LinkClass::Local => "local",
            LinkClass::Wan => "wan",
            LinkClass::Client => "client",
        }
    }
}

/// The sender-side network interface a transfer leaves through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Nic {
    /// A replica's NIC.
    Replica(ReplicaId),
    /// The aggregate client population's uplink (clients are modelled in
    /// aggregate, so their uploads share one serialising pipe).
    ClientPool,
}

impl std::fmt::Display for Nic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Nic::Replica(id) => write!(f, "replica {}", id.0),
            Nic::ClientPool => f.write_str("clients"),
        }
    }
}

/// Which end of a link a reservation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// The sending side: transfers leaving the NIC.
    Egress,
    /// The receiving side: transfers being ingested by the NIC.
    Ingress,
}

impl Direction {
    /// Short label for tables and summaries.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Egress => "tx",
            Direction::Ingress => "rx",
        }
    }
}

/// Per-link occupancy and accounting.
#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    /// The link transmits earlier reservations until this instant.
    busy_until: Ns,
    /// Total nanoseconds spent transmitting (wire occupancy).
    busy_ns: u64,
    /// Total nanoseconds transfers waited behind earlier ones.
    queue_delay_ns: u64,
    /// Number of transfers that crossed the link.
    messages: u64,
}

/// Usage of one link lane over a run, as reported in `SimReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkUsage {
    /// The NIC the lane belongs to.
    pub nic: Nic,
    /// The link class on that NIC.
    pub class: LinkClass,
    /// Which end of the NIC the lane occupies (egress = sending,
    /// ingress = receiving).
    pub direction: Direction,
    /// Total transmission (wire-occupancy) time, nanoseconds.
    pub busy_ns: u64,
    /// Total time transfers queued behind earlier ones, nanoseconds.
    pub queue_delay_ns: u64,
    /// Transfers that crossed the link.
    pub messages: u64,
}

impl LinkUsage {
    /// Offered wire time relative to `duration_ns`: the total transmission
    /// time reserved on the link divided by the window. Values above 1.0
    /// mean the link was oversubscribed — more wire time was demanded than
    /// the window could carry, so a backlog (queueing delay) built up.
    pub fn utilization(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / duration_ns as f64
        }
    }
}

/// FIFO occupancy state for every (NIC, link class, direction) lane.
///
/// Owned by the simulation runner; the network model itself stays stateless
/// and shareable.
#[derive(Debug, Clone, Default)]
pub struct LinkQueues {
    links: BTreeMap<(Nic, LinkClass, Direction), LinkState>,
}

impl LinkQueues {
    /// An empty set of idle links.
    pub fn new() -> Self {
        LinkQueues::default()
    }

    /// Reserves the `(nic, class, direction)` lane for a transfer of
    /// `transmit_ns` that becomes ready at `ready`, and returns the instant
    /// its last byte clears the lane. Transfers are served FIFO in
    /// reservation order: the transfer starts at `max(ready, busy_until)`.
    ///
    /// A `transmit_ns` of 0 (unlimited link class, self-delivery) returns
    /// `ready` without touching any state, so purely latency-modelled
    /// traffic neither queues nor accrues accounting.
    pub fn reserve(
        &mut self,
        nic: Nic,
        class: LinkClass,
        direction: Direction,
        ready: Ns,
        transmit_ns: u64,
    ) -> Ns {
        self.reserve_span(nic, class, direction, ready, transmit_ns, true)
    }

    /// Like [`Self::reserve`], for a later chunk of a transfer whose first
    /// chunk was already reserved: occupies the wire and accrues busy and
    /// queueing time identically, but does not count another message —
    /// `LinkUsage::messages` counts transfers, not chunks.
    pub fn reserve_continuation(
        &mut self,
        nic: Nic,
        class: LinkClass,
        direction: Direction,
        ready: Ns,
        transmit_ns: u64,
    ) -> Ns {
        self.reserve_span(nic, class, direction, ready, transmit_ns, false)
    }

    fn reserve_span(
        &mut self,
        nic: Nic,
        class: LinkClass,
        direction: Direction,
        ready: Ns,
        transmit_ns: u64,
        count_message: bool,
    ) -> Ns {
        if transmit_ns == 0 {
            return ready;
        }
        let link = self.links.entry((nic, class, direction)).or_default();
        let start = ready.max(link.busy_until);
        let done = start.saturating_add(transmit_ns);
        link.busy_until = done;
        link.busy_ns = link.busy_ns.saturating_add(transmit_ns);
        link.queue_delay_ns = link.queue_delay_ns.saturating_add(start - ready);
        if count_message {
            link.messages += 1;
        }
        done
    }

    /// Per-lane usage, sorted by (NIC, class, direction) for deterministic
    /// reporting.
    pub fn usage(&self) -> Vec<LinkUsage> {
        let mut usage: Vec<LinkUsage> = self
            .links
            .iter()
            .map(|((nic, class, direction), s)| LinkUsage {
                nic: *nic,
                class: *class,
                direction: *direction,
                busy_ns: s.busy_ns,
                queue_delay_ns: s.queue_delay_ns,
                messages: s.messages,
            })
            .collect();
        usage.sort_unstable_by_key(|u| (u.nic, u.class, u.direction));
        usage
    }

    /// Total wire-occupancy time across every link, nanoseconds.
    pub fn total_busy_ns(&self) -> u64 {
        self.links
            .values()
            .fold(0u64, |acc, s| acc.saturating_add(s.busy_ns))
    }

    /// Total queueing delay across every link, nanoseconds.
    pub fn total_queue_delay_ns(&self) -> u64 {
        self.links
            .values()
            .fold(0u64, |acc, s| acc.saturating_add(s.queue_delay_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NIC: Nic = Nic::Replica(ReplicaId(0));
    const TX: Direction = Direction::Egress;
    const RX: Direction = Direction::Ingress;

    #[test]
    fn an_idle_link_adds_only_transmit_time() {
        let mut q = LinkQueues::new();
        assert_eq!(q.reserve(NIC, LinkClass::Wan, TX, 1_000, 50), 1_050);
    }

    #[test]
    fn broadcast_copies_serialise_on_the_sender_nic() {
        // The acceptance criterion: the k-th copy of a broadcast completes
        // k transmit times after departure — fan-out costs wire time.
        let mut q = LinkQueues::new();
        let transmit = 400;
        for k in 1..=24u64 {
            let done = q.reserve(NIC, LinkClass::Wan, TX, 10_000, transmit);
            assert_eq!(done, 10_000 + k * transmit, "copy {k}");
        }
        let usage = q.usage();
        assert_eq!(usage.len(), 1);
        assert_eq!(usage[0].messages, 24);
        assert_eq!(usage[0].busy_ns, 24 * transmit);
        // Copies 2..=24 each waited behind the earlier ones.
        assert_eq!(usage[0].queue_delay_ns, (0..24).sum::<u64>() * transmit);
    }

    #[test]
    fn link_classes_are_independent_lanes() {
        let mut q = LinkQueues::new();
        assert_eq!(q.reserve(NIC, LinkClass::Wan, TX, 0, 1_000), 1_000);
        // Local traffic from the same NIC does not queue behind WAN traffic.
        assert_eq!(q.reserve(NIC, LinkClass::Local, TX, 0, 10), 10);
        // Nor do different senders share a queue.
        assert_eq!(
            q.reserve(Nic::Replica(ReplicaId(1)), LinkClass::Wan, TX, 0, 10),
            10
        );
        // But the same lane is still busy.
        assert_eq!(q.reserve(NIC, LinkClass::Wan, TX, 0, 1_000), 2_000);
    }

    #[test]
    fn directions_are_independent_lanes() {
        let mut q = LinkQueues::new();
        // Saturate the egress lane…
        assert_eq!(q.reserve(NIC, LinkClass::Wan, TX, 0, 10_000), 10_000);
        // …receiving on the same (NIC, class) is unaffected…
        assert_eq!(q.reserve(NIC, LinkClass::Wan, RX, 0, 500), 500);
        // …and both lanes report their own accounting rows.
        let usage = q.usage();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].direction, TX);
        assert_eq!(usage[1].direction, RX);
        assert_eq!(usage[1].busy_ns, 500);
    }

    #[test]
    fn simultaneous_arrivals_serialise_on_the_ingress_lane() {
        // A vote implosion: n − 1 equal-size votes all arriving at the same
        // instant. With ready = arrival − rx wire time, the first ingests
        // for free (its bits streamed in while crossing the wire) and the
        // k-th completes k − 1 ingest times later.
        let mut q = LinkQueues::new();
        let rx = 700u64;
        let arrival = 50_000u64;
        for k in 0..16u64 {
            let done = q.reserve(NIC, LinkClass::Wan, RX, arrival - rx, rx);
            assert_eq!(done, arrival + k * rx, "vote {k}");
        }
    }

    #[test]
    fn an_idle_gap_drains_the_queue() {
        let mut q = LinkQueues::new();
        q.reserve(NIC, LinkClass::Wan, TX, 0, 100);
        // Ready long after the link went idle: no queueing delay.
        assert_eq!(q.reserve(NIC, LinkClass::Wan, TX, 5_000, 100), 5_100);
        assert_eq!(q.usage()[0].queue_delay_ns, 0);
    }

    #[test]
    fn zero_transmit_bypasses_the_queue() {
        let mut q = LinkQueues::new();
        q.reserve(NIC, LinkClass::Wan, TX, 0, 10_000);
        // Unlimited-bandwidth traffic is not delayed by a busy link…
        assert_eq!(q.reserve(NIC, LinkClass::Wan, TX, 5, 0), 5);
        // …and leaves no trace in the accounting.
        assert_eq!(q.usage()[0].messages, 1);
        assert_eq!(q.total_busy_ns(), 10_000);
        assert_eq!(q.total_queue_delay_ns(), 0);
    }

    #[test]
    fn saturating_transmit_never_overflows_the_clock() {
        let mut q = LinkQueues::new();
        // A 0-Mbps link saturates to u64::MAX transmit time.
        let done = q.reserve(NIC, LinkClass::Wan, TX, 1_000, u64::MAX);
        assert_eq!(done, u64::MAX);
        // The next reservation on the dead link also saturates.
        assert_eq!(q.reserve(NIC, LinkClass::Wan, TX, 2_000, 1), u64::MAX);
    }

    #[test]
    fn utilization_is_busy_over_duration() {
        let mut q = LinkQueues::new();
        q.reserve(NIC, LinkClass::Client, TX, 0, 250);
        q.reserve(NIC, LinkClass::Client, TX, 0, 250);
        let usage = q.usage();
        assert!((usage[0].utilization(1_000) - 0.5).abs() < 1e-12);
        assert_eq!(usage[0].utilization(0), 0.0);
    }
}
