//! Deterministic discrete-event simulator for the paper's evaluation.
//!
//! The paper's numbers come from a 97-replica Oracle Cloud deployment with
//! up to 80 k closed-loop clients. This crate reproduces the *shape* of that
//! evaluation on a laptop: the same protocol engines that run under the
//! threaded runtime are driven by a discrete-event loop that models
//!
//! * **network latency and link occupancy** — a single-region LAN or the
//!   paper's six-region WAN layout ([`net::NetworkModel`]), with every
//!   sender NIC modelled as serialising FIFO queues per link class
//!   ([`link::LinkQueues`]): concurrent transfers on one link queue behind
//!   each other, so broadcast fan-out pays real wire time,
//! * **replica CPU** — a configurable number of worker threads per replica,
//!   each message charged for MAC checks, signature/attestation
//!   verifications, hashing and execution ([`cost::CostModel`]),
//! * **trusted-component latency** — every enclave access observed during a
//!   message is serialized on the replica's trusted component and charged
//!   the hardware's access latency (Figure 8's knob), and
//! * **closed-loop client load** — a configurable number of logical clients,
//!   each with one outstanding transaction, completing when the protocol's
//!   reply quorum of replicas has executed it ([`spec::ScenarioSpec`]).
//!
//! Scenarios are described by [`ScenarioSpec`], run by [`runner::Simulation`]
//! and summarised in a [`metrics::SimReport`]. [`registry`] builds engine
//! clusters for every protocol in the repository.

pub mod chaos;
pub mod cost;
pub mod faults;
pub mod link;
pub mod metrics;
pub mod net;
pub mod registry;
pub mod runner;
pub mod spec;

pub use chaos::{ChaosEvent, ChaosPlan, CrashAtSeq, LinkChaos};
pub use cost::CostModel;
pub use faults::{DeliveryFate, FaultPlan, MessageClass};
pub use link::{Direction, LinkClass, LinkQueues, LinkUsage, Nic};
pub use metrics::{CommittedTxn, SimReport};
pub use net::NetworkModel;
pub use registry::{build_replicas, ReplicaSetup};
pub use runner::Simulation;
pub use spec::ScenarioSpec;
