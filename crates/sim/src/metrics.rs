//! Simulation output: throughput, latency distribution, resource usage.

use flexitrust_types::ProtocolId;

pub use flexitrust_host::CommittedTxn;

/// The summary a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The protocol that was simulated.
    pub protocol: ProtocolId,
    /// Fault threshold.
    pub f: usize,
    /// Number of replicas.
    pub n: usize,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Measured (post-warm-up) duration in seconds.
    pub duration_s: f64,
    /// Transactions completed at clients during the measured window.
    pub completed_txns: u64,
    /// Client-observed throughput in transactions per second.
    pub throughput_tps: f64,
    /// Mean client latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Median client latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile client latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Protocol messages delivered during the whole run.
    pub messages_delivered: u64,
    /// Total trusted-component accesses across all replicas.
    pub tc_accesses_total: u64,
    /// Trusted-component accesses at the (initial) primary.
    pub tc_accesses_primary: u64,
    /// Total transactions executed at the busiest replica (sanity check that
    /// execution kept up with client completion).
    pub max_replica_executed: u64,
    /// Every completed transaction (warm-up included), sorted by sequence
    /// number; the basis of cross-host equivalence checks. Recorded only
    /// when `ScenarioSpec::record_commit_log` is set (on in `quick_test`,
    /// off in `paper_default` to keep bench-scale runs lean).
    pub commit_log: Vec<CommittedTxn>,
}

impl SimReport {
    /// Throughput normalised per replica ("throughput-per-machine",
    /// Figure 9).
    pub fn throughput_per_machine(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.throughput_tps / self.n as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<11} f={:<2} n={:<3} clients={:<6} tput={:>10.0} tx/s lat(avg/p50/p99)={:>7.2}/{:>7.2}/{:>7.2} ms tc={}",
            self.protocol.name(),
            self.f,
            self.n,
            self.clients,
            self.throughput_tps,
            self.avg_latency_ms,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.tc_accesses_total,
        )
    }
}

/// Computes latency statistics (in milliseconds) from nanosecond samples.
pub(crate) fn latency_stats_ms(samples: &mut [u64]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    samples.sort_unstable();
    let to_ms = |ns: u64| ns as f64 / 1_000_000.0;
    let avg = samples.iter().map(|s| *s as f64).sum::<f64>() / samples.len() as f64 / 1_000_000.0;
    let p50 = to_ms(samples[samples.len() / 2]);
    let p99_idx = ((samples.len() - 1) as f64 * 0.99) as usize;
    let p99 = to_ms(samples[p99_idx]);
    (avg, p50, p99)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            protocol: ProtocolId::FlexiZz,
            f: 8,
            n: 25,
            clients: 1000,
            duration_s: 1.0,
            completed_txns: 50_000,
            throughput_tps: 50_000.0,
            avg_latency_ms: 1.5,
            p50_latency_ms: 1.2,
            p99_latency_ms: 4.0,
            messages_delivered: 100_000,
            tc_accesses_total: 500,
            tc_accesses_primary: 500,
            max_replica_executed: 50_000,
            commit_log: Vec::new(),
        }
    }

    #[test]
    fn per_machine_divides_by_n() {
        let r = report();
        assert!((r.throughput_per_machine() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn summary_line_contains_protocol_and_throughput() {
        let line = report().summary_line();
        assert!(line.contains("Flexi-ZZ"));
        assert!(line.contains("50000"));
    }
}
