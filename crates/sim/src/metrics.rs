//! Simulation output: throughput, latency distribution, resource usage.

use flexitrust_types::{Digest, ProtocolId};

pub use crate::link::{Direction, LinkClass, LinkUsage, Nic};
pub use flexitrust_host::CommittedTxn;

/// The summary a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The protocol that was simulated.
    pub protocol: ProtocolId,
    /// Fault threshold.
    pub f: usize,
    /// Number of replicas.
    pub n: usize,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Measured (post-warm-up) duration in seconds.
    pub duration_s: f64,
    /// Whole-run simulated time (warm-up included) in seconds — the window
    /// link accounting spans.
    pub total_duration_s: f64,
    /// Transactions completed at clients during the measured window.
    pub completed_txns: u64,
    /// Client-observed throughput in transactions per second.
    pub throughput_tps: f64,
    /// Mean client latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Median client latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile client latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Protocol messages delivered during the whole run.
    pub messages_delivered: u64,
    /// Discrete events processed by the simulation loop during the whole
    /// run (deliveries, transmit/ingest chunks, timers, client arrivals).
    /// Divided by wall-clock time this is the simulator's native speed —
    /// the figure the zero-copy throughput harness gates on.
    pub events_processed: u64,
    /// Total trusted-component accesses across all replicas.
    pub tc_accesses_total: u64,
    /// Trusted-component accesses at the (initial) primary.
    pub tc_accesses_primary: u64,
    /// Total transactions executed at the busiest replica (sanity check that
    /// execution kept up with client completion).
    pub max_replica_executed: u64,
    /// Total wire-occupancy (transmission) time across every link of the
    /// run, nanoseconds. Zero under `BandwidthConfig::unlimited()`.
    pub net_busy_ns: u64,
    /// Total time transfers spent queued behind earlier transfers on a
    /// NIC lane (sender egress or receiver ingress), nanoseconds. Non-zero
    /// only when a lane saturates: the contention signal of the serialising
    /// FIFO link model.
    pub net_queue_delay_ns: u64,
    /// Per-(NIC, link class, direction) lane usage, sorted by NIC, class,
    /// direction. Egress rows are what NICs sent; ingress rows (present
    /// only when `ingress_mbps` is configured) are what they ingested.
    pub link_usage: Vec<LinkUsage>,
    /// Per-replica `(last_executed, state digest)` at the end of the run —
    /// the basis of the chaos safety check. `None` digests come from
    /// engines that do not expose one.
    pub replica_frontiers: Vec<(u64, Option<Digest>)>,
    /// Disruptive chaos events applied (partitions formed, crashes — both
    /// scripted and commit-triggered).
    pub chaos_disruptions: u64,
    /// Virtual time (ns) of the last restorative chaos event (partition
    /// heal or replica recovery); 0 when none fired.
    pub last_restore_ns: u64,
    /// Client completions at or after the last restorative event — the
    /// liveness checker's progress signal.
    pub completed_after_restore: u64,
    /// Every completed transaction (warm-up included), sorted by sequence
    /// number; the basis of cross-host equivalence checks. Recorded only
    /// when `ScenarioSpec::record_commit_log` is set (on in `quick_test`,
    /// off in `paper_default` to keep bench-scale runs lean).
    pub commit_log: Vec<CommittedTxn>,
}

impl SimReport {
    /// Throughput normalised per replica ("throughput-per-machine",
    /// Figure 9).
    pub fn throughput_per_machine(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.throughput_tps / self.n as f64
        }
    }

    /// Utilisation of the busiest *egress* link in the run: wire time
    /// reserved on the most loaded (sender NIC, link class) pair divided by
    /// the whole-run time (link accounting spans warm-up too, so the window
    /// must as well). Approaches 1.0 as a leader NIC saturates and exceeds
    /// it once the offered load outruns the link (a backlog is building).
    /// [`Self::max_ingress_utilization`] is the receive-side analogue.
    pub fn max_link_utilization(&self) -> f64 {
        let duration_ns = (self.total_duration_s * 1e9) as u64;
        self.link_usage
            .iter()
            .filter(|u| u.direction == Direction::Egress)
            .map(|u| u.utilization(duration_ns))
            .fold(0.0, f64::max)
    }

    /// Utilisation of the busiest *ingress* lane: the receive-side analogue
    /// of [`Self::max_link_utilization`]. Approaches 1.0 as a receiver —
    /// a replica under vote implosion — becomes ingest-bound. Zero when no
    /// ingress bandwidth is configured (receivers then ingest for free and
    /// no ingress rows exist). Only replica NICs own ingress lanes: the
    /// aggregate client pool stands for many independent client NICs and
    /// never ingest-serialises, so reply fan-in cannot masquerade as a
    /// saturated replica here.
    pub fn max_ingress_utilization(&self) -> f64 {
        let duration_ns = (self.total_duration_s * 1e9) as u64;
        self.link_usage
            .iter()
            .filter(|u| u.direction == Direction::Ingress)
            .map(|u| u.utilization(duration_ns))
            .fold(0.0, f64::max)
    }

    /// The usage entry with the most wire-occupancy time across *all*
    /// lanes — egress and ingress alike — if any link ever transmitted
    /// (under unlimited bandwidth none does).
    pub fn busiest_link(&self) -> Option<&LinkUsage> {
        self.link_usage.iter().max_by_key(|u| u.busy_ns)
    }

    /// The chaos safety/liveness invariant checker.
    ///
    /// **Safety**: no two replicas that executed equally far may hold
    /// divergent state digests — under *any* plan, partitioned, crashed or
    /// chaos-ridden. (Prefix agreement below the frontier is enforced by
    /// the checkpoint protocol itself: stable checkpoints require a quorum
    /// of matching state digests.)
    ///
    /// **Liveness**: commit progress must have resumed after the last
    /// restorative event (partition heal / replica recovery); a plan with
    /// no restorative events must simply have completed transactions.
    pub fn check_chaos_invariants(&self) -> Result<(), String> {
        for (i, (seq_a, digest_a)) in self.replica_frontiers.iter().enumerate() {
            for (j, (seq_b, digest_b)) in self.replica_frontiers.iter().enumerate().skip(i + 1) {
                if seq_a != seq_b {
                    continue;
                }
                if let (Some(a), Some(b)) = (digest_a, digest_b) {
                    if a != b {
                        return Err(format!(
                            "safety violation: replicas {i} and {j} both executed \
                             through seq {seq_a} with divergent state digests"
                        ));
                    }
                }
            }
        }
        if self.last_restore_ns > 0 {
            if self.completed_after_restore == 0 {
                return Err(format!(
                    "liveness violation: no client completions after the last \
                     heal/recover at {} ns",
                    self.last_restore_ns
                ));
            }
        } else if self.completed_txns == 0 {
            return Err("liveness violation: no transactions completed".to_string());
        }
        Ok(())
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<11} f={:<2} n={:<3} clients={:<6} tput={:>10.0} tx/s lat(avg/p50/p99)={:>7.2}/{:>7.2}/{:>7.2} ms tc={}",
            self.protocol.name(),
            self.f,
            self.n,
            self.clients,
            self.throughput_tps,
            self.avg_latency_ms,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.tc_accesses_total,
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample set:
/// the smallest sample such that at least `p` of the distribution is at or
/// below it (rank `⌈p·n⌉`, 1-indexed). Used for every reported percentile so
/// p50 and p99 cannot disagree about rounding: the old code indexed p50 at
/// `n/2` (overshooting the median for small even `n`) but truncated the p99
/// rank downward.
pub(crate) fn percentile(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(!sorted.is_empty(), "percentile of an empty sample set");
    debug_assert!((0.0..=1.0).contains(&p));
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Computes latency statistics (in milliseconds) from nanosecond samples.
pub(crate) fn latency_stats_ms(samples: &mut [u64]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    samples.sort_unstable();
    let to_ms = |ns: u64| ns as f64 / 1_000_000.0;
    let avg = samples.iter().map(|s| *s as f64).sum::<f64>() / samples.len() as f64 / 1_000_000.0;
    let p50 = to_ms(percentile(samples, 0.50));
    let p99 = to_ms(percentile(samples, 0.99));
    (avg, p50, p99)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            protocol: ProtocolId::FlexiZz,
            f: 8,
            n: 25,
            clients: 1000,
            duration_s: 0.8,
            total_duration_s: 1.0,
            completed_txns: 50_000,
            throughput_tps: 50_000.0,
            avg_latency_ms: 1.5,
            p50_latency_ms: 1.2,
            p99_latency_ms: 4.0,
            messages_delivered: 100_000,
            events_processed: 250_000,
            tc_accesses_total: 500,
            tc_accesses_primary: 500,
            max_replica_executed: 50_000,
            net_busy_ns: 600_000_000,
            net_queue_delay_ns: 150_000_000,
            link_usage: vec![
                LinkUsage {
                    nic: Nic::Replica(flexitrust_types::ReplicaId(0)),
                    class: LinkClass::Wan,
                    direction: Direction::Egress,
                    busy_ns: 500_000_000,
                    queue_delay_ns: 150_000_000,
                    messages: 900,
                },
                LinkUsage {
                    nic: Nic::Replica(flexitrust_types::ReplicaId(1)),
                    class: LinkClass::Wan,
                    direction: Direction::Egress,
                    busy_ns: 100_000_000,
                    queue_delay_ns: 0,
                    messages: 180,
                },
                LinkUsage {
                    nic: Nic::Replica(flexitrust_types::ReplicaId(0)),
                    class: LinkClass::Wan,
                    direction: Direction::Ingress,
                    busy_ns: 250_000_000,
                    queue_delay_ns: 75_000_000,
                    messages: 600,
                },
            ],
            replica_frontiers: vec![(100, Some(Digest::from_u64_tag(1))); 4],
            chaos_disruptions: 0,
            last_restore_ns: 0,
            completed_after_restore: 0,
            commit_log: Vec::new(),
        }
    }

    #[test]
    fn chaos_checker_flags_divergent_digests_at_equal_frontiers() {
        let mut r = report();
        assert!(r.check_chaos_invariants().is_ok());
        // Divergence at the same frontier is a safety violation…
        r.replica_frontiers[2] = (100, Some(Digest::from_u64_tag(9)));
        assert!(r
            .check_chaos_invariants()
            .unwrap_err()
            .contains("safety violation"));
        // …but a replica still catching up (different frontier) is not.
        r.replica_frontiers[2] = (60, Some(Digest::from_u64_tag(9)));
        assert!(r.check_chaos_invariants().is_ok());
        // Engines without a digest are skipped rather than failed.
        r.replica_frontiers[2] = (100, None);
        assert!(r.check_chaos_invariants().is_ok());
    }

    #[test]
    fn chaos_checker_requires_progress_after_the_last_restore() {
        let mut r = report();
        r.last_restore_ns = 200_000_000;
        r.completed_after_restore = 0;
        assert!(r
            .check_chaos_invariants()
            .unwrap_err()
            .contains("liveness violation"));
        r.completed_after_restore = 17;
        assert!(r.check_chaos_invariants().is_ok());
        // Without restorative events, overall progress is the bar.
        let mut quiet = report();
        quiet.completed_txns = 0;
        assert!(quiet
            .check_chaos_invariants()
            .unwrap_err()
            .contains("liveness violation"));
    }

    #[test]
    fn per_machine_divides_by_n() {
        let r = report();
        assert!((r.throughput_per_machine() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn summary_line_contains_protocol_and_throughput() {
        let line = report().summary_line();
        assert!(line.contains("Flexi-ZZ"));
        assert!(line.contains("50000"));
    }

    #[test]
    fn max_link_utilization_picks_the_busiest_link() {
        let r = report();
        // 500 ms busy over a 1 s run.
        assert!((r.max_link_utilization() - 0.5).abs() < 1e-9);
        let busiest = r.busiest_link().unwrap();
        assert_eq!(busiest.nic, Nic::Replica(flexitrust_types::ReplicaId(0)));
        assert_eq!(busiest.messages, 900);
    }

    #[test]
    fn max_ingress_utilization_only_sees_ingress_lanes() {
        let r = report();
        // The busiest ingress lane carries 250 ms over the 1 s run — the
        // 500 ms egress row must not leak into the receive-side figure.
        assert!((r.max_ingress_utilization() - 0.25).abs() < 1e-9);
        let mut egress_only = r.clone();
        egress_only
            .link_usage
            .retain(|u| u.direction == Direction::Egress);
        assert_eq!(egress_only.max_ingress_utilization(), 0.0);
        // And the reciprocal: an ingress lane hotter than every egress lane
        // must not leak into the sender-side figure.
        let mut hot_ingress = r.clone();
        hot_ingress.link_usage.push(LinkUsage {
            nic: Nic::Replica(flexitrust_types::ReplicaId(2)),
            class: LinkClass::Wan,
            direction: Direction::Ingress,
            busy_ns: 990_000_000,
            queue_delay_ns: 0,
            messages: 1,
        });
        assert!((hot_ingress.max_link_utilization() - 0.5).abs() < 1e-9);
        assert!((hot_ingress.max_ingress_utilization() - 0.99).abs() < 1e-9);
    }

    #[test]
    fn percentiles_use_the_nearest_rank_for_every_p() {
        // n = 1: every percentile is the single sample.
        assert_eq!(percentile(&[7], 0.50), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
        // n = 2: the median is the first sample (rank ⌈0.5·2⌉ = 1), not the
        // second (the old `len/2` indexing returned 20 here).
        assert_eq!(percentile(&[10, 20], 0.50), 10);
        assert_eq!(percentile(&[10, 20], 0.99), 20);
        // n = 4: rank ⌈2⌉ = 2 → the second sample, not the third.
        assert_eq!(percentile(&[1, 2, 3, 4], 0.50), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.99), 4);
        // n = 100: p50 is the 50th sample, p99 the 99th.
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }

    #[test]
    fn latency_stats_agree_with_the_percentile_helper() {
        let mut samples: Vec<u64> = (1..=4).map(|v| v * 1_000_000).collect();
        let (avg, p50, p99) = latency_stats_ms(&mut samples);
        assert!((avg - 2.5).abs() < 1e-9);
        assert!((p50 - 2.0).abs() < 1e-9);
        assert!((p99 - 4.0).abs() < 1e-9);
        assert_eq!(latency_stats_ms(&mut []), (0.0, 0.0, 0.0));
    }
}
