//! Fault and adversary modelling for simulations.
//!
//! The evaluation needs two kinds of misbehaviour: crashed/unresponsive
//! replicas (Figure 7) and adversarial message scheduling (the §5
//! responsiveness attack, where Byzantine replicas withhold messages from a
//! subset of honest replicas and the network delays one honest replica's
//! messages). [`FaultPlan`] captures both declaratively so scenarios remain
//! serialisable and reproducible.

use flexitrust_protocol::Message;
use flexitrust_types::ReplicaId;
use std::collections::BTreeSet;

/// What happens to one message in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFate {
    /// Deliver normally.
    Deliver,
    /// Deliver after an extra delay (microseconds).
    Delay(u64),
    /// Never deliver.
    Drop,
}

/// Coarse classes of protocol traffic, so plans can target (say) only vote
/// messages while proposals and checkpoints flow untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MessageClass {
    /// Primary proposals (`PrePrepare`).
    Proposal,
    /// Replica votes (`Prepare` / `Commit`).
    Vote,
    /// Checkpoint votes and crash-recovery state transfer.
    Checkpoint,
    /// View-change traffic (`ViewChange` / `NewView`).
    ViewChange,
    /// Client-path traffic (`ClientRetry` / `ForwardRequest`).
    Client,
}

impl MessageClass {
    /// The class of a protocol message.
    pub fn of(msg: &Message) -> MessageClass {
        match msg {
            Message::PrePrepare { .. } => MessageClass::Proposal,
            Message::Prepare { .. } | Message::Commit { .. } => MessageClass::Vote,
            Message::Checkpoint { .. }
            | Message::CheckpointRequest { .. }
            | Message::CheckpointState { .. } => MessageClass::Checkpoint,
            Message::ViewChange { .. } | Message::NewView { .. } => MessageClass::ViewChange,
            Message::ClientRetry { .. } | Message::ForwardRequest { .. } => MessageClass::Client,
        }
    }
}

/// A declarative fault/adversary plan applied to every message.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Replicas that have crashed: they receive nothing and send nothing.
    pub failed: BTreeSet<ReplicaId>,
    /// Byzantine replicas that silently withhold all their messages from the
    /// replicas in [`FaultPlan::victims`] (the §5/§6 adversary).
    pub withholding: BTreeSet<ReplicaId>,
    /// The replicas being kept in the dark by the withholding set.
    pub victims: BTreeSet<ReplicaId>,
    /// Honest replicas whose outgoing messages are delayed (partial
    /// synchrony); the delay is [`FaultPlan::delay_us`].
    pub delayed_senders: BTreeSet<ReplicaId>,
    /// Extra delay applied to messages from `delayed_senders` to `victims`.
    pub delay_us: u64,
    /// Message classes the withholding/delay rules apply to; empty targets
    /// every class. Crashed replicas drop everything regardless — a dead
    /// host does not filter by message kind.
    pub target_classes: BTreeSet<MessageClass>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A single crashed (unresponsive) non-primary replica, as in Figure 7.
    pub fn single_failure(replica: ReplicaId) -> Self {
        FaultPlan {
            failed: BTreeSet::from([replica]),
            ..FaultPlan::default()
        }
    }

    /// The §5 responsiveness scenario: the Byzantine set `byzantine`
    /// withholds everything from the honest set `victims`, and the one
    /// remaining honest replica's (`delayed`) messages to the victims are
    /// delayed by `delay_us`.
    pub fn responsiveness_attack(
        byzantine: impl IntoIterator<Item = ReplicaId>,
        victims: impl IntoIterator<Item = ReplicaId>,
        delayed: ReplicaId,
        delay_us: u64,
    ) -> Self {
        FaultPlan {
            withholding: byzantine.into_iter().collect(),
            victims: victims.into_iter().collect(),
            delayed_senders: BTreeSet::from([delayed]),
            delay_us,
            ..FaultPlan::default()
        }
    }

    /// Restricts the withholding/delay rules to the given message classes.
    pub fn targeting(mut self, classes: impl IntoIterator<Item = MessageClass>) -> Self {
        self.target_classes = classes.into_iter().collect();
        self
    }

    /// Returns `true` when the replica has crashed.
    pub fn is_failed(&self, replica: ReplicaId) -> bool {
        self.failed.contains(&replica)
    }

    /// Whether the class-targeted rules apply to this message.
    fn targets(&self, msg: &Message) -> bool {
        self.target_classes.is_empty() || self.target_classes.contains(&MessageClass::of(msg))
    }

    /// Decides the fate of a message from `from` to `to`.
    pub fn fate(&self, from: ReplicaId, to: ReplicaId, msg: &Message) -> DeliveryFate {
        if self.failed.contains(&from) || self.failed.contains(&to) {
            return DeliveryFate::Drop;
        }
        if !self.targets(msg) {
            return DeliveryFate::Deliver;
        }
        if self.withholding.contains(&from) && self.victims.contains(&to) {
            return DeliveryFate::Drop;
        }
        if self.delayed_senders.contains(&from) && self.victims.contains(&to) {
            return DeliveryFate::Delay(self.delay_us);
        }
        DeliveryFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{Digest, SeqNum, View};

    fn msg() -> Message {
        Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: None,
        }
    }

    #[test]
    fn no_faults_delivers_everything() {
        let plan = FaultPlan::none();
        assert_eq!(
            plan.fate(ReplicaId(0), ReplicaId(1), &msg()),
            DeliveryFate::Deliver
        );
        assert!(!plan.is_failed(ReplicaId(0)));
    }

    #[test]
    fn failed_replicas_neither_send_nor_receive() {
        let plan = FaultPlan::single_failure(ReplicaId(2));
        assert_eq!(
            plan.fate(ReplicaId(2), ReplicaId(0), &msg()),
            DeliveryFate::Drop
        );
        assert_eq!(
            plan.fate(ReplicaId(0), ReplicaId(2), &msg()),
            DeliveryFate::Drop
        );
        assert_eq!(
            plan.fate(ReplicaId(0), ReplicaId(1), &msg()),
            DeliveryFate::Deliver
        );
    }

    #[test]
    fn class_targeted_plans_only_touch_matching_traffic() {
        // Withhold only vote traffic from the victim: Prepare is dropped,
        // but PrePrepare (a Proposal) still flows.
        let plan = FaultPlan::responsiveness_attack(
            [ReplicaId(0)],
            [ReplicaId(2)],
            ReplicaId(1),
            5_000_000,
        )
        .targeting([MessageClass::Vote]);
        assert_eq!(
            plan.fate(ReplicaId(0), ReplicaId(2), &msg()),
            DeliveryFate::Drop
        );
        let proposal = Message::PrePrepare {
            view: View(0),
            seq: SeqNum(1),
            batch: flexitrust_crypto::make_batch(Vec::new()),
            attestation: None,
        };
        assert_eq!(
            plan.fate(ReplicaId(0), ReplicaId(2), &proposal),
            DeliveryFate::Deliver
        );
        assert_eq!(
            plan.fate(ReplicaId(1), ReplicaId(2), &proposal),
            DeliveryFate::Deliver
        );
        // Crashes ignore targeting: a dead host drops everything.
        let crashed = FaultPlan::single_failure(ReplicaId(2)).targeting([MessageClass::Vote]);
        assert_eq!(
            plan.fate(ReplicaId(1), ReplicaId(2), &msg()),
            DeliveryFate::Delay(5_000_000)
        );
        assert_eq!(
            crashed.fate(ReplicaId(0), ReplicaId(2), &proposal),
            DeliveryFate::Drop
        );
    }

    #[test]
    fn responsiveness_attack_partitions_the_victims() {
        // MinBFT with f = 1, n = 3: byzantine primary r0, victim r2,
        // delayed honest replica r1.
        let plan = FaultPlan::responsiveness_attack(
            [ReplicaId(0)],
            [ReplicaId(2)],
            ReplicaId(1),
            5_000_000,
        );
        assert_eq!(
            plan.fate(ReplicaId(0), ReplicaId(2), &msg()),
            DeliveryFate::Drop
        );
        assert_eq!(
            plan.fate(ReplicaId(1), ReplicaId(2), &msg()),
            DeliveryFate::Delay(5_000_000)
        );
        assert_eq!(
            plan.fate(ReplicaId(0), ReplicaId(1), &msg()),
            DeliveryFate::Deliver
        );
        assert_eq!(
            plan.fate(ReplicaId(1), ReplicaId(0), &msg()),
            DeliveryFate::Deliver
        );
    }
}
