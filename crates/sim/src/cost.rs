//! The per-message CPU cost model.
//!
//! ResilientDB replicas spend their CPU on MAC verification, digital
//! signature verification (client requests and trusted-component
//! attestations), hashing, message (de)serialisation and execution. The
//! paper's Figure 5 quantifies how adding trusted-counter accesses and
//! signature attestations to PBFT halves single-thread throughput; this cost
//! model is calibrated so the same experiment shows the same relative drop.
//!
//! All costs are expressed in nanoseconds of CPU time on one worker thread.

use flexitrust_protocol::Message;

/// CPU cost parameters (nanoseconds per operation).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of receiving and dispatching any message.
    pub base_receive_ns: u64,
    /// Verifying the channel MAC of a received message.
    pub mac_verify_ns: u64,
    /// Computing the MAC of an outgoing message (per destination).
    pub mac_compute_ns: u64,
    /// Verifying one Ed25519 signature (attestation or client request).
    pub sig_verify_ns: u64,
    /// Producing one Ed25519 signature.
    pub sig_sign_ns: u64,
    /// Hashing cost per transaction in a batch (digest + bookkeeping).
    pub hash_per_txn_ns: u64,
    /// Executing one transaction against the key-value store.
    pub exec_per_txn_ns: u64,
    /// Per-byte cost of (de)serialisation.
    pub per_byte_ns_x100: u64,
    /// Whether trusted-component attestations are full signatures (`true`,
    /// the default) or cheap in-enclave counters without a DS (used by the
    /// Figure 5 ablation bars that separate "TC" from "TC + SA" costs).
    pub attestations_are_signed: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

impl CostModel {
    /// Costs calibrated against a 16-core cloud VM of the paper's class:
    /// ~30 µs per Ed25519 verify, ~1 µs per HMAC, ~0.5 µs per txn of
    /// execution work.
    pub fn calibrated() -> Self {
        CostModel {
            base_receive_ns: 2_000,
            mac_verify_ns: 1_000,
            mac_compute_ns: 800,
            sig_verify_ns: 30_000,
            sig_sign_ns: 25_000,
            hash_per_txn_ns: 400,
            exec_per_txn_ns: 500,
            per_byte_ns_x100: 5,
            attestations_are_signed: true,
        }
    }

    /// A variant where attestations carry no digital signature (only the
    /// trusted-counter access is paid); used by Figure 5 bars [b] and [e].
    pub fn unsigned_attestations() -> Self {
        CostModel {
            attestations_are_signed: false,
            ..Self::calibrated()
        }
    }

    /// CPU nanoseconds to receive, authenticate and process `msg`.
    pub fn receive_cost_ns(&self, msg: &Message) -> u64 {
        let mut cost = self.base_receive_ns + self.mac_verify_ns;
        cost += (msg.wire_size_bytes() as u64 * self.per_byte_ns_x100) / 100;
        let attestations = msg.attestation_count() as u64;
        if self.attestations_are_signed {
            cost += attestations * self.sig_verify_ns;
        }
        if let Message::PrePrepare { batch, .. } = msg {
            // Recompute the batch digest to validate it.
            cost += batch.len() as u64 * self.hash_per_txn_ns;
        }
        cost
    }

    /// CPU nanoseconds to prepare and send `msg` to `destinations` replicas.
    pub fn send_cost_ns(&self, msg: &Message, destinations: usize) -> u64 {
        let mut cost = destinations as u64 * self.mac_compute_ns;
        cost += (msg.wire_size_bytes() as u64 * self.per_byte_ns_x100) / 100;
        if let Message::PrePrepare { batch, .. } = msg {
            cost += batch.len() as u64 * self.hash_per_txn_ns;
        }
        cost
    }

    /// CPU nanoseconds for the attestation *generation* work of one trusted
    /// component access (in addition to the hardware access latency charged
    /// separately): signing inside the enclave when attestations are signed.
    pub fn attestation_generation_ns(&self) -> u64 {
        if self.attestations_are_signed {
            self.sig_sign_ns
        } else {
            0
        }
    }

    /// CPU nanoseconds to execute `txns` transactions.
    pub fn execution_cost_ns(&self, txns: usize) -> u64 {
        txns as u64 * self.exec_per_txn_ns
    }

    /// CPU nanoseconds to batch and admit `txns` incoming client
    /// transactions at the primary (request authentication is the dominant
    /// term; ResilientDB verifies client request MACs).
    pub fn client_request_cost_ns(&self, txns: usize) -> u64 {
        txns as u64 * (self.mac_verify_ns + self.hash_per_txn_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_crypto::make_batch;
    use flexitrust_trusted::{AttestKind, Attestation};
    use flexitrust_types::{
        ClientId, Digest, KvOp, ReplicaId, RequestId, SeqNum, Transaction, View,
    };

    fn batch(n: usize) -> flexitrust_types::Batch {
        make_batch(
            (0..n)
                .map(|i| Transaction::new(ClientId(1), RequestId(i as u64), KvOp::Read { key: 1 }))
                .collect(),
        )
    }

    fn attested_prepare() -> Message {
        Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: Some(Attestation {
                host: ReplicaId(0),
                counter: 0,
                value: 1,
                digest: Digest::ZERO,
                kind: AttestKind::CounterBind,
                signature: flexitrust_crypto::Signature::zero(),
            }),
        }
    }

    #[test]
    fn attested_messages_cost_more_to_receive() {
        let model = CostModel::calibrated();
        let plain = Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: None,
        };
        let attested = attested_prepare();
        assert!(model.receive_cost_ns(&attested) > model.receive_cost_ns(&plain));
        assert!(
            model.receive_cost_ns(&attested) - model.receive_cost_ns(&plain) >= model.sig_verify_ns
        );
    }

    #[test]
    fn unsigned_attestation_variant_removes_the_ds_cost() {
        let signed = CostModel::calibrated();
        let unsigned = CostModel::unsigned_attestations();
        let msg = attested_prepare();
        assert!(unsigned.receive_cost_ns(&msg) < signed.receive_cost_ns(&msg));
        assert_eq!(unsigned.attestation_generation_ns(), 0);
        assert!(signed.attestation_generation_ns() > 0);
    }

    #[test]
    fn preprepare_cost_scales_with_batch_size() {
        let model = CostModel::calibrated();
        let small = Message::PrePrepare {
            view: View(0),
            seq: SeqNum(1),
            batch: batch(10),
            attestation: None,
        };
        let large = Message::PrePrepare {
            view: View(0),
            seq: SeqNum(1),
            batch: batch(1000),
            attestation: None,
        };
        assert!(model.receive_cost_ns(&large) > model.receive_cost_ns(&small) * 10);
    }

    #[test]
    fn send_cost_scales_with_destination_count() {
        let model = CostModel::calibrated();
        let msg = attested_prepare();
        assert!(model.send_cost_ns(&msg, 96) > model.send_cost_ns(&msg, 3));
    }

    #[test]
    fn execution_and_client_costs_scale_with_txns() {
        let model = CostModel::calibrated();
        assert_eq!(model.execution_cost_ns(100), 100 * model.exec_per_txn_ns);
        assert!(model.client_request_cost_ns(100) > model.client_request_cost_ns(1));
    }
}
