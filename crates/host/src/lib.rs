//! The shared engine-hosting layer.
//!
//! Three environments drive [`ConsensusEngine`]s in this workspace: the
//! discrete-event simulator (`flexitrust-sim`), the threaded runtime
//! (`flexitrust-runtime`) and the adversarial attack harness
//! (`flexitrust-attacks`). Historically each re-implemented the
//! [`Action`]-to-effect translation by hand, which meant every new action
//! kind, timer rule or accounting hook had to be patched in three places.
//!
//! This crate centralises that translation:
//!
//! * [`EngineHost`] is the environment contract — the handful of primitives
//!   an environment must supply (deliver a message, deliver a reply, schedule
//!   a timer) plus optional accounting hooks (per-action CPU cost, batch
//!   start) that only the simulator implements.
//! * [`Dispatcher`] owns the **single** `Action` dispatch site in the
//!   workspace: it drains an engine's [`Outbox`], performs timer-token
//!   bookkeeping (so stale timer expirations are ignored uniformly across
//!   hosts), totals the CPU cost of the emitted actions, and hands each
//!   effect to the environment in emission order.
//!
//! Environments implement only what is genuinely environment-specific:
//! scheduling an event (simulator), sending on a channel (runtime), or
//! recording into an observation log (attack harness).

use flexitrust_protocol::{
    unshare, Action, ClientReply, ConsensusEngine, Message, Outbox, SharedMessage, TimerKind,
};
use flexitrust_types::{ClientId, ReplicaId, RequestId, SeqNum, Transaction};
use std::collections::HashMap;
use std::sync::Arc;

/// One committed transaction, as observed by its issuing client: the
/// consensus slot it executed at and its identity.
///
/// Both the simulator and the threaded runtime report their commit sequence
/// in this form, so cross-host tests can assert that the same workload
/// commits identically regardless of which environment hosts the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CommittedTxn {
    /// The sequence number the transaction executed at.
    pub seq: SeqNum,
    /// The issuing client.
    pub client: ClientId,
    /// The client's request id.
    pub request: RequestId,
}

/// An opaque handle identifying one arming of a timer.
///
/// Every `SetTimer` action is tagged with a fresh token; when the
/// environment's clock fires, it hands the token back to
/// [`Dispatcher::timer_expired`], which only forwards the expiry to the
/// engine if that token is still the most recent arming (re-arming or
/// cancelling invalidates older tokens).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(u64);

impl TimerToken {
    /// The raw token value (for compact storage in host event structures).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The primitives an engine-hosting environment supplies.
///
/// Only [`send`](EngineHost::send), [`reply`](EngineHost::reply) and
/// [`schedule_timer`](EngineHost::schedule_timer) are required; the
/// accounting hooks default to no-ops so that environments without a cost
/// model (the threaded runtime, the attack harness) implement nothing extra.
pub trait EngineHost {
    /// Deliver `msg` from `from` to `to` over this environment's network.
    /// The message arrives as a shared handle: environments queue or route
    /// the handle itself; payload bytes are never copied on the way out.
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: SharedMessage);

    /// Deliver `msg` from `from` to every replica (the sender included, so
    /// engines handle their own votes uniformly). The default fans out to
    /// [`send`](EngineHost::send), one reference-count bump per
    /// destination; environments override it when a broadcast is observed
    /// as one event (e.g. vote counting in the attack harness) or encoded
    /// once for all destinations (the TCP transport).
    fn broadcast(&mut self, from: ReplicaId, replicas: usize, msg: SharedMessage) {
        for to in 0..replicas {
            self.send(from, ReplicaId(to as u32), Arc::clone(&msg));
        }
    }

    /// Deliver a client reply emitted by `from`.
    fn reply(&mut self, from: ReplicaId, reply: ClientReply);

    /// Arm `timer` for `replica` to fire after `delay_us` microseconds on
    /// this environment's clock, tagged with `token` for later validation
    /// through [`Dispatcher::timer_expired`].
    fn schedule_timer(
        &mut self,
        replica: ReplicaId,
        timer: TimerKind,
        delay_us: u64,
        token: TimerToken,
    );

    /// A pending `timer` of `replica` was cancelled. Environments that keep
    /// their own deadline queues may drop the entry; token validation makes
    /// this purely an optimisation.
    fn timer_cancelled(&mut self, _replica: ReplicaId, _timer: TimerKind) {}

    /// The batch at `seq` (containing `txns` transactions) was executed at
    /// `replica`. Metrics only.
    fn executed(&mut self, _replica: ReplicaId, _seq: SeqNum, _txns: usize) {}

    /// CPU cost (ns) of preparing and sending `msg` to `destinations`
    /// replicas; summed over a dispatch batch and reported to
    /// [`begin_batch`](EngineHost::begin_batch).
    fn send_cost_ns(&self, _msg: &Message, _destinations: usize) -> u64 {
        0
    }

    /// CPU cost (ns) of executing `txns` transactions.
    fn execution_cost_ns(&self, _txns: usize) -> u64 {
        0
    }

    /// Called once per dispatch batch, before any effect is emitted, with
    /// the summed CPU cost of the batch's actions. The simulator computes
    /// the invocation's departure time here; other environments ignore it.
    fn begin_batch(&mut self, _from: ReplicaId, _actions_cost_ns: u64) {}
}

/// Host-internal intermediate form of one action: the single `Action` match
/// below converts into this so effects can be emitted *after* the batch cost
/// is known, while preserving the engine's emission order.
enum Effect {
    Send { to: ReplicaId, msg: SharedMessage },
    Broadcast { msg: SharedMessage },
    Reply { reply: ClientReply },
    SetTimer { timer: TimerKind, delay_us: u64 },
    CancelTimer { timer: TimerKind },
    Executed { seq: SeqNum, txns: usize },
}

/// Translates engine [`Action`]s into [`EngineHost`] primitives and owns the
/// timer-token bookkeeping shared by every host.
///
/// One `Dispatcher` serves a whole cluster in single-threaded hosts (the
/// simulator, the attack harness); the threaded runtime creates one per
/// replica thread, each tracking only that replica's timers.
#[derive(Debug)]
pub struct Dispatcher {
    replicas: usize,
    armed: HashMap<(ReplicaId, TimerKind), u64>,
    next_token: u64,
}

impl Dispatcher {
    /// Creates a dispatcher for a cluster of `replicas` replicas.
    pub fn new(replicas: usize) -> Self {
        Dispatcher {
            replicas,
            armed: HashMap::new(),
            next_token: 0,
        }
    }

    /// Number of replicas broadcasts fan out to.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Returns `true` when `timer` is currently armed for `replica`.
    pub fn timer_armed(&self, replica: ReplicaId, timer: TimerKind) -> bool {
        self.armed.contains_key(&(replica, timer))
    }

    /// Drives `engine` with arriving client transactions and dispatches the
    /// resulting actions into `env`.
    pub fn client_request<E: EngineHost>(
        &mut self,
        engine: &mut dyn ConsensusEngine,
        txns: Vec<Transaction>,
        env: &mut E,
    ) {
        let from = engine.id();
        let mut out = Outbox::new();
        engine.on_client_request(txns, &mut out);
        self.dispatch(from, out.drain(), env);
    }

    /// Delivers a peer message to `engine` and dispatches the resulting
    /// actions into `env`.
    ///
    /// The shared handle is unwrapped at this boundary: the last holder
    /// moves the message out for free, earlier holders pay only a shallow
    /// skeleton clone ([`flexitrust_protocol::unshare`]).
    pub fn deliver<E: EngineHost>(
        &mut self,
        engine: &mut dyn ConsensusEngine,
        from: ReplicaId,
        msg: SharedMessage,
        env: &mut E,
    ) {
        let replica = engine.id();
        let mut out = Outbox::new();
        engine.on_message(from, unshare(msg), &mut out);
        self.dispatch(replica, out.drain(), env);
    }

    /// Handles a timer expiry: if `token` is still the current arming of
    /// `timer` at the engine's replica, disarms it, forwards the expiry to
    /// the engine and dispatches the resulting actions, returning `true`.
    /// Stale tokens (the timer was re-armed or cancelled since) return
    /// `false` without touching the engine.
    pub fn timer_expired<E: EngineHost>(
        &mut self,
        engine: &mut dyn ConsensusEngine,
        timer: TimerKind,
        token: TimerToken,
        env: &mut E,
    ) -> bool {
        let replica = engine.id();
        if self.armed.get(&(replica, timer)) != Some(&token.0) {
            return false;
        }
        self.armed.remove(&(replica, timer));
        self.fire_timer(engine, timer, env);
        true
    }

    /// Forces a timer expiry regardless of arming state (the attack harness
    /// models the client-complaint path by firing view-change timers
    /// directly).
    pub fn fire_timer<E: EngineHost>(
        &mut self,
        engine: &mut dyn ConsensusEngine,
        timer: TimerKind,
        env: &mut E,
    ) {
        let replica = engine.id();
        self.armed.remove(&(replica, timer));
        let mut out = Outbox::new();
        engine.on_timer(timer, &mut out);
        self.dispatch(replica, out.drain(), env);
    }

    /// Translates `actions` emitted by `from` into environment primitives.
    ///
    /// This is the single `Action` dispatch site in the workspace. The match
    /// runs once per action, accumulating the batch's CPU cost and an
    /// order-preserving effect list; `env.begin_batch` then fixes the batch's
    /// departure point before the effects are emitted.
    pub fn dispatch<E: EngineHost>(&mut self, from: ReplicaId, actions: Vec<Action>, env: &mut E) {
        let replicas = self.replicas;
        let mut cost_ns = 0u64;
        let mut effects = Vec::with_capacity(actions.len());
        for action in actions {
            effects.push(match action {
                Action::Send { to, msg } => {
                    cost_ns += env.send_cost_ns(&msg, 1);
                    // The single point where an outbound message becomes a
                    // shared payload: everything downstream holds this one
                    // allocation.
                    Effect::Send {
                        to,
                        msg: Arc::new(msg),
                    }
                }
                Action::Broadcast { msg } => {
                    cost_ns += env.send_cost_ns(&msg, replicas.saturating_sub(1));
                    Effect::Broadcast { msg: Arc::new(msg) }
                }
                Action::Reply { reply } => Effect::Reply { reply },
                Action::SetTimer { timer, delay_us } => Effect::SetTimer { timer, delay_us },
                Action::CancelTimer { timer } => Effect::CancelTimer { timer },
                Action::Executed { seq, txns } => {
                    cost_ns += env.execution_cost_ns(txns);
                    Effect::Executed { seq, txns }
                }
            });
        }
        env.begin_batch(from, cost_ns);
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => env.send(from, to, msg),
                Effect::Broadcast { msg } => env.broadcast(from, replicas, msg),
                Effect::Reply { reply } => env.reply(from, reply),
                Effect::SetTimer { timer, delay_us } => {
                    self.next_token += 1;
                    let token = TimerToken(self.next_token);
                    self.armed.insert((from, timer), token.0);
                    env.schedule_timer(from, timer, delay_us, token);
                }
                Effect::CancelTimer { timer } => {
                    self.armed.remove(&(from, timer));
                    env.timer_cancelled(from, timer);
                }
                Effect::Executed { seq, txns } => env.executed(from, seq, txns),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{Digest, View};

    #[derive(Default)]
    struct RecordingEnv {
        sends: Vec<(ReplicaId, ReplicaId, String)>,
        replies: u64,
        scheduled: Vec<(ReplicaId, TimerKind, u64, TimerToken)>,
        cancelled: Vec<TimerKind>,
        executed: Vec<(SeqNum, usize)>,
        batches: Vec<u64>,
    }

    impl EngineHost for RecordingEnv {
        fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: SharedMessage) {
            self.sends.push((from, to, msg.kind().to_string()));
        }

        fn reply(&mut self, _from: ReplicaId, _reply: ClientReply) {
            self.replies += 1;
        }

        fn schedule_timer(
            &mut self,
            replica: ReplicaId,
            timer: TimerKind,
            delay_us: u64,
            token: TimerToken,
        ) {
            self.scheduled.push((replica, timer, delay_us, token));
        }

        fn timer_cancelled(&mut self, _replica: ReplicaId, timer: TimerKind) {
            self.cancelled.push(timer);
        }

        fn executed(&mut self, _replica: ReplicaId, seq: SeqNum, txns: usize) {
            self.executed.push((seq, txns));
        }

        fn send_cost_ns(&self, _msg: &Message, destinations: usize) -> u64 {
            100 * destinations as u64
        }

        fn execution_cost_ns(&self, txns: usize) -> u64 {
            10 * txns as u64
        }

        fn begin_batch(&mut self, _from: ReplicaId, cost: u64) {
            self.batches.push(cost);
        }
    }

    fn msg() -> Message {
        Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: None,
        }
    }

    #[test]
    fn dispatch_fans_out_and_totals_costs() {
        let mut dispatcher = Dispatcher::new(4);
        let mut env = RecordingEnv::default();
        let actions = vec![
            Action::Broadcast { msg: msg() },
            Action::Send {
                to: ReplicaId(2),
                msg: msg(),
            },
            Action::Executed {
                seq: SeqNum(1),
                txns: 5,
            },
        ];
        dispatcher.dispatch(ReplicaId(0), actions, &mut env);
        // Broadcast reaches all four replicas (sender included) plus the
        // unicast.
        assert_eq!(env.sends.len(), 5);
        assert_eq!(env.sends[4], (ReplicaId(0), ReplicaId(2), "Prepare".into()));
        // Cost: broadcast to n-1 destinations (300) + unicast (100) + 5 txns
        // executed (50), reported before any effect.
        assert_eq!(env.batches, vec![450]);
        assert_eq!(env.executed, vec![(SeqNum(1), 5)]);
    }

    #[test]
    fn timer_tokens_invalidate_stale_expirations() {
        let mut dispatcher = Dispatcher::new(4);
        let mut env = RecordingEnv::default();
        dispatcher.dispatch(
            ReplicaId(1),
            vec![Action::SetTimer {
                timer: TimerKind::ViewChange,
                delay_us: 500,
            }],
            &mut env,
        );
        let first = env.scheduled[0].3;
        assert!(dispatcher.timer_armed(ReplicaId(1), TimerKind::ViewChange));

        // Re-arm: the first token becomes stale.
        dispatcher.dispatch(
            ReplicaId(1),
            vec![Action::SetTimer {
                timer: TimerKind::ViewChange,
                delay_us: 900,
            }],
            &mut env,
        );
        let second = env.scheduled[1].3;
        assert_ne!(first, second);

        struct NoTimerEngine(ReplicaId, flexitrust_types::SystemConfig, u32);
        impl ConsensusEngine for NoTimerEngine {
            fn config(&self) -> &flexitrust_types::SystemConfig {
                &self.1
            }
            fn id(&self) -> ReplicaId {
                self.0
            }
            fn properties(&self) -> flexitrust_protocol::ProtocolProperties {
                flexitrust_protocol::ProtocolProperties::for_protocol(
                    flexitrust_types::ProtocolId::Pbft,
                )
            }
            fn on_client_request(&mut self, _txns: Vec<Transaction>, _out: &mut Outbox) {}
            fn on_message(&mut self, _from: ReplicaId, _msg: Message, _out: &mut Outbox) {}
            fn on_timer(&mut self, _timer: TimerKind, _out: &mut Outbox) {
                self.2 += 1;
            }
            fn view(&self) -> View {
                View(0)
            }
            fn last_executed(&self) -> SeqNum {
                SeqNum(0)
            }
            fn executed_txns(&self) -> u64 {
                0
            }
        }
        let mut engine = NoTimerEngine(
            ReplicaId(1),
            flexitrust_types::SystemConfig::for_protocol(flexitrust_types::ProtocolId::Pbft, 1),
            0,
        );
        assert!(!dispatcher.timer_expired(&mut engine, TimerKind::ViewChange, first, &mut env));
        assert_eq!(engine.2, 0, "stale token must not reach the engine");
        assert!(dispatcher.timer_expired(&mut engine, TimerKind::ViewChange, second, &mut env));
        assert_eq!(engine.2, 1);
        assert!(!dispatcher.timer_armed(ReplicaId(1), TimerKind::ViewChange));
    }

    #[test]
    fn cancel_removes_arming_and_notifies_env() {
        let mut dispatcher = Dispatcher::new(3);
        let mut env = RecordingEnv::default();
        dispatcher.dispatch(
            ReplicaId(0),
            vec![
                Action::SetTimer {
                    timer: TimerKind::BatchFlush,
                    delay_us: 100,
                },
                Action::CancelTimer {
                    timer: TimerKind::BatchFlush,
                },
            ],
            &mut env,
        );
        assert!(!dispatcher.timer_armed(ReplicaId(0), TimerKind::BatchFlush));
        assert_eq!(env.cancelled, vec![TimerKind::BatchFlush]);
    }
}
