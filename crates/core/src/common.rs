//! State and behaviour shared by Flexi-BFT and Flexi-ZZ.
//!
//! Both FlexiTrust protocols share the same proposal path (the primary binds
//! each batch to its trusted counter with `AppendF` and broadcasts the
//! attested `PrePrepare`), the same acceptance rule at backups (verify the
//! attestation, accept at most one proposal per sequence number per view),
//! the same checkpointing, and the same view-change skeleton (2f + 1
//! `ViewChange` messages, a fresh trusted counter created with `Create`, and
//! contiguous re-proposals). [`FlexiCore`] implements those pieces; the two
//! engine modules add what differs — the voting phase of Flexi-BFT and the
//! speculative execution + client-retry path of Flexi-ZZ.

use flexitrust_protocol::{
    CertificateTracker, Message, NewViewPlanner, Outbox, PreparedProof, ReplicaCore, TimerKind,
};
use flexitrust_trusted::{AttestKind, Attestation, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{
    Batch, Digest, ReplicaId, SeqNum, StateSnapshot, SystemConfig, Transaction, View,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// A proposal accepted by this replica for one sequence number.
#[derive(Debug, Clone)]
pub struct AcceptedProposal {
    /// The view in which the proposal was accepted.
    pub view: View,
    /// Digest of the accepted batch.
    pub digest: Digest,
    /// The batch itself.
    pub batch: Batch,
    /// The primary's trusted-counter attestation.
    pub attestation: Attestation,
}

/// Shared state of a FlexiTrust replica.
pub struct FlexiCore {
    /// Generic replica state (view, execution, checkpoints, reply cache).
    pub replica: ReplicaCore,
    enclave: SharedEnclave,
    registry: EnclaveRegistry,
    /// Identifier of the trusted counter currently used by this replica when
    /// it acts as primary. A fresh counter is created after each view change.
    counter_id: u64,

    // Primary-side proposal state.
    pending_batches: VecDeque<Batch>,
    outstanding: BTreeSet<u64>,

    // Accepted proposals by sequence number.
    accepted: BTreeMap<u64, AcceptedProposal>,

    // View-change state.
    in_view_change: bool,
    highest_vc_vote: View,
    planners: BTreeMap<u64, NewViewPlanner>,
    join_votes: CertificateTracker<View>,
    view_changes_completed: u64,
}

impl FlexiCore {
    /// Creates the shared FlexiTrust state for replica `id`.
    pub fn new(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> Self {
        let config = config.into();
        let join_quorum = config.small_quorum();
        FlexiCore {
            replica: ReplicaCore::new(config, id),
            enclave,
            registry,
            counter_id: 0,
            pending_batches: VecDeque::new(),
            outstanding: BTreeSet::new(),
            accepted: BTreeMap::new(),
            in_view_change: false,
            highest_vc_vote: View::ZERO,
            planners: BTreeMap::new(),
            join_votes: CertificateTracker::new(join_quorum),
            view_changes_completed: 0,
        }
    }

    /// The enclave co-located with this replica.
    ///
    /// Only the primary of the current view ever *accesses* it on the common
    /// path (goal G2 of the paper); backups hold one but leave it idle.
    pub fn enclave(&self) -> &SharedEnclave {
        &self.enclave
    }

    /// Whether this replica currently considers a view change in progress.
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// Number of completed view changes observed by this replica.
    pub fn view_changes_completed(&self) -> u64 {
        self.view_changes_completed
    }

    /// The proposal accepted at `seq`, if any.
    pub fn accepted(&self, seq: SeqNum) -> Option<&AcceptedProposal> {
        self.accepted.get(&seq.0)
    }

    /// Number of consensus instances this primary currently has in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    // ------------------------------------------------------------------
    // Primary proposal path (identical for Flexi-BFT and Flexi-ZZ).
    // ------------------------------------------------------------------

    /// Queues client transactions for proposal (primary) and emits a
    /// `BatchFlush` timer when a partial batch remains.
    pub fn enqueue(&mut self, txns: Vec<Transaction>, out: &mut Outbox) {
        let full = self.replica.batcher_mut().push(txns);
        self.pending_batches.extend(full);
        if self.replica.batcher_mut().pending_len() > 0 {
            out.set_timer(TimerKind::BatchFlush, 500);
        }
        self.try_propose(out);
    }

    /// Flushes a partial batch (on the `BatchFlush` timer).
    pub fn flush_batch(&mut self, out: &mut Outbox) {
        if let Some(batch) = self.replica.batcher_mut().flush() {
            self.pending_batches.push_back(batch);
        }
        self.try_propose(out);
    }

    /// Proposes as many pending batches as the in-flight window allows.
    ///
    /// This is the *single* place FlexiTrust touches the trusted component:
    /// one `AppendF` per proposed batch, at the primary only (§8.1). The
    /// returned sequence number is the counter value, so sequence numbers
    /// are contiguous by construction.
    pub fn try_propose(&mut self, out: &mut Outbox) {
        if !self.replica.is_primary() || self.in_view_change {
            return;
        }
        let max_in_flight = self.replica.config().max_in_flight;
        while self.outstanding.len() < max_in_flight {
            let Some(batch) = self.pending_batches.pop_front() else {
                return;
            };
            let Ok((seq, attestation)) = self.enclave.append_f(self.counter_id, batch.digest())
            else {
                // The counter is unusable (should not happen for an honest
                // primary); drop the batch back and stop proposing.
                self.pending_batches.push_front(batch);
                return;
            };
            self.outstanding.insert(seq);
            out.broadcast(Message::PrePrepare {
                view: self.replica.view(),
                seq: SeqNum(seq),
                batch,
                attestation: Some(attestation),
            });
        }
    }

    /// Marks a consensus instance as no longer outstanding (it executed) and
    /// keeps the proposal pipeline full.
    pub fn instance_finished(&mut self, seq: SeqNum, out: &mut Outbox) {
        self.outstanding.remove(&seq.0);
        self.try_propose(out);
    }

    // ------------------------------------------------------------------
    // Backup acceptance rule (identical for Flexi-BFT and Flexi-ZZ).
    // ------------------------------------------------------------------

    /// Validates and records a `PrePrepare`. Returns the accepted proposal
    /// when it is fresh and well-formed, `None` otherwise.
    ///
    /// The checks mirror lines 8–9 of Figures 3 and 4 in the paper: the
    /// message must come from the primary of the current view, carry a valid
    /// attestation from that primary's trusted component binding exactly this
    /// sequence number to exactly this batch digest, and be the first
    /// proposal this replica accepts for that sequence number.
    pub fn accept_preprepare(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        batch: Batch,
        attestation: Option<Attestation>,
    ) -> Option<AcceptedProposal> {
        if view != self.replica.view() || self.in_view_change {
            return None;
        }
        if from != self.replica.primary() {
            return None;
        }
        if seq <= self.replica.low_water_mark() {
            return None;
        }
        let attestation = attestation?;
        if attestation.host != from
            || attestation.value != seq.0
            || attestation.digest != batch.digest()
            || attestation.kind != AttestKind::CounterBind
            || self.registry.verify(&attestation).is_err()
        {
            return None;
        }
        if self.accepted.contains_key(&seq.0) {
            // Already accepted a k-th proposal from this primary.
            return None;
        }
        let proposal = AcceptedProposal {
            view,
            digest: batch.digest(),
            batch,
            attestation,
        };
        self.accepted.insert(seq.0, proposal.clone());
        Some(proposal)
    }

    // ------------------------------------------------------------------
    // Checkpoints.
    // ------------------------------------------------------------------

    /// Records a checkpoint vote and garbage-collects accepted proposals
    /// below the new stable checkpoint.
    pub fn on_checkpoint(&mut self, from: ReplicaId, seq: SeqNum, state_digest: Digest) {
        if let Some(stable) = self.replica.record_checkpoint_vote(from, seq, state_digest) {
            self.accepted.retain(|s, _| *s > stable.0);
        }
    }

    /// Serves a peer's `CheckpointRequest`: when this replica's stable
    /// checkpoint is past the requester's execution frontier, replies with
    /// the boundary snapshot plus every accepted-and-executed batch after
    /// it, so the requester can install the checkpoint and replay forward.
    pub fn on_checkpoint_request(
        &mut self,
        from: ReplicaId,
        last_executed: SeqNum,
        out: &mut Outbox,
    ) {
        let Some((seq, snapshot)) = self.replica.stable_checkpoint_snapshot(last_executed) else {
            return;
        };
        let frontier = self.replica.last_executed();
        let batches: Vec<(SeqNum, Batch)> = self
            .accepted
            .range(seq.0 + 1..)
            .filter(|(s, _)| SeqNum(**s) <= frontier)
            .map(|(s, accepted)| (SeqNum(*s), accepted.batch.clone()))
            .collect();
        out.send(
            from,
            Message::CheckpointState {
                seq,
                snapshot,
                batches,
            },
        );
    }

    /// Installs a peer's `CheckpointState` (the recovery rejoin path):
    /// adopts the snapshot when it is ahead of this replica, then replays
    /// the carried batches in order, emitting replies / checkpoints exactly
    /// as normal execution would. Returns `true` when the snapshot itself
    /// was installed (the caller may need to reset protocol-specific
    /// rollback state). Replayed batches are executed without re-recording
    /// acceptance — their attestations stayed with the serving peer.
    pub fn install_checkpoint_state(
        &mut self,
        seq: SeqNum,
        snapshot: &StateSnapshot,
        batches: Vec<(SeqNum, Batch)>,
        speculative: bool,
        out: &mut Outbox,
    ) -> bool {
        let installed = self.replica.install_checkpoint(seq, snapshot);
        if installed {
            self.accepted.retain(|s, _| *s > seq.0);
        }
        for (batch_seq, batch) in batches {
            if batch_seq <= self.replica.last_executed() {
                continue;
            }
            let executed = self
                .replica
                .commit_batch(batch_seq, batch, speculative, out);
            for done in executed {
                self.replica.maybe_emit_checkpoint(done.seq, out);
            }
        }
        installed
    }

    // ------------------------------------------------------------------
    // View changes (§8.2 / §8.3).
    // ------------------------------------------------------------------

    /// Broadcasts a `ViewChange` for the next view, carrying the supplied
    /// prepared/executed proofs.
    pub fn start_view_change(&mut self, prepared: Vec<PreparedProof>, out: &mut Outbox) {
        let target = self.replica.view().next();
        if target <= self.highest_vc_vote {
            return;
        }
        self.highest_vc_vote = target;
        self.in_view_change = true;
        out.broadcast(Message::ViewChange {
            new_view: target,
            last_stable: self.replica.low_water_mark(),
            prepared,
        });
        out.set_timer(TimerKind::ViewChange, self.replica.config().view_timeout_us);
    }

    /// Handles a `ViewChange` message.
    ///
    /// Every replica joins a view change once `f + 1` distinct replicas have
    /// demanded it; the designated new primary additionally gathers `2f + 1`
    /// votes, creates a fresh trusted counter positioned at the lowest
    /// re-proposed sequence number (the `Create(k)` function of §8.1), and
    /// re-proposes everything with fresh attestations. Returns the proposals
    /// that this replica (as the new primary) re-issued, so the caller can
    /// also apply them locally.
    #[allow(clippy::too_many_arguments)]
    pub fn on_view_change(
        &mut self,
        from: ReplicaId,
        new_view: View,
        last_stable: SeqNum,
        prepared: Vec<PreparedProof>,
        own_proofs: impl FnOnce(&Self) -> Vec<PreparedProof>,
        out: &mut Outbox,
    ) -> Vec<(SeqNum, Batch, Option<Attestation>)> {
        if new_view <= self.replica.view() {
            return Vec::new();
        }
        // Join rule (f + 1 demands ⇒ join).
        self.join_votes.vote(new_view, from);
        if self.join_votes.count(&new_view) >= self.replica.config().small_quorum()
            && new_view > self.highest_vc_vote
        {
            self.highest_vc_vote = new_view;
            self.in_view_change = true;
            let proofs = own_proofs(self);
            out.broadcast(Message::ViewChange {
                new_view,
                last_stable: self.replica.low_water_mark(),
                prepared: proofs,
            });
        }
        // Only the designated primary of `new_view` assembles the NewView.
        if new_view.primary(self.replica.config().n) != self.replica.id() {
            return Vec::new();
        }
        let quorum = self.replica.config().large_quorum();
        let planner = self
            .planners
            .entry(new_view.0)
            .or_insert_with(|| NewViewPlanner::new(new_view, quorum));
        let Some(plan) = planner.record_view_change(from, last_stable, prepared) else {
            return Vec::new();
        };
        // Become the primary of the new view.
        self.replica.enter_view(new_view);
        self.in_view_change = false;
        self.view_changes_completed += 1;
        // Create a fresh counter whose next AppendF value is the first
        // re-proposed sequence number, so sequence numbers are preserved
        // across views (§8.3).
        let (counter_id, counter_attestation) = self.enclave.create_counter(plan.stable_seq.0);
        self.counter_id = counter_id;
        let mut proposals = Vec::with_capacity(plan.proposals.len());
        for (seq, batch) in &plan.proposals {
            match self.enclave.append_f(self.counter_id, batch.digest()) {
                Ok((value, attestation)) => {
                    debug_assert_eq!(value, seq.0, "re-proposals must stay contiguous");
                    proposals.push((*seq, batch.clone(), Some(attestation)));
                }
                Err(_) => proposals.push((*seq, batch.clone(), None)),
            }
        }
        out.broadcast(Message::NewView {
            view: new_view,
            supporting_votes: plan.supporting_votes,
            proposals: proposals.clone(),
            counter_attestation: Some(counter_attestation),
        });
        out.cancel_timer(TimerKind::ViewChange);
        proposals
    }

    /// Validates a `NewView` announcement and, if acceptable, enters the new
    /// view and returns the proposals to adopt.
    pub fn on_new_view(
        &mut self,
        from: ReplicaId,
        view: View,
        supporting_votes: usize,
        proposals: Vec<(SeqNum, Batch, Option<Attestation>)>,
        counter_attestation: Option<Attestation>,
        out: &mut Outbox,
    ) -> Vec<(SeqNum, Batch, Option<Attestation>)> {
        let already_there = view == self.replica.view() && !self.in_view_change;
        if view < self.replica.view() || already_there {
            return Vec::new();
        }
        if from != view.primary(self.replica.config().n) {
            return Vec::new();
        }
        if supporting_votes < self.replica.config().large_quorum() {
            return Vec::new();
        }
        if let Some(att) = &counter_attestation {
            if self.registry.verify(att).is_err() || att.kind != AttestKind::CounterCreate {
                return Vec::new();
            }
        } else {
            return Vec::new();
        }
        self.replica.enter_view(view);
        self.in_view_change = false;
        self.view_changes_completed += 1;
        // Proposals from the old view are superseded by the new primary's
        // re-proposals.
        self.accepted
            .retain(|s, _| SeqNum(*s) <= self.replica.last_executed());
        out.cancel_timer(TimerKind::ViewChange);
        proposals
    }

    /// Builds prepared proofs from the accepted-proposal table; `executed_only`
    /// restricts them to slots this replica has executed (Flexi-ZZ) instead
    /// of every accepted slot (Flexi-BFT).
    pub fn proofs_from_accepted(&self, executed_only: bool) -> Vec<PreparedProof> {
        self.accepted
            .iter()
            .filter(|(seq, _)| !executed_only || self.replica.exec().is_executed(SeqNum(**seq)))
            .map(|(seq, accepted)| PreparedProof {
                view: accepted.view,
                seq: SeqNum(*seq),
                digest: accepted.digest,
                batch: accepted.batch.clone(),
                attestation: Some(accepted.attestation.clone()),
                prepare_votes: 0,
            })
            .collect()
    }
}

/// Builds one `FlexiCore` per replica of a deployment, sharing a counting
/// enclave registry; primarily a convenience for tests and harnesses.
pub fn build_cores(config: &SystemConfig) -> Vec<FlexiCore> {
    use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig};
    let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Counting);
    (0..config.n)
        .map(|i| {
            let id = ReplicaId(i as u32);
            let enclave =
                Enclave::shared(EnclaveConfig::counter_only(id, AttestationMode::Counting));
            FlexiCore::new(config.clone(), id, enclave, registry.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_crypto::make_batch;
    use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig};
    use flexitrust_types::{ClientId, KvOp, ProtocolId, RequestId};

    fn config() -> SystemConfig {
        let mut cfg = SystemConfig::for_protocol(ProtocolId::FlexiBft, 1);
        cfg.batch_size = 1;
        cfg
    }

    fn txn(i: u64) -> Transaction {
        Transaction::new(ClientId(1), RequestId(i), KvOp::Read { key: i })
    }

    #[test]
    fn primary_proposes_with_contiguous_counter_values() {
        let mut cores = build_cores(&config());
        let mut out = Outbox::new();
        cores[0].enqueue(vec![txn(1), txn(2), txn(3)], &mut out);
        let seqs: Vec<u64> = out
            .broadcasts()
            .iter()
            .filter_map(|m| m.seq().map(|s| s.0))
            .collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(cores[0].enclave().stats().snapshot().counter_append_fs, 3);
        assert_eq!(cores[0].outstanding(), 3);
    }

    #[test]
    fn backups_never_touch_their_enclave_on_acceptance() {
        let mut cores = build_cores(&config());
        let mut out = Outbox::new();
        cores[0].enqueue(vec![txn(1)], &mut out);
        let Message::PrePrepare {
            view,
            seq,
            batch,
            attestation,
        } = out.broadcasts()[0].clone()
        else {
            panic!("expected a PrePrepare");
        };
        let accepted = cores[1].accept_preprepare(ReplicaId(0), view, seq, batch, attestation);
        assert!(accepted.is_some());
        assert_eq!(cores[1].enclave().stats().snapshot().total_accesses(), 0);
    }

    #[test]
    fn acceptance_rejects_bad_attestations() {
        let cfg = config();
        let mut cores = build_cores(&cfg);
        let mut out = Outbox::new();
        cores[0].enqueue(vec![txn(1)], &mut out);
        let Message::PrePrepare {
            view,
            seq,
            batch,
            attestation,
        } = out.broadcasts()[0].clone()
        else {
            panic!("expected a PrePrepare");
        };
        let att = attestation.unwrap();

        // Missing attestation.
        assert!(cores[1]
            .accept_preprepare(ReplicaId(0), view, seq, batch.clone(), None)
            .is_none());
        // Attestation bound to a different sequence number.
        let mut wrong_seq = att.clone();
        wrong_seq.value = 9;
        assert!(cores[1]
            .accept_preprepare(
                ReplicaId(0),
                view,
                SeqNum(9),
                batch.clone(),
                Some(wrong_seq)
            )
            .is_none());
        // Attestation bound to a different batch.
        let other_batch = make_batch(vec![txn(2)]);
        assert!(cores[1]
            .accept_preprepare(ReplicaId(0), view, seq, other_batch, Some(att.clone()))
            .is_none());
        // From a replica that is not the primary.
        assert!(cores[2]
            .accept_preprepare(ReplicaId(1), view, seq, batch.clone(), Some(att.clone()))
            .is_none());
        // The genuine proposal is still acceptable exactly once.
        assert!(cores[1]
            .accept_preprepare(ReplicaId(0), view, seq, batch.clone(), Some(att.clone()))
            .is_some());
        assert!(cores[1]
            .accept_preprepare(ReplicaId(0), view, seq, batch, Some(att))
            .is_none());
    }

    #[test]
    fn forged_attestation_from_host_key_is_rejected() {
        // Even in Real mode a Byzantine primary cannot fabricate an
        // attestation with its replica key; FlexiCore must reject it.
        let mut cfg = SystemConfig::for_protocol(ProtocolId::FlexiBft, 1);
        cfg.batch_size = 1;
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Real);
        let enclave = Enclave::shared(EnclaveConfig::counter_only(
            ReplicaId(1),
            AttestationMode::Real,
        ));
        let mut backup = FlexiCore::new(cfg, ReplicaId(1), enclave, registry);
        let batch = make_batch(vec![txn(1)]);
        let forged = Attestation {
            host: ReplicaId(0),
            counter: 0,
            value: 1,
            digest: batch.digest(),
            kind: AttestKind::CounterBind,
            signature: flexitrust_crypto::Signature::zero(),
        };
        assert!(backup
            .accept_preprepare(ReplicaId(0), View(0), SeqNum(1), batch, Some(forged))
            .is_none());
    }

    #[test]
    fn view_change_creates_a_fresh_counter_and_reproposes_contiguously() {
        let cfg = config();
        let mut cores = build_cores(&cfg);
        // The primary proposed three batches; replica 1 accepted them all.
        let mut out = Outbox::new();
        cores[0].enqueue(vec![txn(1), txn(2), txn(3)], &mut out);
        let preprepares: Vec<Message> = out.broadcasts().into_iter().cloned().collect();
        for msg in &preprepares {
            if let Message::PrePrepare {
                view,
                seq,
                batch,
                attestation,
            } = msg.clone()
            {
                cores[1].accept_preprepare(ReplicaId(0), view, seq, batch, attestation);
            }
        }
        // Replica 1 is the primary of view 1; feed it 2f + 1 ViewChange
        // messages (one carries the accepted proposals).
        let proofs = cores[1].proofs_from_accepted(false);
        assert_eq!(proofs.len(), 3);
        let mut out = Outbox::new();
        let mut reproposed = Vec::new();
        for (i, sender) in [0u32, 2, 3].iter().enumerate() {
            let prepared = if i == 0 { proofs.clone() } else { Vec::new() };
            reproposed = cores[1].on_view_change(
                ReplicaId(*sender),
                View(1),
                SeqNum(0),
                prepared,
                |core| core.proofs_from_accepted(false),
                &mut out,
            );
        }
        assert_eq!(reproposed.len(), 3);
        let seqs: Vec<u64> = reproposed.iter().map(|(s, _, _)| s.0).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert!(reproposed.iter().all(|(_, _, a)| a.is_some()));
        assert_eq!(cores[1].replica.view(), View(1));
        assert!(cores[1].replica.is_primary());
        // The NewView carries a counter-creation attestation.
        let new_view = out
            .broadcasts()
            .into_iter()
            .find(|m| m.kind() == "NewView")
            .cloned()
            .unwrap();
        match new_view {
            Message::NewView {
                counter_attestation,
                supporting_votes,
                ..
            } => {
                assert!(counter_attestation.is_some());
                assert_eq!(supporting_votes, 3);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn new_view_without_counter_attestation_is_rejected() {
        let cfg = config();
        let mut cores = build_cores(&cfg);
        let mut out = Outbox::new();
        let adopted = cores[2].on_new_view(
            ReplicaId(1),
            View(1),
            3,
            vec![(SeqNum(1), Batch::noop(1), None)],
            None,
            &mut out,
        );
        assert!(adopted.is_empty());
        assert_eq!(cores[2].replica.view(), View(0));
    }
}
