//! Flexi-BFT: the two-phase FlexiTrust protocol (Figure 3 of the paper).
//!
//! Flexi-BFT is the FlexiTrust conversion of MinBFT (and, transitively, of
//! PBFT): the primary binds each batch to its trusted counter with `AppendF`
//! and broadcasts an attested `PrePrepare`; a backup that accepts the
//! proposal marks it *prepared* immediately (the attestation already rules
//! out equivocation, so PBFT's extra round is unnecessary) and broadcasts a
//! plain `Prepare`; a replica that collects `2f + 1` matching `Prepare`
//! messages marks the batch *committed* and executes it in sequence order;
//! the client completes with `f + 1` matching replies.
//!
//! Compared with MinBFT, moving back to `n = 3f + 1` with `2f + 1` quorums
//! restores client responsiveness (§5), reduces trusted-component usage to
//! one access per consensus at the primary only (§6, G2), and lets the
//! primary keep many consensus instances in flight concurrently (§7, G1).
//! The sequential ablation `oFlexi-BFT` of Figure 6(i) is this same engine
//! with the in-flight window forced to one ([`FlexiBft::sequential`]).

use crate::common::FlexiCore;
use flexitrust_protocol::{
    CertificateTracker, ConsensusEngine, Message, Outbox, ProtocolProperties, TimerKind,
};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{Digest, ProtocolId, ReplicaId, SeqNum, SystemConfig, Transaction, View};
use std::sync::Arc;

/// A Flexi-BFT replica engine.
pub struct FlexiBft {
    sequential: bool,
    flexi: FlexiCore,
    prepare_votes: CertificateTracker<(View, SeqNum, Digest)>,
    prepare_sent: std::collections::BTreeSet<u64>,
    committed: std::collections::BTreeSet<u64>,
}

impl FlexiBft {
    /// The default configuration for fault threshold `f` (`n = 3f + 1`).
    pub fn config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::FlexiBft, f)
    }

    /// The configuration of the sequential ablation `oFlexi-BFT`.
    pub fn sequential_config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::OFlexiBft, f)
    }

    /// The counter-only enclave Flexi-BFT expects at each replica.
    pub fn enclave(id: ReplicaId, mode: AttestationMode) -> SharedEnclave {
        Enclave::shared(EnclaveConfig::counter_only(id, mode))
    }

    /// Creates the engine for replica `id`.
    pub fn new(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> Self {
        let config = config.into();
        let prepare_quorum = config.large_quorum();
        let sequential = config.protocol == ProtocolId::OFlexiBft || config.max_in_flight == 1;
        FlexiBft {
            sequential,
            prepare_votes: CertificateTracker::new(prepare_quorum),
            prepare_sent: std::collections::BTreeSet::new(),
            committed: std::collections::BTreeSet::new(),
            flexi: FlexiCore::new(config, id, enclave, registry),
        }
    }

    /// Creates the sequential ablation (`oFlexi-BFT`) engine for replica `id`.
    pub fn sequential(
        f: usize,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> Self {
        Self::new(Self::sequential_config(f), id, enclave, registry)
    }

    /// Shared FlexiTrust state (exposed for tests and attack harnesses).
    pub fn flexi(&self) -> &FlexiCore {
        &self.flexi
    }

    /// Whether this engine runs the sequential (`oFlexi-BFT`) ablation.
    pub fn is_sequential(&self) -> bool {
        self.sequential
    }

    fn on_preprepare(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        batch: flexitrust_types::Batch,
        attestation: Option<flexitrust_trusted::Attestation>,
        out: &mut Outbox,
    ) {
        let Some(accepted) = self
            .flexi
            .accept_preprepare(from, view, seq, batch, attestation)
        else {
            return;
        };
        // The attested proposal is already "prepared" in the PBFT sense; one
        // round of Prepare votes is enough to commit (Figure 3, line 9).
        if self.prepare_sent.insert(seq.0) {
            out.broadcast(Message::Prepare {
                view,
                seq,
                digest: accepted.digest,
                attestation: None,
            });
        }
    }

    fn on_prepare(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        digest: Digest,
        out: &mut Outbox,
    ) {
        if view != self.flexi.replica.view() || self.flexi.in_view_change() {
            return;
        }
        if !self.prepare_votes.vote((view, seq, digest), from) {
            return;
        }
        self.try_commit(seq, digest, out);
    }

    fn try_commit(&mut self, seq: SeqNum, digest: Digest, out: &mut Outbox) {
        if self.committed.contains(&seq.0) {
            return;
        }
        let Some(accepted) = self.flexi.accepted(seq) else {
            return;
        };
        if accepted.digest != digest {
            return;
        }
        let batch = accepted.batch.clone();
        self.committed.insert(seq.0);
        let executed = self.flexi.replica.commit_batch(seq, batch, false, out);
        for done in executed {
            self.flexi.replica.maybe_emit_checkpoint(done.seq, out);
            self.flexi.instance_finished(done.seq, out);
        }
    }

    fn adopt_proposals(
        &mut self,
        from: ReplicaId,
        view: View,
        proposals: Vec<(
            SeqNum,
            flexitrust_types::Batch,
            Option<flexitrust_trusted::Attestation>,
        )>,
        out: &mut Outbox,
    ) {
        for (seq, batch, attestation) in proposals {
            if self.flexi.replica.exec().is_executed(seq) {
                continue;
            }
            self.on_preprepare(from, view, seq, batch, attestation, out);
        }
    }
}

impl ConsensusEngine for FlexiBft {
    fn config(&self) -> &SystemConfig {
        self.flexi.replica.config()
    }

    fn id(&self) -> ReplicaId {
        self.flexi.replica.id()
    }

    fn properties(&self) -> ProtocolProperties {
        ProtocolProperties::for_protocol(if self.sequential {
            ProtocolId::OFlexiBft
        } else {
            ProtocolId::FlexiBft
        })
    }

    fn on_client_request(&mut self, txns: Vec<Transaction>, out: &mut Outbox) {
        if self.flexi.replica.is_primary() {
            self.flexi.enqueue(txns, out);
        } else {
            let primary = self.flexi.replica.primary();
            out.send(primary, Message::ForwardRequest { txns });
        }
    }

    fn on_message(&mut self, from: ReplicaId, msg: Message, out: &mut Outbox) {
        if !self.flexi.replica.config().contains(from) {
            return;
        }
        match msg {
            Message::PrePrepare {
                view,
                seq,
                batch,
                attestation,
            } => self.on_preprepare(from, view, seq, batch, attestation, out),
            Message::Prepare {
                view, seq, digest, ..
            } => self.on_prepare(from, view, seq, digest, out),
            Message::Commit { .. } => {
                // Flexi-BFT has no commit phase; ignore stray messages.
            }
            Message::Checkpoint {
                seq, state_digest, ..
            } => self.flexi.on_checkpoint(from, seq, state_digest),
            Message::ViewChange {
                new_view,
                last_stable,
                prepared,
            } => {
                let self_id = self.flexi.replica.id();
                let reproposed = self.flexi.on_view_change(
                    from,
                    new_view,
                    last_stable,
                    prepared,
                    |core| core.proofs_from_accepted(false),
                    out,
                );
                self.adopt_proposals(self_id, new_view, reproposed, out);
            }
            Message::NewView {
                view,
                supporting_votes,
                proposals,
                counter_attestation,
            } => {
                let adopted = self.flexi.on_new_view(
                    from,
                    view,
                    supporting_votes,
                    proposals,
                    counter_attestation,
                    out,
                );
                self.adopt_proposals(from, view, adopted, out);
            }
            Message::ClientRetry { txn } => {
                if let Some(reply) = self.flexi.replica.cached_reply(txn.client(), txn.request()) {
                    out.reply(reply.clone());
                } else if self.flexi.replica.is_primary() {
                    self.flexi.enqueue(vec![txn], out);
                } else {
                    let primary = self.flexi.replica.primary();
                    out.send(primary, Message::ForwardRequest { txns: vec![txn] });
                    out.set_timer(
                        TimerKind::ViewChange,
                        self.flexi.replica.config().view_timeout_us,
                    );
                }
            }
            Message::ForwardRequest { txns } => {
                if self.flexi.replica.is_primary() {
                    self.flexi.enqueue(txns, out);
                }
            }
            Message::CheckpointRequest { last_executed } => {
                self.flexi.on_checkpoint_request(from, last_executed, out);
            }
            Message::CheckpointState {
                seq,
                snapshot,
                batches,
            } => {
                if self
                    .flexi
                    .install_checkpoint_state(seq, &snapshot, batches, false, out)
                {
                    // Committed/prepared bookkeeping below the installed
                    // checkpoint is superseded by the transferred state.
                    self.committed.retain(|s| *s > seq.0);
                    self.prepare_sent.retain(|s| *s > seq.0);
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerKind, out: &mut Outbox) {
        match timer {
            TimerKind::BatchFlush => self.flexi.flush_batch(out),
            TimerKind::ViewChange | TimerKind::RequestForwarded(_) => {
                let proofs = self.flexi.proofs_from_accepted(false);
                self.flexi.start_view_change(proofs, out);
            }
            TimerKind::Checkpoint => {}
        }
    }

    fn view(&self) -> View {
        self.flexi.replica.view()
    }

    fn last_executed(&self) -> SeqNum {
        self.flexi.replica.last_executed()
    }

    fn executed_txns(&self) -> u64 {
        self.flexi.replica.executed_txns()
    }

    fn state_digest(&self) -> Option<Digest> {
        Some(self.flexi.replica.state_digest())
    }
}

/// Builds a full Flexi-BFT cluster (engine per replica) over counting-mode
/// enclaves; used by tests, examples and the simulator registry.
pub fn build_cluster(config: &SystemConfig) -> Vec<FlexiBft> {
    let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Counting);
    (0..config.n)
        .map(|i| {
            let id = ReplicaId(i as u32);
            FlexiBft::new(
                config.clone(),
                id,
                FlexiBft::enclave(id, AttestationMode::Counting),
                registry.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{ClientId, KvOp, QuorumRule, RequestId};

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| {
                Transaction::new(
                    ClientId(1),
                    RequestId(i as u64 + 1),
                    KvOp::Update {
                        key: i as u64,
                        value: vec![9].into(),
                    },
                )
            })
            .collect()
    }

    /// Deliver all queued messages between engines until quiescence.
    fn run(engines: &mut [FlexiBft], inject: Vec<(usize, Vec<Transaction>)>) {
        let n = engines.len();
        let mut queues: Vec<Vec<(ReplicaId, Message)>> = vec![Vec::new(); n];
        let route = |from: ReplicaId,
                     actions: Vec<flexitrust_protocol::Action>,
                     queues: &mut Vec<Vec<(ReplicaId, Message)>>| {
            for a in actions {
                match a {
                    flexitrust_protocol::Action::Send { to, msg } => {
                        queues[to.as_usize()].push((from, msg))
                    }
                    flexitrust_protocol::Action::Broadcast { msg } => {
                        for q in queues.iter_mut() {
                            q.push((from, msg.clone()));
                        }
                    }
                    _ => {}
                }
            }
        };
        for (target, t) in inject {
            let mut out = Outbox::new();
            engines[target].on_client_request(t, &mut out);
            route(engines[target].id(), out.drain(), &mut queues);
        }
        for _ in 0..300 {
            let mut any = false;
            for i in 0..n {
                for (from, msg) in std::mem::take(&mut queues[i]) {
                    any = true;
                    let mut out = Outbox::new();
                    engines[i].on_message(from, msg, &mut out);
                    route(engines[i].id(), out.drain(), &mut queues);
                }
            }
            if !any {
                break;
            }
        }
    }

    #[test]
    fn cluster_commits_in_two_phases_with_2f_plus_1_quorums() {
        let mut cfg = FlexiBft::config(1);
        cfg.batch_size = 2;
        let mut engines = build_cluster(&cfg);
        run(&mut engines, vec![(0, txns(4))]);
        for e in &engines {
            assert_eq!(e.last_executed(), SeqNum(2), "replica {}", e.id());
            assert_eq!(e.executed_txns(), 4);
        }
    }

    #[test]
    fn only_the_primary_accesses_its_trusted_counter() {
        let mut cfg = FlexiBft::config(1);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        run(&mut engines, vec![(0, txns(5))]);
        let primary_accesses = engines[0].flexi().enclave().stats().snapshot();
        assert_eq!(primary_accesses.counter_append_fs, 5);
        for e in &engines[1..] {
            assert_eq!(
                e.flexi().enclave().stats().snapshot().total_accesses(),
                0,
                "backup {} must not touch its enclave",
                e.id()
            );
        }
    }

    #[test]
    fn parallel_instances_are_in_flight_simultaneously() {
        let mut cfg = FlexiBft::config(1);
        cfg.batch_size = 1;
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        let mut primary = FlexiBft::new(
            cfg.clone(),
            ReplicaId(0),
            FlexiBft::enclave(ReplicaId(0), AttestationMode::Counting),
            registry,
        );
        let mut out = Outbox::new();
        primary.on_client_request(txns(10), &mut out);
        // All ten proposals go out before any commit, i.e. ten instances are
        // outstanding concurrently (G1).
        assert_eq!(primary.flexi().outstanding(), 10);
        assert_eq!(out.broadcasts().len(), 10);
    }

    #[test]
    fn sequential_ablation_proposes_one_instance_at_a_time() {
        let registry = EnclaveRegistry::deterministic(4, AttestationMode::Counting);
        let mut cfg = FlexiBft::sequential_config(1);
        cfg.batch_size = 1;
        let mut primary = FlexiBft::new(
            cfg,
            ReplicaId(0),
            FlexiBft::enclave(ReplicaId(0), AttestationMode::Counting),
            registry,
        );
        assert!(primary.is_sequential());
        let mut out = Outbox::new();
        primary.on_client_request(txns(10), &mut out);
        assert_eq!(primary.flexi().outstanding(), 1);
        assert_eq!(out.broadcasts().len(), 1);
    }

    #[test]
    fn client_reply_rule_is_f_plus_1() {
        let engines = build_cluster(&FlexiBft::config(2));
        assert_eq!(engines[0].properties().reply_quorum, QuorumRule::FPlusOne);
        assert_eq!(engines[0].properties().phases, 2);
        assert!(engines[0].properties().primary_only_tc);
    }

    #[test]
    fn commit_requires_2f_plus_1_prepares() {
        let mut cfg = FlexiBft::config(1);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        // Hand-deliver the proposal to replica 1 and only two Prepare votes:
        // not enough (2f + 1 = 3).
        let mut out = Outbox::new();
        engines[0].on_client_request(txns(1), &mut out);
        let preprepare = out.broadcasts()[0].clone();
        let digest = match &preprepare {
            Message::PrePrepare { batch, .. } => batch.digest(),
            _ => unreachable!(),
        };
        let mut out = Outbox::new();
        engines[1].on_message(ReplicaId(0), preprepare, &mut out);
        for voter in [1u32, 2] {
            let mut out = Outbox::new();
            engines[1].on_message(
                ReplicaId(voter),
                Message::Prepare {
                    view: View(0),
                    seq: SeqNum(1),
                    digest,
                    attestation: None,
                },
                &mut out,
            );
        }
        assert_eq!(engines[1].last_executed(), SeqNum(0));
        // The third distinct vote commits.
        let mut out = Outbox::new();
        engines[1].on_message(
            ReplicaId(3),
            Message::Prepare {
                view: View(0),
                seq: SeqNum(1),
                digest,
                attestation: None,
            },
            &mut out,
        );
        assert_eq!(engines[1].last_executed(), SeqNum(1));
        assert_eq!(out.replies().len(), 1);
        assert!(!out.replies()[0].speculative);
    }

    #[test]
    fn view_change_preserves_accepted_batches() {
        let mut cfg = FlexiBft::config(1);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        run(&mut engines, vec![(0, txns(3))]);
        // Everyone executed 3 batches in view 0. Now the primary goes silent
        // and the backups time out.
        let n = engines.len();
        let mut queues: Vec<Vec<(ReplicaId, Message)>> = vec![Vec::new(); n];
        for engine in engines.iter_mut().skip(1) {
            let mut out = Outbox::new();
            engine.on_timer(TimerKind::ViewChange, &mut out);
            for a in out.drain() {
                if let flexitrust_protocol::Action::Broadcast { msg } = a {
                    for q in queues.iter_mut() {
                        q.push((engine.id(), msg.clone()));
                    }
                }
            }
        }
        for _ in 0..100 {
            let mut any = false;
            for i in 0..n {
                for (from, msg) in std::mem::take(&mut queues[i]) {
                    any = true;
                    let mut out = Outbox::new();
                    engines[i].on_message(from, msg, &mut out);
                    for a in out.drain() {
                        match a {
                            flexitrust_protocol::Action::Broadcast { msg } => {
                                for q in queues.iter_mut() {
                                    q.push((engines[i].id(), msg.clone()));
                                }
                            }
                            flexitrust_protocol::Action::Send { to, msg } => {
                                queues[to.as_usize()].push((engines[i].id(), msg));
                            }
                            _ => {}
                        }
                    }
                }
            }
            if !any {
                break;
            }
        }
        // The backups are now in view 1 with replica 1 as primary, and the
        // previously executed state is intact.
        for e in engines.iter().skip(1) {
            assert_eq!(e.view(), View(1), "replica {}", e.id());
            assert_eq!(e.last_executed(), SeqNum(3));
        }
        assert!(engines[1].is_primary());
    }
}
