//! The FlexiTrust protocol suite — the paper's contribution.
//!
//! Section 8 of the paper argues that trusted components pay off only when
//! combined with `3f + 1` replicas, and derives a recipe for converting any
//! trust-bft protocol into a *FlexiTrust* protocol:
//!
//! 1. **Restrict `Append`** to the internally-incrementing `AppendF`
//!    ([`flexitrust_trusted::CounterSet::append_f`]) so counter values stay
//!    contiguous and a Byzantine primary cannot open far-future gaps.
//! 2. **Access the trusted component only at the primary**, once per
//!    consensus: backups merely verify the attestation's signature.
//! 3. **Use `2f + 1` quorums over `3f + 1` replicas**, so every quorum
//!    contains an honest replica and equivocation is impossible even without
//!    per-message attestations — restoring client responsiveness (§5),
//!    removing the trusted-logging memory cost, shrinking the rollback
//!    window to one access per consensus (§6) and enabling parallel
//!    consensus invocations (§7).
//!
//! Two conversions are provided, exactly as in the paper:
//!
//! * [`FlexiBft`](flexi_bft::FlexiBft) — derived from MinBFT/PBFT: two
//!   phases (`PrePrepare`, `Prepare`), commit at `2f + 1` `Prepare` votes,
//!   clients need `f + 1` matching replies.
//! * [`FlexiZz`](flexi_zz::FlexiZz) — derived from MinZZ/Zyzzyva: a single
//!   speculative phase, clients need `2f + 1` matching replies, and —
//!   unlike Zyzzyva/MinZZ — the fast path survives up to `f` unresponsive
//!   replicas (Figure 7) and the view change stays simple.
//!
//! The sequential ablations `oFlexi-BFT` / `oFlexi-ZZ` used in Figure 6(i)
//! are the same engines constructed with parallelism disabled
//! ([`flexi_bft::FlexiBft::sequential`], [`flexi_zz::FlexiZz::sequential`]).

pub mod common;
pub mod flexi_bft;
pub mod flexi_zz;

pub use common::FlexiCore;
pub use flexi_bft::FlexiBft;
pub use flexi_zz::FlexiZz;
