//! Flexi-ZZ: the single-phase speculative FlexiTrust protocol (Figure 4).
//!
//! Flexi-ZZ is the FlexiTrust conversion of MinZZ (and, transitively, of
//! Zyzzyva): the primary binds each batch to its trusted counter with
//! `AppendF` and broadcasts the attested `PrePrepare`; every replica that
//! accepts the proposal executes it speculatively, in sequence order, and
//! replies directly to the client; the client completes with `2f + 1`
//! matching replies out of `3f + 1` replicas.
//!
//! Three properties distinguish it from Zyzzyva/MinZZ (§8.3):
//!
//! * The fast path only needs `n − f` replies, so it survives up to `f`
//!   unresponsive replicas without falling back to a slower path
//!   (Figure 7).
//! * One trusted-counter access per consensus, at the primary only.
//! * A simple view change: an unhappy client re-broadcasts its transaction;
//!   replicas answer from their reply cache or forward it to the primary
//!   and start a timer; on expiry they vote for a view change, and the new
//!   primary creates a fresh counter (`Create`) and re-proposes, in order,
//!   everything that may have committed, filling gaps with no-ops.
//!   Requests executed by fewer than `2f + 1` replicas may be dropped, in
//!   which case those replicas roll back — which is safe precisely because
//!   no client can have completed such a request.

use crate::common::FlexiCore;
use flexitrust_crypto::digest_transaction;
use flexitrust_exec::KvStore;
use flexitrust_protocol::{ConsensusEngine, Message, Outbox, ProtocolProperties, TimerKind};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{Batch, ProtocolId, ReplicaId, SeqNum, SystemConfig, Transaction, View};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A Flexi-ZZ replica engine.
pub struct FlexiZz {
    sequential: bool,
    flexi: FlexiCore,
    /// Transactions forwarded to the primary on behalf of a retrying client,
    /// keyed by the timer tag derived from the transaction digest.
    forwarded: BTreeMap<u64, Transaction>,
    /// Store snapshot at the last stable checkpoint, used to roll back
    /// speculative execution when a view change drops a suffix of the log.
    rollback_point: (SeqNum, KvStore),
}

impl FlexiZz {
    /// The default configuration for fault threshold `f` (`n = 3f + 1`).
    pub fn config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::FlexiZz, f)
    }

    /// The configuration of the sequential ablation `oFlexi-ZZ`.
    pub fn sequential_config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::OFlexiZz, f)
    }

    /// The counter-only enclave Flexi-ZZ expects at each replica.
    pub fn enclave(id: ReplicaId, mode: AttestationMode) -> SharedEnclave {
        Enclave::shared(EnclaveConfig::counter_only(id, mode))
    }

    /// Creates the engine for replica `id`.
    pub fn new(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> Self {
        let config = config.into();
        let sequential = config.protocol == ProtocolId::OFlexiZz || config.max_in_flight == 1;
        FlexiZz {
            sequential,
            flexi: FlexiCore::new(config, id, enclave, registry),
            forwarded: BTreeMap::new(),
            rollback_point: (SeqNum(0), KvStore::new()),
        }
    }

    /// Creates the sequential ablation (`oFlexi-ZZ`) engine for replica `id`.
    pub fn sequential(
        f: usize,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> Self {
        Self::new(Self::sequential_config(f), id, enclave, registry)
    }

    /// Shared FlexiTrust state (exposed for tests and attack harnesses).
    pub fn flexi(&self) -> &FlexiCore {
        &self.flexi
    }

    /// Whether this engine runs the sequential (`oFlexi-ZZ`) ablation.
    pub fn is_sequential(&self) -> bool {
        self.sequential
    }

    fn on_preprepare(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        batch: Batch,
        attestation: Option<flexitrust_trusted::Attestation>,
        out: &mut Outbox,
    ) {
        let Some(accepted) = self
            .flexi
            .accept_preprepare(from, view, seq, batch, attestation)
        else {
            return;
        };
        // Cancel any pending forwarded-request timers satisfied by this batch.
        for txn in accepted.batch.txns() {
            let tag = forwarded_tag(txn);
            if self.forwarded.remove(&tag).is_some() {
                out.cancel_timer(TimerKind::RequestForwarded(tag));
            }
        }
        // Execute speculatively, in sequence order (Figure 4, Execute()).
        let executed = self
            .flexi
            .replica
            .commit_batch(seq, accepted.batch, true, out);
        for done in executed {
            self.flexi.replica.maybe_emit_checkpoint(done.seq, out);
            self.flexi.instance_finished(done.seq, out);
        }
    }

    fn on_client_retry(&mut self, txn: Transaction, out: &mut Outbox) {
        // (1) Already executed? Answer from the reply cache.
        if let Some(reply) = self.flexi.replica.cached_reply(txn.client(), txn.request()) {
            out.reply(reply.clone());
            return;
        }
        if self.flexi.replica.is_primary() {
            self.flexi.enqueue(vec![txn], out);
            return;
        }
        // (2) Forward to the primary and start a timer; if no PrePrepare for
        // this transaction arrives before it expires, suspect the primary.
        let tag = forwarded_tag(&txn);
        self.forwarded.insert(tag, txn.clone());
        let primary = self.flexi.replica.primary();
        out.send(primary, Message::ForwardRequest { txns: vec![txn] });
        out.set_timer(
            TimerKind::RequestForwarded(tag),
            self.flexi.replica.config().view_timeout_us,
        );
    }

    fn adopt_proposals(
        &mut self,
        from: ReplicaId,
        view: View,
        proposals: Vec<(SeqNum, Batch, Option<flexitrust_trusted::Attestation>)>,
        out: &mut Outbox,
    ) {
        if proposals.is_empty() {
            return;
        }
        // Speculatively executed slots that the new view does not re-propose
        // (or re-proposes differently) must be rolled back before adopting
        // the new history (§8.3: "may force some replicas to rollback").
        let first = proposals[0].0;
        if self.flexi.replica.last_executed() >= first {
            let mismatch = proposals.iter().any(|(seq, batch, _)| {
                self.flexi.replica.exec().is_executed(*seq)
                    && self
                        .flexi
                        .accepted(*seq)
                        .map(|a| a.digest != batch.digest())
                        .unwrap_or(false)
            });
            let overshoot =
                self.flexi.replica.last_executed() >= SeqNum(first.0 + proposals.len() as u64);
            if mismatch || overshoot {
                let (seq, store) = self.rollback_point.clone();
                self.flexi.replica.exec_mut().rollback_to(seq, store);
            }
        }
        for (seq, batch, attestation) in proposals {
            if self.flexi.replica.exec().is_executed(seq) {
                continue;
            }
            self.on_preprepare(from, view, seq, batch, attestation, out);
        }
    }
}

/// Timer tag for a forwarded client transaction.
fn forwarded_tag(txn: &Transaction) -> u64 {
    let digest = digest_transaction(txn);
    u64::from_le_bytes(
        digest.as_bytes()[..8]
            .try_into()
            .expect("digest is 32 bytes"),
    )
}

impl ConsensusEngine for FlexiZz {
    fn config(&self) -> &SystemConfig {
        self.flexi.replica.config()
    }

    fn id(&self) -> ReplicaId {
        self.flexi.replica.id()
    }

    fn properties(&self) -> ProtocolProperties {
        ProtocolProperties::for_protocol(if self.sequential {
            ProtocolId::OFlexiZz
        } else {
            ProtocolId::FlexiZz
        })
    }

    fn on_client_request(&mut self, txns: Vec<Transaction>, out: &mut Outbox) {
        if self.flexi.replica.is_primary() {
            self.flexi.enqueue(txns, out);
        } else {
            let primary = self.flexi.replica.primary();
            out.send(primary, Message::ForwardRequest { txns });
        }
    }

    fn on_message(&mut self, from: ReplicaId, msg: Message, out: &mut Outbox) {
        if !self.flexi.replica.config().contains(from) {
            return;
        }
        match msg {
            Message::PrePrepare {
                view,
                seq,
                batch,
                attestation,
            } => self.on_preprepare(from, view, seq, batch, attestation, out),
            Message::Prepare { .. } | Message::Commit { .. } => {
                // Flexi-ZZ's common case has no voting phases.
            }
            Message::Checkpoint {
                seq, state_digest, ..
            } => {
                let before = self.flexi.replica.low_water_mark();
                self.flexi.on_checkpoint(from, seq, state_digest);
                let after = self.flexi.replica.low_water_mark();
                if after > before {
                    // The stable checkpoint is the new speculative rollback
                    // point: everything at or below it is durable.
                    self.rollback_point = (after, self.flexi.replica.exec().store().clone());
                }
            }
            Message::ViewChange {
                new_view,
                last_stable,
                prepared,
            } => {
                let self_id = self.flexi.replica.id();
                let reproposed = self.flexi.on_view_change(
                    from,
                    new_view,
                    last_stable,
                    prepared,
                    |core| core.proofs_from_accepted(true),
                    out,
                );
                self.adopt_proposals(self_id, new_view, reproposed, out);
            }
            Message::NewView {
                view,
                supporting_votes,
                proposals,
                counter_attestation,
            } => {
                let adopted = self.flexi.on_new_view(
                    from,
                    view,
                    supporting_votes,
                    proposals,
                    counter_attestation,
                    out,
                );
                self.adopt_proposals(from, view, adopted, out);
            }
            Message::ClientRetry { txn } => self.on_client_retry(txn, out),
            Message::ForwardRequest { txns } => {
                if self.flexi.replica.is_primary() {
                    self.flexi.enqueue(txns, out);
                }
            }
            Message::CheckpointRequest { last_executed } => {
                self.flexi.on_checkpoint_request(from, last_executed, out);
            }
            Message::CheckpointState {
                seq,
                snapshot,
                batches,
            } => {
                if self
                    .flexi
                    .install_checkpoint_state(seq, &snapshot, batches, true, out)
                {
                    // The installed checkpoint is durable: it becomes the
                    // new speculative rollback point.
                    self.rollback_point = (seq, self.flexi.replica.exec().store().clone());
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerKind, out: &mut Outbox) {
        match timer {
            TimerKind::BatchFlush => self.flexi.flush_batch(out),
            TimerKind::RequestForwarded(tag) => {
                // The primary never proposed the forwarded transaction:
                // suspect it (Figure 4 view-change trigger).
                if self.forwarded.remove(&tag).is_some() {
                    let proofs = self.flexi.proofs_from_accepted(true);
                    self.flexi.start_view_change(proofs, out);
                }
            }
            TimerKind::ViewChange => {
                let proofs = self.flexi.proofs_from_accepted(true);
                self.flexi.start_view_change(proofs, out);
            }
            TimerKind::Checkpoint => {}
        }
    }

    fn view(&self) -> View {
        self.flexi.replica.view()
    }

    fn last_executed(&self) -> SeqNum {
        self.flexi.replica.last_executed()
    }

    fn executed_txns(&self) -> u64 {
        self.flexi.replica.executed_txns()
    }

    fn state_digest(&self) -> Option<flexitrust_types::Digest> {
        Some(self.flexi.replica.state_digest())
    }
}

/// Builds a full Flexi-ZZ cluster (engine per replica) over counting-mode
/// enclaves; used by tests, examples and the simulator registry.
pub fn build_cluster(config: &SystemConfig) -> Vec<FlexiZz> {
    let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Counting);
    (0..config.n)
        .map(|i| {
            let id = ReplicaId(i as u32);
            FlexiZz::new(
                config.clone(),
                id,
                FlexiZz::enclave(id, AttestationMode::Counting),
                registry.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_protocol::Action;
    use flexitrust_types::{ClientId, KvOp, QuorumRule, RequestId};

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| {
                Transaction::new(
                    ClientId(1),
                    RequestId(i as u64 + 1),
                    KvOp::Update {
                        key: i as u64,
                        value: vec![7].into(),
                    },
                )
            })
            .collect()
    }

    fn route(from: ReplicaId, actions: Vec<Action>, queues: &mut [Vec<(ReplicaId, Message)>]) {
        for a in actions {
            match a {
                Action::Send { to, msg } => queues[to.as_usize()].push((from, msg)),
                Action::Broadcast { msg } => {
                    for q in queues.iter_mut() {
                        q.push((from, msg.clone()));
                    }
                }
                _ => {}
            }
        }
    }

    fn run(engines: &mut [FlexiZz], inject: Vec<(usize, Vec<Transaction>)>) {
        let n = engines.len();
        let mut queues: Vec<Vec<(ReplicaId, Message)>> = vec![Vec::new(); n];
        for (target, t) in inject {
            let mut out = Outbox::new();
            engines[target].on_client_request(t, &mut out);
            route(engines[target].id(), out.drain(), &mut queues);
        }
        for _ in 0..300 {
            let mut any = false;
            for i in 0..n {
                for (from, msg) in std::mem::take(&mut queues[i]) {
                    any = true;
                    let mut out = Outbox::new();
                    engines[i].on_message(from, msg, &mut out);
                    route(engines[i].id(), out.drain(), &mut queues);
                }
            }
            if !any {
                break;
            }
        }
    }

    #[test]
    fn single_phase_speculative_commit() {
        let mut cfg = FlexiZz::config(1);
        cfg.batch_size = 2;
        let mut engines = build_cluster(&cfg);
        run(&mut engines, vec![(0, txns(4))]);
        for e in &engines {
            assert_eq!(e.last_executed(), SeqNum(2));
            assert_eq!(e.executed_txns(), 4);
        }
    }

    #[test]
    fn replies_are_speculative_and_need_2f_plus_1_at_the_client() {
        let mut cfg = FlexiZz::config(2);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        let mut out = Outbox::new();
        engines[0].on_client_request(txns(1), &mut out);
        let preprepare = out.broadcasts()[0].clone();
        let mut out = Outbox::new();
        engines[3].on_message(ReplicaId(0), preprepare, &mut out);
        assert_eq!(out.replies().len(), 1);
        assert!(out.replies()[0].speculative);
        assert_eq!(
            engines[0].properties().reply_quorum,
            QuorumRule::TwoFPlusOne
        );
        assert_eq!(engines[0].properties().phases, 1);
    }

    #[test]
    fn only_the_primary_accesses_its_trusted_counter() {
        let mut cfg = FlexiZz::config(1);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        run(&mut engines, vec![(0, txns(6))]);
        assert_eq!(
            engines[0]
                .flexi()
                .enclave()
                .stats()
                .snapshot()
                .counter_append_fs,
            6
        );
        for e in &engines[1..] {
            assert_eq!(e.flexi().enclave().stats().snapshot().total_accesses(), 0);
        }
    }

    #[test]
    fn fast_path_survives_f_unresponsive_replicas() {
        // With f = 1 (n = 4), one replica never receives anything; the other
        // three still execute and reply — enough for the 2f + 1 = 3 reply
        // rule, unlike MinZZ/Zyzzyva which would need all replicas.
        let mut cfg = FlexiZz::config(1);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        let mut out = Outbox::new();
        engines[0].on_client_request(txns(1), &mut out);
        let preprepare = out.broadcasts()[0].clone();
        let mut replies = 0;
        for engine in engines.iter_mut().take(3) {
            let mut out = Outbox::new();
            engine.on_message(ReplicaId(0), preprepare.clone(), &mut out);
            replies += out.replies().len();
        }
        assert_eq!(replies, 3);
        let needed = cfg.quorum(QuorumRule::TwoFPlusOne);
        assert!(replies >= needed);
    }

    #[test]
    fn client_retry_is_answered_from_the_reply_cache() {
        let mut cfg = FlexiZz::config(1);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        let request = txns(1);
        run(&mut engines, vec![(0, request.clone())]);
        let mut out = Outbox::new();
        engines[2].on_message(
            ReplicaId(1),
            Message::ClientRetry {
                txn: request[0].clone(),
            },
            &mut out,
        );
        assert_eq!(out.replies().len(), 1);
        assert_eq!(out.replies()[0].request, request[0].request());
    }

    #[test]
    fn unserved_client_retry_forwards_to_primary_and_arms_a_timer() {
        let mut cfg = FlexiZz::config(1);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        let txn = txns(1).remove(0);
        let mut out = Outbox::new();
        engines[2].on_message(ReplicaId(1), Message::ClientRetry { txn }, &mut out);
        assert_eq!(out.replies().len(), 0);
        assert_eq!(out.sends().len(), 1);
        assert_eq!(*out.sends()[0].0, ReplicaId(0));
        assert!(out.actions().iter().any(|a| matches!(
            a,
            Action::SetTimer {
                timer: TimerKind::RequestForwarded(_),
                ..
            }
        )));
    }

    #[test]
    fn forwarded_request_timeout_triggers_a_view_change_vote() {
        let mut cfg = FlexiZz::config(1);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        let txn = txns(1).remove(0);
        let mut out = Outbox::new();
        engines[2].on_message(
            ReplicaId(1),
            Message::ClientRetry { txn: txn.clone() },
            &mut out,
        );
        let tag = out
            .actions()
            .iter()
            .find_map(|a| match a {
                Action::SetTimer {
                    timer: TimerKind::RequestForwarded(t),
                    ..
                } => Some(*t),
                _ => None,
            })
            .unwrap();
        let mut out = Outbox::new();
        engines[2].on_timer(TimerKind::RequestForwarded(tag), &mut out);
        let vc: Vec<_> = out
            .broadcasts()
            .into_iter()
            .filter(|m| m.kind() == "ViewChange")
            .collect();
        assert_eq!(vc.len(), 1);
        assert!(engines[2].flexi().in_view_change());
    }

    #[test]
    fn view_change_reproposes_executed_batches_and_preserves_results() {
        let mut cfg = FlexiZz::config(1);
        cfg.batch_size = 1;
        let mut engines = build_cluster(&cfg);
        run(&mut engines, vec![(0, txns(2))]);
        // Primary goes silent; every backup times out and votes.
        let n = engines.len();
        let mut queues: Vec<Vec<(ReplicaId, Message)>> = vec![Vec::new(); n];
        for engine in engines.iter_mut().skip(1) {
            let mut out = Outbox::new();
            engine.on_timer(TimerKind::ViewChange, &mut out);
            route(engine.id(), out.drain(), &mut queues);
        }
        for _ in 0..100 {
            let mut any = false;
            for i in 0..n {
                for (from, msg) in std::mem::take(&mut queues[i]) {
                    any = true;
                    let mut out = Outbox::new();
                    engines[i].on_message(from, msg, &mut out);
                    route(engines[i].id(), out.drain(), &mut queues);
                }
            }
            if !any {
                break;
            }
        }
        for e in engines.iter().skip(1) {
            assert_eq!(e.view(), View(1), "replica {}", e.id());
            assert_eq!(e.last_executed(), SeqNum(2), "replica {}", e.id());
        }
        assert!(engines[1].is_primary());
        assert!(engines[1].flexi().view_changes_completed() >= 1);
    }
}
