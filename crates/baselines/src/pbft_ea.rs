//! PBFT-EA: PBFT with attested append-only memory (A2M).
//!
//! PBFT-EA (Chun et al.) keeps PBFT's three phases but equips every replica
//! with a trusted append-only log: each outgoing consensus message is logged
//! and carries the log's attestation, which prevents equivocation and lets
//! the protocol run with only `n = 2f + 1` replicas and quorums of `f + 1`
//! (§4.2). The price, as the paper analyses, is: every message costs a
//! trusted-component access (Figure 5), the trusted memory footprint grows
//! with the log (Figure 1), consensus instances are sequential (§7), and a
//! quorum of `f + 1` cannot guarantee client responsiveness (§5).

use crate::common::{PbftFamilyEngine, PrimaryAttest, ProtocolStyle, ReplicaAttest};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{ProtocolId, QuorumRule, ReplicaId, SystemConfig};
use std::sync::Arc;

/// Builder for PBFT-EA replica engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct PbftEa;

impl PbftEa {
    /// The PBFT-EA style parameters.
    pub fn style() -> ProtocolStyle {
        ProtocolStyle {
            id: ProtocolId::PbftEa,
            use_commit_phase: true,
            prepare_quorum_rule: QuorumRule::FPlusOne,
            commit_quorum_rule: QuorumRule::FPlusOne,
            speculative: false,
            primary_attest: PrimaryAttest::Log,
            replica_attest: ReplicaAttest::Log,
            active_subset_only: false,
        }
    }

    /// The default configuration for fault threshold `f` (`n = 2f + 1`).
    pub fn config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::PbftEa, f)
    }

    /// The log-based enclave PBFT-EA expects at each replica.
    pub fn enclave(id: ReplicaId, mode: AttestationMode) -> SharedEnclave {
        Enclave::shared(EnclaveConfig::log_based(id, mode))
    }

    /// Creates the engine for replica `id` with its trusted log enclave.
    pub fn engine(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> PbftFamilyEngine {
        PbftFamilyEngine::new(config, id, Self::style(), Some(enclave), Some(registry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_cluster_until_quiescent;
    use flexitrust_protocol::ConsensusEngine;
    use flexitrust_types::{ClientId, KvOp, RequestId, SeqNum, Transaction};

    fn build(f: usize, batch: usize) -> (Vec<Box<dyn ConsensusEngine>>, Vec<SharedEnclave>) {
        let mut cfg = PbftEa::config(f);
        cfg.batch_size = batch;
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        let enclaves: Vec<SharedEnclave> = (0..cfg.n)
            .map(|i| PbftEa::enclave(ReplicaId(i as u32), AttestationMode::Counting))
            .collect();
        let engines = (0..cfg.n)
            .map(|i| {
                Box::new(PbftEa::engine(
                    cfg.clone(),
                    ReplicaId(i as u32),
                    enclaves[i].clone(),
                    registry.clone(),
                )) as Box<dyn ConsensusEngine>
            })
            .collect();
        (engines, enclaves)
    }

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| {
                Transaction::new(
                    ClientId(1),
                    RequestId(i as u64 + 1),
                    KvOp::Update {
                        key: i as u64,
                        value: vec![1].into(),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn runs_with_2f_plus_1_replicas_and_small_quorums() {
        let (mut engines, _enclaves) = build(1, 1);
        assert_eq!(engines.len(), 3);
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(2))], 200);
        for e in &engines {
            assert_eq!(e.last_executed(), SeqNum(2));
        }
    }

    #[test]
    fn every_consensus_message_costs_a_trusted_log_access() {
        let (mut engines, enclaves) = build(1, 1);
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(1))], 200);
        // The primary logs its PrePrepare; every replica logs its Prepare and
        // its Commit. So each replica's enclave sees at least 2 log appends
        // and the primary's at least 3 — this O(n) access pattern per
        // consensus is the §6/Figure 8 cost FlexiTrust eliminates.
        let primary_appends = enclaves[0].stats().snapshot().log_appends;
        assert!(primary_appends >= 3, "primary appends = {primary_appends}");
        for enclave in &enclaves[1..] {
            let appends = enclave.stats().snapshot().log_appends;
            assert!(appends >= 2, "replica appends = {appends}");
        }
    }

    #[test]
    fn properties_match_figure_1() {
        let cfg = PbftEa::config(2);
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        let e = PbftEa::engine(
            cfg,
            ReplicaId(0),
            PbftEa::enclave(ReplicaId(0), AttestationMode::Counting),
            registry,
        );
        let p = e.properties();
        assert_eq!(p.phases, 3);
        assert!(!p.out_of_order);
        assert!(!p.bft_liveness);
        assert_eq!(
            p.trusted_abstraction,
            flexitrust_protocol::TrustedAbstraction::Log
        );
    }
}
