//! PBFT (Practical Byzantine Fault Tolerance, Castro & Liskov).
//!
//! The reference three-phase BFT protocol the paper uses as its primary
//! non-trusted baseline (§3): `n = 3f + 1` replicas, `PrePrepare` →
//! `Prepare` → `Commit`, quorums of `2f + 1`, clients accept a result after
//! `f + 1` matching replies. PBFT needs no trusted components and — key to
//! the paper's §7 observation — processes consensus instances *in parallel*,
//! which is why it outperforms every sequential trust-bft protocol despite
//! its extra phase and larger replica count.

use crate::common::{PbftFamilyEngine, PrimaryAttest, ProtocolStyle, ReplicaAttest};
use flexitrust_types::{ProtocolId, QuorumRule, ReplicaId, SystemConfig};
use std::sync::Arc;

/// Builder for PBFT replica engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pbft;

impl Pbft {
    /// The PBFT style parameters.
    pub fn style() -> ProtocolStyle {
        ProtocolStyle {
            id: ProtocolId::Pbft,
            use_commit_phase: true,
            prepare_quorum_rule: QuorumRule::TwoFPlusOne,
            commit_quorum_rule: QuorumRule::TwoFPlusOne,
            speculative: false,
            primary_attest: PrimaryAttest::None,
            replica_attest: ReplicaAttest::None,
            active_subset_only: false,
        }
    }

    /// The default configuration for fault threshold `f` (`n = 3f + 1`).
    pub fn config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::Pbft, f)
    }

    /// Creates the engine for replica `id`.
    pub fn engine(config: impl Into<Arc<SystemConfig>>, id: ReplicaId) -> PbftFamilyEngine {
        PbftFamilyEngine::new(config, id, Self::style(), None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_cluster_until_quiescent;
    use flexitrust_protocol::ConsensusEngine;
    use flexitrust_types::{ClientId, KvOp, RequestId, SeqNum, Transaction};

    fn cluster(f: usize, batch: usize) -> Vec<Box<dyn ConsensusEngine>> {
        let mut cfg = Pbft::config(f);
        cfg.batch_size = batch;
        (0..cfg.n)
            .map(|i| {
                Box::new(Pbft::engine(cfg.clone(), ReplicaId(i as u32))) as Box<dyn ConsensusEngine>
            })
            .collect()
    }

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| {
                Transaction::new(
                    ClientId(7),
                    RequestId(i as u64 + 1),
                    KvOp::Update {
                        key: i as u64,
                        value: vec![0xAB].into(),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn commits_with_three_phases_and_parallel_slots() {
        let mut engines = cluster(1, 1);
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(5))], 200);
        for e in &engines {
            assert_eq!(e.last_executed(), SeqNum(5));
            assert_eq!(e.executed_txns(), 5);
            assert_eq!(e.view().0, 0);
        }
    }

    #[test]
    fn properties_match_figure_1() {
        let e = Pbft::engine(Pbft::config(2), ReplicaId(0));
        let p = e.properties();
        assert_eq!(p.phases, 3);
        assert!(p.out_of_order);
        assert!(!e.style().speculative);
        assert_eq!(e.config().n, 7);
    }

    #[test]
    fn tolerates_f_silent_backups() {
        // With f = 1 and 4 replicas, one silent backup must not block commit.
        let mut engines = cluster(1, 2);
        // Remove replica 3 by never delivering to it: emulate by creating a
        // cluster of only the first three engines plus a dummy sink.
        let mut active: Vec<Box<dyn ConsensusEngine>> = engines.drain(..3).collect();
        // Pad the queue routing with a fourth engine that drops everything by
        // being a fresh engine that we simply never read results from.
        active.push(Box::new(Pbft::engine(Pbft::config(1), ReplicaId(3))));
        run_cluster_until_quiescent(&mut active, vec![(0, txns(2))], 200);
        for e in active.iter().take(3) {
            assert_eq!(e.executed_txns(), 2);
        }
    }
}
