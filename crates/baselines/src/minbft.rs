//! MinBFT: two-phase trust-bft with trusted monotonic counters.
//!
//! MinBFT (Veronese et al.) observes that once the primary's proposals are
//! bound to a trusted monotonic counter, PBFT's `Commit` phase is redundant:
//! a replica can commit a batch after `f + 1` matching `Prepare` messages
//! (§4.2). It runs with `n = 2f + 1` replicas and each replica binds every
//! outgoing message to its own counter.
//!
//! MinBFT is the protocol the paper uses to demonstrate all three
//! limitations of trust-bft designs:
//!
//! * §5 — a quorum of `f + 1` may contain only one honest replica, so a
//!   client may never collect the `f + 1` matching replies it needs;
//! * §6 — rolling back the primary's counter re-enables equivocation and
//!   breaks safety;
//! * §7 — in-order counter accesses make consensus inherently sequential.

use crate::common::{PbftFamilyEngine, PrimaryAttest, ProtocolStyle, ReplicaAttest};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{ProtocolId, QuorumRule, ReplicaId, SystemConfig};
use std::sync::Arc;

/// Builder for MinBFT replica engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinBft;

impl MinBft {
    /// The MinBFT style parameters.
    pub fn style() -> ProtocolStyle {
        ProtocolStyle {
            id: ProtocolId::MinBft,
            use_commit_phase: false,
            prepare_quorum_rule: QuorumRule::FPlusOne,
            commit_quorum_rule: QuorumRule::FPlusOne,
            speculative: false,
            primary_attest: PrimaryAttest::HostCounter,
            replica_attest: ReplicaAttest::Counter,
            active_subset_only: false,
        }
    }

    /// The default configuration for fault threshold `f` (`n = 2f + 1`).
    pub fn config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::MinBft, f)
    }

    /// The counter-only enclave MinBFT expects at each replica.
    pub fn enclave(id: ReplicaId, mode: AttestationMode) -> SharedEnclave {
        Enclave::shared(EnclaveConfig::counter_only(id, mode))
    }

    /// Creates the engine for replica `id` with its trusted counter enclave.
    pub fn engine(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> PbftFamilyEngine {
        PbftFamilyEngine::new(config, id, Self::style(), Some(enclave), Some(registry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_cluster_until_quiescent;
    use flexitrust_protocol::ConsensusEngine;
    use flexitrust_types::{ClientId, KvOp, RequestId, SeqNum, Transaction};

    fn build(f: usize, batch: usize) -> (Vec<Box<dyn ConsensusEngine>>, Vec<SharedEnclave>) {
        let mut cfg = MinBft::config(f);
        cfg.batch_size = batch;
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        let enclaves: Vec<SharedEnclave> = (0..cfg.n)
            .map(|i| MinBft::enclave(ReplicaId(i as u32), AttestationMode::Counting))
            .collect();
        let engines = (0..cfg.n)
            .map(|i| {
                Box::new(MinBft::engine(
                    cfg.clone(),
                    ReplicaId(i as u32),
                    enclaves[i].clone(),
                    registry.clone(),
                )) as Box<dyn ConsensusEngine>
            })
            .collect();
        (engines, enclaves)
    }

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| {
                Transaction::new(
                    ClientId(1),
                    RequestId(i as u64 + 1),
                    KvOp::Update {
                        key: i as u64,
                        value: vec![2].into(),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn commits_in_two_phases_with_f_plus_1_quorums() {
        let (mut engines, _) = build(2, 1); // n = 5
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(3))], 300);
        for e in &engines {
            assert_eq!(e.last_executed(), SeqNum(3));
            assert_eq!(e.executed_txns(), 3);
        }
    }

    #[test]
    fn every_replica_accesses_its_counter_per_consensus() {
        let (mut engines, enclaves) = build(1, 1);
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(2))], 200);
        for (i, enclave) in enclaves.iter().enumerate() {
            let appends = enclave.stats().snapshot().counter_appends;
            assert!(
                appends >= 2,
                "replica {i} made only {appends} counter accesses"
            );
        }
    }

    #[test]
    fn counter_values_track_sequence_numbers() {
        let (mut engines, enclaves) = build(1, 1);
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(4))], 300);
        // The primary bound batches 1..=4 to its counter.
        assert_eq!(enclaves[0].counter_value(0), Some(4));
    }

    #[test]
    fn properties_match_figure_1() {
        let (engines, _) = build(1, 1);
        let p = engines[0].properties();
        assert_eq!(p.phases, 2);
        assert!(!p.out_of_order);
        assert!(!p.bft_liveness);
        assert!(!p.primary_only_tc);
        assert_eq!(
            p.trusted_abstraction,
            flexitrust_protocol::TrustedAbstraction::Counter
        );
    }
}
