//! Baseline BFT and trust-BFT protocols evaluated by the paper.
//!
//! The paper compares its FlexiTrust suite against five deployed baselines
//! plus three variants the authors build themselves. All of them are
//! PBFT-shaped, differing in replication factor, number of phases, quorum
//! sizes, speculation and how they use trusted components:
//!
//! | Protocol | n | Phases | Trusted component use |
//! |---|---|---|---|
//! | [`Pbft`](pbft::Pbft) | 3f+1 | PrePrepare, Prepare, Commit | none |
//! | [`Zyzzyva`](zyzzyva::Zyzzyva) | 3f+1 | PrePrepare (speculative) | none |
//! | [`PbftEa`](pbft_ea::PbftEa) | 2f+1 | 3 phases | trusted log per message |
//! | [`OpbftEa`](opbft_ea::OpbftEa) | 2f+1 | 3 phases, parallel instances | trusted log per message |
//! | [`MinBft`](minbft::MinBft) | 2f+1 | 2 phases | trusted counter per message |
//! | [`MinZz`](minzz::MinZz) | 2f+1 | 1 phase (speculative) | trusted counter per message |
//! | [`CheapBft`](cheapbft::CheapBft) | 2f+1 (f+1 active) | 2 phases | trusted counter per message |
//!
//! All engines are built on the shared [`common::PbftFamilyEngine`], a
//! configurable PBFT-family replica: each protocol module instantiates it
//! with the style parameters above and documents the protocol-specific
//! behaviour and its limitations (§5–§7 of the paper).

pub mod cheapbft;
pub mod common;
pub mod minbft;
pub mod minzz;
pub mod opbft_ea;
pub mod pbft;
pub mod pbft_ea;
pub mod zyzzyva;

pub use cheapbft::CheapBft;
pub use common::{PbftFamilyEngine, PrimaryAttest, ProtocolStyle, ReplicaAttest};
pub use minbft::MinBft;
pub use minzz::MinZz;
pub use opbft_ea::OpbftEa;
pub use pbft::Pbft;
pub use pbft_ea::PbftEa;
pub use zyzzyva::Zyzzyva;
