//! OPBFT-EA: the authors' out-of-order variant of PBFT-EA.
//!
//! The paper builds Opbft-ea (§9.2) to isolate how much of PBFT-EA's poor
//! performance comes from sequential consensus: it is PBFT-EA with support
//! for parallel consensus invocations. The evaluation finds it gains only
//! about 6% over PBFT-EA because replicas then bottleneck on trusted-counter
//! (log) accesses and the associated signature verification — every received
//! message still costs a MAC check plus an attestation verification, and
//! every sent message still costs a trusted log append.

use crate::common::{PbftFamilyEngine, PrimaryAttest, ProtocolStyle, ReplicaAttest};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{ProtocolId, QuorumRule, ReplicaId, SystemConfig};
use std::sync::Arc;

/// Builder for OPBFT-EA replica engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpbftEa;

impl OpbftEa {
    /// The OPBFT-EA style parameters (PBFT-EA, but out-of-order capable).
    pub fn style() -> ProtocolStyle {
        ProtocolStyle {
            id: ProtocolId::OpbftEa,
            use_commit_phase: true,
            prepare_quorum_rule: QuorumRule::FPlusOne,
            commit_quorum_rule: QuorumRule::FPlusOne,
            speculative: false,
            primary_attest: PrimaryAttest::Log,
            replica_attest: ReplicaAttest::Log,
            active_subset_only: false,
        }
    }

    /// The default configuration for fault threshold `f` (`n = 2f + 1`).
    ///
    /// Unlike PBFT-EA the default `max_in_flight` is large, so the primary
    /// keeps many consensus instances outstanding concurrently.
    pub fn config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::OpbftEa, f)
    }

    /// The log-based enclave OPBFT-EA expects at each replica.
    pub fn enclave(id: ReplicaId, mode: AttestationMode) -> SharedEnclave {
        Enclave::shared(EnclaveConfig::log_based(id, mode))
    }

    /// Creates the engine for replica `id` with its trusted log enclave.
    pub fn engine(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> PbftFamilyEngine {
        PbftFamilyEngine::new(config, id, Self::style(), Some(enclave), Some(registry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_cluster_until_quiescent;
    use flexitrust_protocol::ConsensusEngine;
    use flexitrust_types::{ClientId, KvOp, RequestId, SeqNum, Transaction};

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| {
                Transaction::new(
                    ClientId(1),
                    RequestId(i as u64 + 1),
                    KvOp::Update {
                        key: i as u64,
                        value: vec![3].into(),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn supports_parallel_consensus_unlike_pbft_ea() {
        assert!(OpbftEa::config(4).max_in_flight > 1);
        assert_eq!(crate::pbft_ea::PbftEa::config(4).max_in_flight, 1);
        assert!(
            OpbftEa::engine(
                OpbftEa::config(1),
                ReplicaId(0),
                OpbftEa::enclave(ReplicaId(0), AttestationMode::Counting),
                EnclaveRegistry::deterministic(3, AttestationMode::Counting),
            )
            .properties()
            .out_of_order
        );
    }

    #[test]
    fn cluster_commits_multiple_instances() {
        let mut cfg = OpbftEa::config(1);
        cfg.batch_size = 1;
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        let mut engines: Vec<Box<dyn ConsensusEngine>> = (0..cfg.n)
            .map(|i| {
                Box::new(OpbftEa::engine(
                    cfg.clone(),
                    ReplicaId(i as u32),
                    OpbftEa::enclave(ReplicaId(i as u32), AttestationMode::Counting),
                    registry.clone(),
                )) as Box<dyn ConsensusEngine>
            })
            .collect();
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(4))], 300);
        for e in &engines {
            assert_eq!(e.last_executed(), SeqNum(4));
        }
    }
}
