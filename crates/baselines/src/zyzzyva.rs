//! Zyzzyva: speculative BFT.
//!
//! Zyzzyva (Kotla et al.) commits in a single phase when everything goes
//! well: the primary orders a request, all replicas execute it speculatively
//! and reply immediately, and the *client* completes when it receives
//! matching replies from **all** `3f + 1` replicas. A single slow or faulty
//! replica pushes every request onto the slow path (an extra round in which
//! the client gathers a commit certificate), which is exactly the fragility
//! Figure 7 of the paper demonstrates and Flexi-ZZ removes (Flexi-ZZ only
//! needs `2f + 1` of `3f + 1` replies).

use crate::common::{PbftFamilyEngine, PrimaryAttest, ProtocolStyle, ReplicaAttest};
use flexitrust_types::{ProtocolId, QuorumRule, ReplicaId, SystemConfig};
use std::sync::Arc;

/// Builder for Zyzzyva replica engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct Zyzzyva;

impl Zyzzyva {
    /// The Zyzzyva style parameters.
    pub fn style() -> ProtocolStyle {
        ProtocolStyle {
            id: ProtocolId::Zyzzyva,
            use_commit_phase: false,
            prepare_quorum_rule: QuorumRule::TwoFPlusOne,
            commit_quorum_rule: QuorumRule::TwoFPlusOne,
            speculative: true,
            primary_attest: PrimaryAttest::None,
            replica_attest: ReplicaAttest::None,
            active_subset_only: false,
        }
    }

    /// The default configuration for fault threshold `f` (`n = 3f + 1`).
    pub fn config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::Zyzzyva, f)
    }

    /// Creates the engine for replica `id`.
    pub fn engine(config: impl Into<Arc<SystemConfig>>, id: ReplicaId) -> PbftFamilyEngine {
        PbftFamilyEngine::new(config, id, Self::style(), None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_cluster_until_quiescent;
    use flexitrust_protocol::ConsensusEngine;
    use flexitrust_types::{ClientId, KvOp, QuorumRule, RequestId, SeqNum, Transaction};

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| Transaction::new(ClientId(1), RequestId(i as u64 + 1), KvOp::Read { key: 3 }))
            .collect()
    }

    #[test]
    fn replicas_execute_speculatively_in_one_phase() {
        let mut cfg = Zyzzyva::config(1);
        cfg.batch_size = 1;
        let mut engines: Vec<Box<dyn ConsensusEngine>> = (0..cfg.n)
            .map(|i| {
                Box::new(Zyzzyva::engine(cfg.clone(), ReplicaId(i as u32)))
                    as Box<dyn ConsensusEngine>
            })
            .collect();
        let delivered = run_cluster_until_quiescent(&mut engines, vec![(0, txns(3))], 100);
        for e in &engines {
            assert_eq!(e.last_executed(), SeqNum(3));
        }
        // Single phase: only PrePrepare broadcasts (3 proposals × 4 replicas)
        // plus nothing else.
        assert_eq!(delivered, 12);
    }

    #[test]
    fn client_reply_rule_requires_all_replicas() {
        let e = Zyzzyva::engine(Zyzzyva::config(2), ReplicaId(0));
        assert_eq!(e.properties().reply_quorum, QuorumRule::AllReplicas);
        assert_eq!(e.properties().phases, 1);
        assert!(e.properties().speculative);
    }

    #[test]
    fn speculative_replies_are_flagged_speculative() {
        let mut cfg = Zyzzyva::config(1);
        cfg.batch_size = 1;
        let mut backup = Zyzzyva::engine(cfg.clone(), ReplicaId(1));
        let mut primary = Zyzzyva::engine(cfg, ReplicaId(0));
        let mut out = flexitrust_protocol::Outbox::new();
        primary.on_client_request(txns(1), &mut out);
        let preprepare = out
            .broadcasts()
            .into_iter()
            .find(|m| m.kind() == "PrePrepare")
            .cloned()
            .unwrap();
        let mut out = flexitrust_protocol::Outbox::new();
        backup.on_message(ReplicaId(0), preprepare, &mut out);
        assert_eq!(out.replies().len(), 1);
        assert!(out.replies()[0].speculative);
    }
}
