//! MinZZ: speculative trust-bft (MinBFT's improvement of Zyzzyva).
//!
//! MinZZ (Veronese et al., "efficient Zyzzyva") uses trusted counters to run
//! Zyzzyva with only `n = 2f + 1` replicas: replicas execute speculatively as
//! soon as they receive the primary's attested `PrePrepare`, and the client
//! completes when it has matching replies from **all** `2f + 1` replicas.
//! Like Zyzzyva it collapses to a slow path the moment a single replica is
//! slow or faulty (Figure 7), and like every trust-bft protocol it is
//! sequential (§7) and offers only weak client responsiveness (§5).

use crate::common::{PbftFamilyEngine, PrimaryAttest, ProtocolStyle, ReplicaAttest};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{ProtocolId, QuorumRule, ReplicaId, SystemConfig};
use std::sync::Arc;

/// Builder for MinZZ replica engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinZz;

impl MinZz {
    /// The MinZZ style parameters.
    pub fn style() -> ProtocolStyle {
        ProtocolStyle {
            id: ProtocolId::MinZz,
            use_commit_phase: false,
            prepare_quorum_rule: QuorumRule::FPlusOne,
            commit_quorum_rule: QuorumRule::FPlusOne,
            speculative: true,
            primary_attest: PrimaryAttest::HostCounter,
            replica_attest: ReplicaAttest::Counter,
            active_subset_only: false,
        }
    }

    /// The default configuration for fault threshold `f` (`n = 2f + 1`).
    pub fn config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::MinZz, f)
    }

    /// The counter-only enclave MinZZ expects at each replica.
    pub fn enclave(id: ReplicaId, mode: AttestationMode) -> SharedEnclave {
        Enclave::shared(EnclaveConfig::counter_only(id, mode))
    }

    /// Creates the engine for replica `id` with its trusted counter enclave.
    pub fn engine(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> PbftFamilyEngine {
        PbftFamilyEngine::new(config, id, Self::style(), Some(enclave), Some(registry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_cluster_until_quiescent;
    use flexitrust_protocol::ConsensusEngine;
    use flexitrust_types::{ClientId, KvOp, QuorumRule, RequestId, SeqNum, Transaction};

    fn build(f: usize) -> (Vec<Box<dyn ConsensusEngine>>, Vec<SharedEnclave>) {
        let mut cfg = MinZz::config(f);
        cfg.batch_size = 1;
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        let enclaves: Vec<SharedEnclave> = (0..cfg.n)
            .map(|i| MinZz::enclave(ReplicaId(i as u32), AttestationMode::Counting))
            .collect();
        let engines = (0..cfg.n)
            .map(|i| {
                Box::new(MinZz::engine(
                    cfg.clone(),
                    ReplicaId(i as u32),
                    enclaves[i].clone(),
                    registry.clone(),
                )) as Box<dyn ConsensusEngine>
            })
            .collect();
        (engines, enclaves)
    }

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| Transaction::new(ClientId(1), RequestId(i as u64 + 1), KvOp::Read { key: 0 }))
            .collect()
    }

    #[test]
    fn executes_speculatively_in_a_single_phase() {
        let (mut engines, _) = build(1);
        let delivered = run_cluster_until_quiescent(&mut engines, vec![(0, txns(2))], 100);
        for e in &engines {
            assert_eq!(e.last_executed(), SeqNum(2));
        }
        // 2 proposals × 3 replicas; no vote traffic.
        assert_eq!(delivered, 6);
    }

    #[test]
    fn client_rule_requires_all_2f_plus_1_replies() {
        let (engines, _) = build(2);
        assert_eq!(
            engines[0].properties().reply_quorum,
            QuorumRule::AllReplicas
        );
        assert_eq!(engines[0].config().n, 5);
        assert!(engines[0].properties().speculative);
    }

    #[test]
    fn only_the_primary_attests_per_consensus_but_it_is_still_per_message() {
        let (mut engines, enclaves) = build(1);
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(3))], 100);
        // The primary attests each PrePrepare; backups execute speculatively
        // and (in the failure-free path) make no counter accesses.
        assert_eq!(enclaves[0].stats().snapshot().counter_appends, 3);
    }
}
