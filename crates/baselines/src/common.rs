//! The shared PBFT-family replica engine.
//!
//! Every baseline the paper evaluates follows the same skeleton (§3, §4.2):
//! a primary assigns sequence numbers and broadcasts `PrePrepare`; replicas
//! vote in one (`Prepare`) or two (`Prepare` + `Commit`) all-to-all phases;
//! batches execute in sequence order; periodic checkpoints truncate state;
//! and a view change replaces a faulty primary. What differs between the
//! protocols is captured by [`ProtocolStyle`]: the quorum sizes, whether a
//! `Commit` phase exists, whether execution is speculative, and how trusted
//! components are used for each message.
//!
//! [`PbftFamilyEngine`] implements that skeleton once. The per-protocol
//! modules in this crate instantiate it with the appropriate style, and the
//! unit/integration tests drive clusters of these engines directly (no
//! network) to check safety and the §5–§7 behaviours.

use flexitrust_protocol::{
    Action, CertificateTracker, ConsensusEngine, Message, NewViewPlanner, Outbox, PreparedProof,
    ProtocolProperties, ReplicaCore, TimerKind,
};
use flexitrust_trusted::{Attestation, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{
    Batch, Digest, ProtocolId, QuorumRule, ReplicaId, SeqNum, SystemConfig, Transaction, View,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// How the primary binds a batch to a sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimaryAttest {
    /// No trusted component (plain BFT).
    None,
    /// trust-bft trusted counter: the primary supplies the sequence number
    /// and the counter attests the binding (MinBFT, MinZZ, CheapBFT).
    HostCounter,
    /// trust-bft trusted log: the proposal is appended to the primary's
    /// pre-prepare log (PBFT-EA, OPBFT-EA).
    Log,
}

/// How non-primary replicas attest their own votes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaAttest {
    /// Votes are plain signed messages (PBFT, Zyzzyva — and FlexiTrust,
    /// whose replicas never touch their trusted components).
    None,
    /// Every outgoing vote is bound to the replica's trusted counter
    /// (MinBFT, MinZZ, CheapBFT).
    Counter,
    /// Every outgoing vote is appended to the replica's trusted log
    /// (PBFT-EA, OPBFT-EA).
    Log,
}

/// The per-protocol parameters of the PBFT-family skeleton.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolStyle {
    /// Which protocol this style realises.
    pub id: ProtocolId,
    /// Whether the protocol has a `Commit` phase after `Prepare`.
    pub use_commit_phase: bool,
    /// Matching `Prepare` votes needed to mark a batch prepared.
    pub prepare_quorum_rule: QuorumRule,
    /// Matching `Commit` votes needed to mark a batch committed
    /// (ignored when there is no commit phase).
    pub commit_quorum_rule: QuorumRule,
    /// Whether replicas execute speculatively on `PrePrepare` (Zyzzyva,
    /// MinZZ) instead of waiting for a quorum.
    pub speculative: bool,
    /// How the primary uses its trusted component per proposal.
    pub primary_attest: PrimaryAttest,
    /// How other replicas use their trusted components per vote.
    pub replica_attest: ReplicaAttest,
    /// Only the first `f + 1` replicas participate in the failure-free case
    /// (CheapBFT's active/passive split).
    pub active_subset_only: bool,
}

/// Internal per-slot consensus state.
#[derive(Debug, Default)]
struct SlotState {
    batch: Option<Batch>,
    digest: Option<Digest>,
    view: View,
    attestation: Option<Attestation>,
    prepared: bool,
    committed: bool,
    prepare_sent: bool,
    commit_sent: bool,
}

/// A configurable PBFT-family replica engine.
pub struct PbftFamilyEngine {
    style: ProtocolStyle,
    core: ReplicaCore,
    enclave: Option<SharedEnclave>,
    registry: Option<EnclaveRegistry>,

    slots: BTreeMap<u64, SlotState>,
    prepare_votes: CertificateTracker<(View, SeqNum, Digest)>,
    commit_votes: CertificateTracker<(View, SeqNum, Digest)>,

    // Primary-side proposal state.
    pending_batches: VecDeque<Batch>,
    next_seq: u64,
    my_outstanding: BTreeSet<u64>,
    /// Trusted counter identifier used by the current primary (a new counter
    /// is created after each view change).
    counter_id: u64,

    // View-change state.
    in_view_change: bool,
    highest_vc_vote: View,
    planners: BTreeMap<u64, NewViewPlanner>,
    join_votes: CertificateTracker<View>,
    view_changes_completed: u64,
}

impl PbftFamilyEngine {
    /// Creates a replica engine.
    ///
    /// `enclave` must be `Some` when the style uses a trusted component;
    /// `registry` must be `Some` when attestations should be verified.
    pub fn new(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        style: ProtocolStyle,
        enclave: Option<SharedEnclave>,
        registry: Option<EnclaveRegistry>,
    ) -> Self {
        let config = config.into();
        let prepare_quorum = config.quorum(style.prepare_quorum_rule);
        let commit_quorum = config.quorum(style.commit_quorum_rule);
        let join_quorum = config.small_quorum();
        PbftFamilyEngine {
            core: ReplicaCore::new(config, id),
            prepare_votes: CertificateTracker::new(prepare_quorum),
            commit_votes: CertificateTracker::new(commit_quorum),
            slots: BTreeMap::new(),
            pending_batches: VecDeque::new(),
            next_seq: 1,
            my_outstanding: BTreeSet::new(),
            counter_id: 0,
            in_view_change: false,
            highest_vc_vote: View::ZERO,
            planners: BTreeMap::new(),
            join_votes: CertificateTracker::new(join_quorum),
            view_changes_completed: 0,
            style,
            enclave,
            registry,
        }
    }

    /// The style this engine was built with.
    pub fn style(&self) -> &ProtocolStyle {
        &self.style
    }

    /// Shared replica state (view, execution progress, checkpoints).
    pub fn core(&self) -> &ReplicaCore {
        &self.core
    }

    /// Number of view changes this replica has completed.
    pub fn view_changes_completed(&self) -> u64 {
        self.view_changes_completed
    }

    /// Whether this replica currently believes a view change is in progress.
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// Returns `true` when this replica participates in the failure-free
    /// case (always true except for CheapBFT's passive replicas).
    fn is_active(&self) -> bool {
        if !self.style.active_subset_only {
            return true;
        }
        // CheapBFT keeps replicas 0..f+1 active; the rest stay passive until
        // a fault forces a protocol switch.
        self.core.id().as_usize() <= self.core.config().f
    }

    fn batch_flush_delay_us(&self) -> u64 {
        // Flush partially filled batches quickly so low client counts still
        // make progress; the value only matters for latency at low load.
        500
    }

    // ------------------------------------------------------------------
    // Primary-side proposal path.
    // ------------------------------------------------------------------

    fn enqueue_batches(&mut self, txns: Vec<Transaction>, out: &mut Outbox) {
        let full = self.core.batcher_mut().push(txns);
        self.pending_batches.extend(full);
        if self.core.batcher_mut().pending_len() > 0 {
            out.set_timer(TimerKind::BatchFlush, self.batch_flush_delay_us());
        }
        self.try_propose(out);
    }

    fn try_propose(&mut self, out: &mut Outbox) {
        if !self.core.is_primary() || self.in_view_change {
            return;
        }
        let max_in_flight = self.core.config().max_in_flight;
        while self.my_outstanding.len() < max_in_flight {
            let Some(batch) = self.pending_batches.pop_front() else {
                return;
            };
            let seq = SeqNum(self.next_seq);
            self.next_seq += 1;
            let attestation = self.primary_attestation(seq, batch.digest());
            self.my_outstanding.insert(seq.0);
            out.broadcast(Message::PrePrepare {
                view: self.core.view(),
                seq,
                batch,
                attestation,
            });
        }
    }

    fn primary_attestation(&self, seq: SeqNum, digest: Digest) -> Option<Attestation> {
        let enclave = self.enclave.as_ref()?;
        match self.style.primary_attest {
            PrimaryAttest::None => None,
            PrimaryAttest::HostCounter => enclave.append(self.counter_id, seq.0, digest).ok(),
            PrimaryAttest::Log => enclave.log_append(0, Some(seq.0), digest).ok(),
        }
    }

    fn replica_vote_attestation(&self, seq: SeqNum, digest: Digest) -> Option<Attestation> {
        let enclave = self.enclave.as_ref()?;
        match self.style.replica_attest {
            ReplicaAttest::None => None,
            ReplicaAttest::Counter => {
                // trust-bft replicas bind every outgoing vote to their own
                // counter; the counter value is the sequence number being
                // voted on (so out-of-order votes are rejected by the TC,
                // which is the §7 sequentiality constraint).
                enclave.append(self.counter_id, seq.0, digest).ok()
            }
            ReplicaAttest::Log => enclave.log_append(1, None, digest).ok(),
        }
    }

    fn verify_attestation(&self, attestation: &Option<Attestation>) -> bool {
        match (self.style.primary_attest, attestation, &self.registry) {
            (PrimaryAttest::None, _, _) => true,
            (_, Some(att), Some(registry)) => registry.verify(att).is_ok(),
            (_, Some(_), None) => true,
            (_, None, _) => false,
        }
    }

    // ------------------------------------------------------------------
    // Backup-side message handling.
    // ------------------------------------------------------------------

    fn on_preprepare(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        batch: Batch,
        attestation: Option<Attestation>,
        out: &mut Outbox,
    ) {
        if view != self.core.view() || from != self.core.primary() || self.in_view_change {
            return;
        }
        if seq <= self.core.low_water_mark() {
            return;
        }
        if !self.verify_attestation(&attestation) {
            return;
        }
        let slot = self.slots.entry(seq.0).or_default();
        if slot.batch.is_some() {
            // Already accepted a proposal for this slot in this view.
            return;
        }
        let digest = batch.digest();
        slot.batch = Some(batch.clone());
        slot.digest = Some(digest);
        slot.view = view;
        slot.attestation = attestation;

        if self.style.speculative {
            // Zyzzyva / MinZZ: execute immediately and reply speculatively.
            // trust-bft variants (MinZZ) still bind the accepted order to
            // their own trusted counter before replying — the per-message,
            // in-order TC access that §7 identifies as the root cause of
            // sequentiality. The attestation travels with the client reply,
            // so no vote message is broadcast here.
            if self.style.replica_attest != ReplicaAttest::None && !self.core.is_primary() {
                let _ = self.replica_vote_attestation(seq, digest);
            }
            self.execute_slot(seq, batch, true, out);
            return;
        }

        if self.is_active()
            && !self
                .slots
                .get(&seq.0)
                .map(|s| s.prepare_sent)
                .unwrap_or(false)
        {
            let vote_attestation = self.replica_vote_attestation(seq, digest);
            if let Some(slot) = self.slots.get_mut(&seq.0) {
                slot.prepare_sent = true;
            }
            out.broadcast(Message::Prepare {
                view,
                seq,
                digest,
                attestation: vote_attestation,
            });
        }
    }

    fn on_prepare(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        digest: Digest,
        out: &mut Outbox,
    ) {
        if view != self.core.view() || self.in_view_change {
            return;
        }
        let became_quorum = self.prepare_votes.vote((view, seq, digest), from);
        if !became_quorum {
            return;
        }
        let digest_matches = self
            .slots
            .get(&seq.0)
            .map(|s| s.digest == Some(digest))
            .unwrap_or(false);
        if !digest_matches {
            return;
        }
        if let Some(slot) = self.slots.get_mut(&seq.0) {
            slot.prepared = true;
        }
        if self.style.use_commit_phase {
            let already_sent = self
                .slots
                .get(&seq.0)
                .map(|s| s.commit_sent)
                .unwrap_or(true);
            if self.is_active() && !already_sent {
                if let Some(slot) = self.slots.get_mut(&seq.0) {
                    slot.commit_sent = true;
                }
                let attestation = self.replica_vote_attestation(seq, digest);
                out.broadcast(Message::Commit {
                    view,
                    seq,
                    digest,
                    attestation,
                });
            }
        } else {
            // Two-phase protocols (MinBFT, CheapBFT): prepared == committed.
            self.commit_slot(seq, out);
        }
    }

    fn on_commit(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        digest: Digest,
        out: &mut Outbox,
    ) {
        if view != self.core.view() || self.in_view_change || !self.style.use_commit_phase {
            return;
        }
        let became_quorum = self.commit_votes.vote((view, seq, digest), from);
        if !became_quorum {
            return;
        }
        let matches = self
            .slots
            .get(&seq.0)
            .map(|s| s.digest == Some(digest))
            .unwrap_or(false);
        if matches {
            self.commit_slot(seq, out);
        }
    }

    fn commit_slot(&mut self, seq: SeqNum, out: &mut Outbox) {
        let Some(slot) = self.slots.get_mut(&seq.0) else {
            return;
        };
        if slot.committed {
            return;
        }
        slot.committed = true;
        let Some(batch) = slot.batch.clone() else {
            return;
        };
        self.execute_slot(seq, batch, false, out);
    }

    fn execute_slot(&mut self, seq: SeqNum, batch: Batch, speculative: bool, out: &mut Outbox) {
        let executed = self.core.commit_batch(seq, batch, speculative, out);
        for done in &executed {
            self.core.maybe_emit_checkpoint(done.seq, out);
            self.my_outstanding.remove(&done.seq.0);
        }
        if !executed.is_empty() {
            self.try_propose(out);
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints and garbage collection.
    // ------------------------------------------------------------------

    fn on_checkpoint(&mut self, from: ReplicaId, seq: SeqNum, state_digest: Digest) {
        if let Some(stable) = self.core.record_checkpoint_vote(from, seq, state_digest) {
            let lwm = stable.0;
            self.slots.retain(|s, _| *s > lwm);
            self.prepare_votes.retain(|(_, s, _)| s.0 > lwm);
            self.commit_votes.retain(|(_, s, _)| s.0 > lwm);
            if let Some(enclave) = &self.enclave {
                enclave.truncate_logs(lwm);
            }
        }
    }

    /// Serves a state-transfer request from a recovering replica: the latest
    /// stable checkpoint snapshot plus every batch this replica holds and has
    /// executed above it, so the joiner can replay up to our frontier.
    fn on_checkpoint_request(&mut self, from: ReplicaId, last_executed: SeqNum, out: &mut Outbox) {
        let Some((seq, snapshot)) = self.core.stable_checkpoint_snapshot(last_executed) else {
            return;
        };
        let frontier = self.core.last_executed();
        let batches: Vec<(SeqNum, Batch)> = self
            .slots
            .range(seq.0 + 1..)
            .filter(|(s, _)| SeqNum(**s) <= frontier)
            .filter_map(|(s, slot)| Some((SeqNum(*s), slot.batch.clone()?)))
            .collect();
        out.send(
            from,
            Message::CheckpointState {
                seq,
                snapshot,
                batches,
            },
        );
    }

    /// Installs a peer's stable checkpoint (crash-recovery rejoin), then
    /// replays the accompanying batches through the normal execution path.
    fn on_checkpoint_state(
        &mut self,
        seq: SeqNum,
        snapshot: &flexitrust_types::StateSnapshot,
        batches: Vec<(SeqNum, Batch)>,
        out: &mut Outbox,
    ) {
        if self.core.install_checkpoint(seq, snapshot) {
            self.slots.retain(|s, _| *s > seq.0);
            self.prepare_votes.retain(|(_, s, _)| s.0 > seq.0);
            self.commit_votes.retain(|(_, s, _)| s.0 > seq.0);
            if let Some(enclave) = &self.enclave {
                enclave.truncate_logs(seq.0);
            }
        }
        let speculative = self.style.speculative;
        for (batch_seq, batch) in batches {
            if batch_seq <= self.core.last_executed() {
                continue;
            }
            self.next_seq = self.next_seq.max(batch_seq.0 + 1);
            self.execute_slot(batch_seq, batch, speculative, out);
        }
    }

    // ------------------------------------------------------------------
    // View changes.
    // ------------------------------------------------------------------

    fn prepared_proofs(&self) -> Vec<PreparedProof> {
        self.slots
            .iter()
            .filter_map(|(seq, slot)| {
                let relevant = if self.style.speculative {
                    // Speculative protocols report every slot they executed.
                    self.core.exec().is_executed(SeqNum(*seq))
                } else {
                    slot.prepared
                };
                if !relevant {
                    return None;
                }
                Some(PreparedProof {
                    view: slot.view,
                    seq: SeqNum(*seq),
                    digest: slot.digest?,
                    batch: slot.batch.clone()?,
                    attestation: slot.attestation.clone(),
                    prepare_votes: self.prepare_votes.count(&(
                        slot.view,
                        SeqNum(*seq),
                        slot.digest?,
                    )),
                })
            })
            .collect()
    }

    fn start_view_change(&mut self, out: &mut Outbox) {
        let target = self.core.view().next();
        if target <= self.highest_vc_vote {
            return;
        }
        self.highest_vc_vote = target;
        self.in_view_change = true;
        out.broadcast(Message::ViewChange {
            new_view: target,
            last_stable: self.core.low_water_mark(),
            prepared: self.prepared_proofs(),
        });
        // Re-arm the timer: if the view change does not complete, move on to
        // the next view.
        out.set_timer(TimerKind::ViewChange, self.core.config().view_timeout_us);
    }

    fn view_change_quorum(&self) -> usize {
        // Both trust-bft (f+1) and bft (2f+1) protocols require a quorum of
        // view-change votes matching their prepare quorum.
        self.core.config().quorum(self.style.prepare_quorum_rule)
    }

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        new_view: View,
        last_stable: SeqNum,
        prepared: Vec<PreparedProof>,
        out: &mut Outbox,
    ) {
        if new_view <= self.core.view() {
            return;
        }
        // Join rule: once f + 1 distinct replicas demand a view change, an
        // honest replica joins it even if its own timer has not fired yet
        // (otherwise Byzantine replicas alone could never force one, and
        // honest stragglers would hold the system back).
        let join_quorum = self.core.config().small_quorum();
        self.join_votes.vote(new_view, from);
        if self.join_votes.count(&new_view) >= join_quorum && new_view > self.highest_vc_vote {
            self.highest_vc_vote = new_view;
            self.in_view_change = true;
            out.broadcast(Message::ViewChange {
                new_view,
                last_stable: self.core.low_water_mark(),
                prepared: self.prepared_proofs(),
            });
        }
        // Only the would-be primary of `new_view` collects votes and emits
        // the NewView message.
        if new_view.primary(self.core.config().n) != self.core.id() {
            return;
        }
        let quorum = self.view_change_quorum();
        let planner = self
            .planners
            .entry(new_view.0)
            .or_insert_with(|| NewViewPlanner::new(new_view, quorum));
        if let Some(plan) = planner.record_view_change(from, last_stable, prepared) {
            // Become the primary of the new view.
            self.core.enter_view(new_view);
            self.in_view_change = false;
            self.view_changes_completed += 1;
            self.next_seq = plan.next_seq.0;
            // trust-bft primaries create a fresh counter so that re-proposals
            // can be attested starting from the lowest re-proposed sequence
            // number (§8.1 Create).
            if self.style.primary_attest == PrimaryAttest::HostCounter {
                if let Some(enclave) = &self.enclave {
                    let (q, _att) = enclave.create_counter(plan.stable_seq.0);
                    self.counter_id = q;
                }
            }
            let proposals: Vec<(SeqNum, Batch, Option<Attestation>)> = plan
                .proposals
                .iter()
                .map(|(seq, batch)| {
                    let att = self.primary_attestation(*seq, batch.digest());
                    (*seq, batch.clone(), att)
                })
                .collect();
            out.broadcast(Message::NewView {
                view: new_view,
                supporting_votes: plan.supporting_votes,
                proposals: proposals.clone(),
                counter_attestation: None,
            });
            // Process the re-proposals locally as well (the new primary acts
            // on its own NewView like any other replica would).
            let self_id = self.core.id();
            for (seq, batch, attestation) in proposals {
                if !self.core.exec().is_executed(seq) {
                    self.on_preprepare(self_id, new_view, seq, batch, attestation, out);
                }
            }
        }
    }

    fn on_new_view(
        &mut self,
        from: ReplicaId,
        view: View,
        supporting_votes: usize,
        proposals: Vec<(SeqNum, Batch, Option<Attestation>)>,
        out: &mut Outbox,
    ) {
        if view <= self.core.view() && !(view == self.core.view() && self.in_view_change) {
            return;
        }
        if from != view.primary(self.core.config().n) {
            return;
        }
        if supporting_votes < self.view_change_quorum() {
            return;
        }
        self.core.enter_view(view);
        self.in_view_change = false;
        self.view_changes_completed += 1;
        // Adopt the re-proposals: treat each like a PrePrepare in the new view.
        for (seq, batch, attestation) in proposals {
            if self.core.exec().is_executed(seq) {
                continue;
            }
            self.next_seq = self.next_seq.max(seq.0 + 1);
            self.on_preprepare(from, view, seq, batch, attestation, out);
        }
        out.cancel_timer(TimerKind::ViewChange);
    }

    // ------------------------------------------------------------------
    // Client interaction.
    // ------------------------------------------------------------------

    fn on_client_retry(&mut self, txn: Transaction, out: &mut Outbox) {
        if let Some(reply) = self.core.cached_reply(txn.client(), txn.request()) {
            out.reply(reply.clone());
            return;
        }
        if self.core.is_primary() {
            self.enqueue_batches(vec![txn], out);
        } else {
            // Forward to the primary and start a timer; if the primary never
            // proposes it, suspect it and vote for a view change.
            let primary = self.core.primary();
            out.send(primary, Message::ForwardRequest { txns: vec![txn] });
            out.set_timer(TimerKind::ViewChange, self.core.config().view_timeout_us);
        }
    }
}

impl ConsensusEngine for PbftFamilyEngine {
    fn config(&self) -> &SystemConfig {
        self.core.config()
    }

    fn id(&self) -> ReplicaId {
        self.core.id()
    }

    fn properties(&self) -> ProtocolProperties {
        ProtocolProperties::for_protocol(self.style.id)
    }

    fn on_client_request(&mut self, txns: Vec<Transaction>, out: &mut Outbox) {
        if self.core.is_primary() {
            self.enqueue_batches(txns, out);
        } else {
            let primary = self.core.primary();
            out.send(primary, Message::ForwardRequest { txns });
        }
    }

    fn on_message(&mut self, from: ReplicaId, msg: Message, out: &mut Outbox) {
        if !self.core.config().contains(from) {
            return;
        }
        match msg {
            Message::PrePrepare {
                view,
                seq,
                batch,
                attestation,
            } => self.on_preprepare(from, view, seq, batch, attestation, out),
            Message::Prepare {
                view, seq, digest, ..
            } => self.on_prepare(from, view, seq, digest, out),
            Message::Commit {
                view, seq, digest, ..
            } => self.on_commit(from, view, seq, digest, out),
            Message::Checkpoint {
                seq, state_digest, ..
            } => self.on_checkpoint(from, seq, state_digest),
            Message::ViewChange {
                new_view,
                last_stable,
                prepared,
            } => self.on_view_change(from, new_view, last_stable, prepared, out),
            Message::NewView {
                view,
                supporting_votes,
                proposals,
                ..
            } => self.on_new_view(from, view, supporting_votes, proposals, out),
            Message::ClientRetry { txn } => self.on_client_retry(txn, out),
            Message::ForwardRequest { txns } => {
                if self.core.is_primary() {
                    self.enqueue_batches(txns, out);
                }
            }
            Message::CheckpointRequest { last_executed } => {
                self.on_checkpoint_request(from, last_executed, out)
            }
            Message::CheckpointState {
                seq,
                snapshot,
                batches,
            } => self.on_checkpoint_state(seq, &snapshot, batches, out),
        }
    }

    fn on_timer(&mut self, timer: TimerKind, out: &mut Outbox) {
        match timer {
            TimerKind::BatchFlush => {
                if self.core.is_primary() {
                    if let Some(batch) = self.core.batcher_mut().flush() {
                        self.pending_batches.push_back(batch);
                        self.try_propose(out);
                    }
                }
            }
            TimerKind::ViewChange | TimerKind::RequestForwarded(_) => {
                self.start_view_change(out);
            }
            TimerKind::Checkpoint => {
                // Periodic checkpoints are driven off execution boundaries in
                // this implementation; the timer variant is unused here.
            }
        }
    }

    fn view(&self) -> View {
        self.core.view()
    }

    fn last_executed(&self) -> SeqNum {
        self.core.last_executed()
    }

    fn executed_txns(&self) -> u64 {
        self.core.executed_txns()
    }

    fn state_digest(&self) -> Option<Digest> {
        Some(self.core.state_digest())
    }
}

/// Helper used by this crate's protocol modules and by tests: drive a cluster
/// of engines to completion by repeatedly delivering every queued action to
/// its destination (a synchronous, loss-free "perfect network").
///
/// Returns the number of actions delivered.
pub fn run_cluster_until_quiescent(
    engines: &mut [Box<dyn ConsensusEngine>],
    mut inject: Vec<(usize, Vec<Transaction>)>,
    max_rounds: usize,
) -> usize {
    let mut delivered = 0;
    let mut queues: Vec<Vec<(ReplicaId, Message)>> = vec![Vec::new(); engines.len()];
    // Inject the client requests first.
    let mut out = Outbox::new();
    for (target, txns) in inject.drain(..) {
        engines[target].on_client_request(txns, &mut out);
        route_actions(engines[target].id(), out.drain(), &mut queues);
    }
    for _ in 0..max_rounds {
        let mut any = false;
        for i in 0..engines.len() {
            let pending = std::mem::take(&mut queues[i]);
            for (from, msg) in pending {
                any = true;
                delivered += 1;
                let mut out = Outbox::new();
                engines[i].on_message(from, msg, &mut out);
                route_actions(engines[i].id(), out.drain(), &mut queues);
            }
        }
        if !any {
            break;
        }
    }
    delivered
}

fn route_actions(from: ReplicaId, actions: Vec<Action>, queues: &mut [Vec<(ReplicaId, Message)>]) {
    for action in actions {
        match action {
            Action::Send { to, msg } => {
                if let Some(q) = queues.get_mut(to.as_usize()) {
                    q.push((from, msg));
                }
            }
            Action::Broadcast { msg } => {
                for q in queues.iter_mut() {
                    q.push((from, msg.clone()));
                }
            }
            // Replies, timers and execution notifications are not routed by
            // this synchronous helper.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig};
    use flexitrust_types::{ClientId, KvOp, RequestId};

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| {
                Transaction::new(
                    ClientId(1),
                    RequestId(i as u64 + 1),
                    KvOp::Update {
                        key: i as u64,
                        value: vec![1].into(),
                    },
                )
            })
            .collect()
    }

    fn pbft_style() -> ProtocolStyle {
        ProtocolStyle {
            id: ProtocolId::Pbft,
            use_commit_phase: true,
            prepare_quorum_rule: QuorumRule::TwoFPlusOne,
            commit_quorum_rule: QuorumRule::TwoFPlusOne,
            speculative: false,
            primary_attest: PrimaryAttest::None,
            replica_attest: ReplicaAttest::None,
            active_subset_only: false,
        }
    }

    fn minbft_style() -> ProtocolStyle {
        ProtocolStyle {
            id: ProtocolId::MinBft,
            use_commit_phase: false,
            prepare_quorum_rule: QuorumRule::FPlusOne,
            commit_quorum_rule: QuorumRule::FPlusOne,
            speculative: false,
            primary_attest: PrimaryAttest::HostCounter,
            replica_attest: ReplicaAttest::Counter,
            active_subset_only: false,
        }
    }

    fn build_cluster(style: ProtocolStyle, f: usize) -> Vec<Box<dyn ConsensusEngine>> {
        let mut cfg = SystemConfig::for_protocol(style.id, f);
        cfg.batch_size = 2;
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        (0..cfg.n)
            .map(|i| {
                let enclave = if style.primary_attest == PrimaryAttest::None {
                    None
                } else {
                    Some(Enclave::shared(EnclaveConfig::log_based(
                        ReplicaId(i as u32),
                        AttestationMode::Counting,
                    )))
                };
                Box::new(PbftFamilyEngine::new(
                    cfg.clone(),
                    ReplicaId(i as u32),
                    style,
                    enclave,
                    Some(registry.clone()),
                )) as Box<dyn ConsensusEngine>
            })
            .collect()
    }

    #[test]
    fn pbft_cluster_commits_and_all_replicas_execute() {
        let mut cluster = build_cluster(pbft_style(), 1);
        run_cluster_until_quiescent(&mut cluster, vec![(0, txns(4))], 100);
        for engine in &cluster {
            assert_eq!(engine.last_executed(), SeqNum(2), "replica {}", engine.id());
            assert_eq!(engine.executed_txns(), 4);
        }
    }

    #[test]
    fn minbft_cluster_commits_in_two_phases() {
        let mut cluster = build_cluster(minbft_style(), 1);
        run_cluster_until_quiescent(&mut cluster, vec![(0, txns(2))], 100);
        for engine in &cluster {
            assert_eq!(engine.last_executed(), SeqNum(1));
            assert_eq!(engine.executed_txns(), 2);
        }
    }

    #[test]
    fn requests_sent_to_backups_are_forwarded_to_the_primary() {
        let mut cluster = build_cluster(pbft_style(), 1);
        // Client sends to replica 2 (not the primary of view 0).
        run_cluster_until_quiescent(&mut cluster, vec![(2, txns(2))], 100);
        for engine in &cluster {
            assert_eq!(engine.executed_txns(), 2);
        }
    }

    #[test]
    fn speculative_style_executes_on_preprepare_without_votes() {
        let style = ProtocolStyle {
            id: ProtocolId::Zyzzyva,
            speculative: true,
            use_commit_phase: false,
            ..pbft_style()
        };
        let mut cluster = build_cluster(style, 1);
        let delivered = run_cluster_until_quiescent(&mut cluster, vec![(0, txns(2))], 100);
        for engine in &cluster {
            assert_eq!(engine.executed_txns(), 2);
        }
        // One broadcast of PrePrepare to 4 replicas and nothing else on the
        // critical path (plus no Prepare/Commit storm).
        assert!(delivered <= 8, "delivered {delivered} messages");
    }

    #[test]
    fn conflicting_preprepare_for_same_slot_is_ignored() {
        let cfg = SystemConfig::for_protocol(ProtocolId::Pbft, 1);
        let mut engine = PbftFamilyEngine::new(cfg.clone(), ReplicaId(1), pbft_style(), None, None);
        let mut out = Outbox::new();
        let batch_a = flexitrust_crypto::make_batch(txns(1));
        let batch_b = flexitrust_crypto::make_batch(txns(2));
        engine.on_message(
            ReplicaId(0),
            Message::PrePrepare {
                view: View(0),
                seq: SeqNum(1),
                batch: batch_a.clone(),
                attestation: None,
            },
            &mut out,
        );
        engine.on_message(
            ReplicaId(0),
            Message::PrePrepare {
                view: View(0),
                seq: SeqNum(1),
                batch: batch_b,
                attestation: None,
            },
            &mut out,
        );
        // Only one Prepare was broadcast, for the first digest.
        let prepares: Vec<_> = out
            .broadcasts()
            .into_iter()
            .filter(|m| m.kind() == "Prepare")
            .collect();
        assert_eq!(prepares.len(), 1);
        match prepares[0] {
            Message::Prepare { digest, .. } => assert_eq!(*digest, batch_a.digest()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn preprepare_from_non_primary_is_rejected() {
        let cfg = SystemConfig::for_protocol(ProtocolId::Pbft, 1);
        let mut engine = PbftFamilyEngine::new(cfg, ReplicaId(2), pbft_style(), None, None);
        let mut out = Outbox::new();
        engine.on_message(
            ReplicaId(3), // not the primary of view 0
            Message::PrePrepare {
                view: View(0),
                seq: SeqNum(1),
                batch: flexitrust_crypto::make_batch(txns(1)),
                attestation: None,
            },
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn trust_bft_preprepare_without_attestation_is_rejected() {
        let cfg = SystemConfig::for_protocol(ProtocolId::MinBft, 1);
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        let mut engine = PbftFamilyEngine::new(
            cfg,
            ReplicaId(1),
            minbft_style(),
            Some(Enclave::shared(EnclaveConfig::counter_only(
                ReplicaId(1),
                AttestationMode::Counting,
            ))),
            Some(registry),
        );
        let mut out = Outbox::new();
        engine.on_message(
            ReplicaId(0),
            Message::PrePrepare {
                view: View(0),
                seq: SeqNum(1),
                batch: flexitrust_crypto::make_batch(txns(1)),
                attestation: None,
            },
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn view_change_replaces_a_silent_primary() {
        let mut cluster = build_cluster(pbft_style(), 1);
        // Deliver nothing; instead, fire the view-change timer at every
        // backup and route the resulting messages by hand.
        let n = cluster.len();
        let mut queues: Vec<Vec<(ReplicaId, Message)>> = vec![Vec::new(); n];
        for engine in cluster.iter_mut().skip(1) {
            let mut out = Outbox::new();
            engine.on_timer(TimerKind::ViewChange, &mut out);
            route_actions(engine.id(), out.drain(), &mut queues);
        }
        for _ in 0..50 {
            let mut any = false;
            for i in 0..n {
                for (from, msg) in std::mem::take(&mut queues[i]) {
                    any = true;
                    let mut out = Outbox::new();
                    cluster[i].on_message(from, msg, &mut out);
                    route_actions(cluster[i].id(), out.drain(), &mut queues);
                }
            }
            if !any {
                break;
            }
        }
        // Replica 1 is the primary of view 1; the backups have moved on.
        for engine in cluster.iter().skip(1) {
            assert_eq!(engine.view(), View(1), "replica {}", engine.id());
        }
        assert!(cluster[1].is_primary());
    }

    #[test]
    fn cheapbft_passive_replicas_do_not_vote() {
        let style = ProtocolStyle {
            id: ProtocolId::CheapBft,
            active_subset_only: true,
            ..minbft_style()
        };
        let cfg = SystemConfig::for_protocol(ProtocolId::CheapBft, 2); // n = 5, active = 3
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        let enclave = Enclave::shared(EnclaveConfig::counter_only(
            ReplicaId(4),
            AttestationMode::Counting,
        ));
        let mut passive = PbftFamilyEngine::new(
            cfg.clone(),
            ReplicaId(4),
            style,
            Some(enclave),
            Some(registry.clone()),
        );
        let primary_enclave = Enclave::shared(EnclaveConfig::counter_only(
            ReplicaId(0),
            AttestationMode::Counting,
        ));
        let att = primary_enclave.append(0, 1, Digest::from_u64_tag(1)).ok();
        let mut out = Outbox::new();
        passive.on_message(
            ReplicaId(0),
            Message::PrePrepare {
                view: View(0),
                seq: SeqNum(1),
                batch: flexitrust_crypto::make_batch(txns(1)),
                attestation: att,
            },
            &mut out,
        );
        // Passive replica stores the proposal but does not broadcast a vote.
        assert!(out.broadcasts().is_empty());
    }
}
