//! CheapBFT: resource-efficient trust-bft with passive replicas.
//!
//! CheapBFT (Kapitza et al.) optimises the failure-free case by keeping only
//! `f + 1` replicas *active*: they run a MinBFT-style two-phase agreement
//! with trusted counters while the remaining `f` replicas stay passive and
//! are only brought in (by switching protocols) when a fault occurs. The
//! paper lists it alongside MinBFT/MinZZ in Figure 1 and notes in §10 that
//! it shares the same sequentiality and responsiveness limitations.
//!
//! This implementation models the failure-free behaviour: passive replicas
//! accept proposals and learn committed batches but never vote, so the
//! message and CPU load of the active set matches CheapBFT's design point.

use crate::common::{PbftFamilyEngine, PrimaryAttest, ProtocolStyle, ReplicaAttest};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{ProtocolId, QuorumRule, ReplicaId, SystemConfig};
use std::sync::Arc;

/// Builder for CheapBFT replica engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheapBft;

impl CheapBft {
    /// The CheapBFT style parameters.
    pub fn style() -> ProtocolStyle {
        ProtocolStyle {
            id: ProtocolId::CheapBft,
            use_commit_phase: false,
            prepare_quorum_rule: QuorumRule::FPlusOne,
            commit_quorum_rule: QuorumRule::FPlusOne,
            speculative: false,
            primary_attest: PrimaryAttest::HostCounter,
            replica_attest: ReplicaAttest::Counter,
            active_subset_only: true,
        }
    }

    /// The default configuration for fault threshold `f` (`n = 2f + 1`,
    /// `f + 1` of which are active).
    pub fn config(f: usize) -> SystemConfig {
        SystemConfig::for_protocol(ProtocolId::CheapBft, f)
    }

    /// The counter-only enclave CheapBFT expects at each replica.
    pub fn enclave(id: ReplicaId, mode: AttestationMode) -> SharedEnclave {
        Enclave::shared(EnclaveConfig::counter_only(id, mode))
    }

    /// Creates the engine for replica `id`.
    pub fn engine(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        enclave: SharedEnclave,
        registry: EnclaveRegistry,
    ) -> PbftFamilyEngine {
        PbftFamilyEngine::new(config, id, Self::style(), Some(enclave), Some(registry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_cluster_until_quiescent;
    use flexitrust_protocol::ConsensusEngine;
    use flexitrust_types::{ClientId, KvOp, RequestId, SeqNum, Transaction};

    fn build(f: usize) -> (Vec<Box<dyn ConsensusEngine>>, Vec<SharedEnclave>) {
        let mut cfg = CheapBft::config(f);
        cfg.batch_size = 1;
        let registry = EnclaveRegistry::deterministic(cfg.n, AttestationMode::Counting);
        let enclaves: Vec<SharedEnclave> = (0..cfg.n)
            .map(|i| CheapBft::enclave(ReplicaId(i as u32), AttestationMode::Counting))
            .collect();
        let engines = (0..cfg.n)
            .map(|i| {
                Box::new(CheapBft::engine(
                    cfg.clone(),
                    ReplicaId(i as u32),
                    enclaves[i].clone(),
                    registry.clone(),
                )) as Box<dyn ConsensusEngine>
            })
            .collect();
        (engines, enclaves)
    }

    fn txns(count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| {
                Transaction::new(
                    ClientId(1),
                    RequestId(i as u64 + 1),
                    KvOp::Update {
                        key: i as u64,
                        value: vec![4].into(),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn active_replicas_commit_with_f_plus_1_votes() {
        let (mut engines, _) = build(1); // n = 3, active = 2
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(2))], 200);
        // Active replicas (0 and 1) execute; the passive replica also learns
        // the result because it receives the same quorum of Prepare votes.
        assert_eq!(engines[0].last_executed(), SeqNum(2));
        assert_eq!(engines[1].last_executed(), SeqNum(2));
    }

    #[test]
    fn passive_replicas_never_access_their_counters() {
        let (mut engines, enclaves) = build(1);
        run_cluster_until_quiescent(&mut engines, vec![(0, txns(2))], 200);
        let passive = enclaves.last().unwrap().stats().snapshot();
        assert_eq!(passive.counter_appends, 0);
        assert!(enclaves[0].stats().snapshot().counter_appends > 0);
    }

    #[test]
    fn properties_match_figure_1() {
        let (engines, _) = build(1);
        let p = engines[0].properties();
        assert_eq!(p.phases, 2);
        assert!(!p.out_of_order);
        assert!(!p.bft_liveness);
    }
}
