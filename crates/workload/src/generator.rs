//! The YCSB-style transaction generator.

use crate::zipfian::ZipfianGenerator;
use flexitrust_types::{ClientId, KvOp, RequestId, Transaction, ValueBytes};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// How keys are chosen from the record space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every record is equally likely.
    Uniform,
    /// YCSB zipfian distribution with the given skew parameter.
    Zipfian {
        /// Skew parameter in (0, 1); YCSB uses 0.99.
        theta: f64,
    },
}

/// Configuration of the workload mix.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of records in the store (the paper uses 600 000).
    pub record_count: u64,
    /// Size of each record value in bytes.
    pub value_size: usize,
    /// Fraction of read operations.
    pub read_proportion: f64,
    /// Fraction of update operations.
    pub update_proportion: f64,
    /// Fraction of insert operations.
    pub insert_proportion: f64,
    /// Fraction of read-modify-write operations.
    pub rmw_proportion: f64,
    /// Fraction of scan operations.
    pub scan_proportion: f64,
    /// Maximum scan length.
    pub max_scan_len: u32,
    /// Key popularity distribution.
    pub distribution: KeyDistribution,
}

impl WorkloadConfig {
    /// The configuration used throughout the paper's evaluation: YCSB over
    /// 600 k records with a 50/50 read/update mix (YCSB workload A) and
    /// zipfian key popularity.
    pub fn paper_default() -> Self {
        WorkloadConfig {
            record_count: 600_000,
            value_size: 100,
            read_proportion: 0.5,
            update_proportion: 0.5,
            insert_proportion: 0.0,
            rmw_proportion: 0.0,
            scan_proportion: 0.0,
            max_scan_len: 100,
            distribution: KeyDistribution::Zipfian {
                theta: ZipfianGenerator::YCSB_THETA,
            },
        }
    }

    /// YCSB workload A: 50% reads, 50% updates.
    pub fn ycsb_a() -> Self {
        Self::paper_default()
    }

    /// YCSB workload B: 95% reads, 5% updates.
    pub fn ycsb_b() -> Self {
        WorkloadConfig {
            read_proportion: 0.95,
            update_proportion: 0.05,
            ..Self::paper_default()
        }
    }

    /// YCSB workload C: 100% reads.
    pub fn ycsb_c() -> Self {
        WorkloadConfig {
            read_proportion: 1.0,
            update_proportion: 0.0,
            ..Self::paper_default()
        }
    }

    /// A write-heavy mix used by some ablations: 100% updates.
    pub fn update_only() -> Self {
        WorkloadConfig {
            read_proportion: 0.0,
            update_proportion: 1.0,
            ..Self::paper_default()
        }
    }

    /// A small configuration for unit tests (1 k records, tiny values).
    pub fn tiny() -> Self {
        WorkloadConfig {
            record_count: 1_000,
            value_size: 8,
            ..Self::paper_default()
        }
    }

    /// Validates that the proportions sum to 1 (within rounding error).
    pub fn is_valid(&self) -> bool {
        let total = self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.rmw_proportion
            + self.scan_proportion;
        (total - 1.0).abs() < 1e-9 && self.record_count > 0
    }
}

/// A deterministic per-client transaction generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    client: ClientId,
    next_request: RequestId,
    next_insert_key: u64,
    zipfian: Option<ZipfianGenerator>,
    rng: ChaCha12Rng,
}

impl WorkloadGenerator {
    /// Creates a generator for one client; `seed` makes the stream
    /// reproducible (the same seed and client produce the same transactions).
    pub fn new(config: WorkloadConfig, client: ClientId, seed: u64) -> Self {
        let zipfian = match config.distribution {
            KeyDistribution::Uniform => None,
            KeyDistribution::Zipfian { theta } => {
                Some(ZipfianGenerator::new(config.record_count, theta))
            }
        };
        let rng = ChaCha12Rng::seed_from_u64(seed ^ client.0.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        WorkloadGenerator {
            next_insert_key: config.record_count + client.0 * 1_000_000,
            config,
            client,
            next_request: RequestId(1),
            zipfian,
            rng,
        }
    }

    /// The configuration this generator draws from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    fn next_key(&mut self) -> u64 {
        match &self.zipfian {
            Some(z) => z.next_key(&mut self.rng),
            None => self.rng.gen_range(0..self.config.record_count),
        }
    }

    fn value(&mut self) -> ValueBytes {
        let mut v = vec![0u8; self.config.value_size];
        self.rng.fill(v.as_mut_slice());
        v.into()
    }

    /// Generates the next transaction for this client.
    pub fn next_transaction(&mut self) -> Transaction {
        let request = self.next_request;
        self.next_request = self.next_request.next();

        let roll: f64 = self.rng.gen();
        let c = &self.config;
        let op = if roll < c.read_proportion {
            KvOp::Read {
                key: self.next_key(),
            }
        } else if roll < c.read_proportion + c.update_proportion {
            KvOp::Update {
                key: self.next_key(),
                value: self.value(),
            }
        } else if roll < c.read_proportion + c.update_proportion + c.insert_proportion {
            let key = self.next_insert_key;
            self.next_insert_key += 1;
            KvOp::Insert {
                key,
                value: self.value(),
            }
        } else if roll
            < c.read_proportion + c.update_proportion + c.insert_proportion + c.rmw_proportion
        {
            KvOp::ReadModifyWrite {
                key: self.next_key(),
                value: self.value(),
            }
        } else {
            KvOp::Scan {
                start_key: self.next_key(),
                count: self.rng.gen_range(1..=self.config.max_scan_len),
            }
        };
        Transaction::new(self.client, request, op)
    }

    /// Generates a whole batch of `size` transactions.
    pub fn next_batch(&mut self, size: usize) -> Vec<Transaction> {
        (0..size).map(|_| self.next_transaction()).collect()
    }

    /// Generates the initial records to pre-load the store with
    /// (`record_count` inserts with deterministic values).
    pub fn initial_records(config: &WorkloadConfig) -> impl Iterator<Item = (u64, Vec<u8>)> + '_ {
        (0..config.record_count).map(move |key| {
            let mut value = vec![0u8; config.value_size];
            for (i, b) in value.iter_mut().enumerate() {
                *b = (key as u8).wrapping_add(i as u8);
            }
            (key, value)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_and_600k_records() {
        let cfg = WorkloadConfig::paper_default();
        assert!(cfg.is_valid());
        assert_eq!(cfg.record_count, 600_000);
    }

    #[test]
    fn presets_are_valid() {
        for cfg in [
            WorkloadConfig::ycsb_a(),
            WorkloadConfig::ycsb_b(),
            WorkloadConfig::ycsb_c(),
            WorkloadConfig::update_only(),
            WorkloadConfig::tiny(),
        ] {
            assert!(cfg.is_valid(), "{cfg:?}");
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed_and_client() {
        let make = |seed| {
            let mut g = WorkloadGenerator::new(WorkloadConfig::tiny(), ClientId(3), seed);
            g.next_batch(20)
        };
        assert_eq!(make(1), make(1));
        assert_ne!(make(1), make(2));
    }

    #[test]
    fn different_clients_generate_different_streams() {
        let cfg = WorkloadConfig::tiny();
        let mut a = WorkloadGenerator::new(cfg.clone(), ClientId(1), 5);
        let mut b = WorkloadGenerator::new(cfg, ClientId(2), 5);
        assert_ne!(a.next_batch(10), b.next_batch(10));
    }

    #[test]
    fn request_ids_increase_monotonically() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::tiny(), ClientId(1), 0);
        let batch = g.next_batch(5);
        for (i, txn) in batch.iter().enumerate() {
            assert_eq!(txn.request(), RequestId(i as u64 + 1));
            assert_eq!(txn.client(), ClientId(1));
        }
    }

    #[test]
    fn mix_respects_proportions_roughly() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::ycsb_b(), ClientId(1), 42);
        let batch = g.next_batch(5_000);
        let reads = batch
            .iter()
            .filter(|t| matches!(t.op(), KvOp::Read { .. }))
            .count();
        let frac = reads as f64 / batch.len() as f64;
        assert!((frac - 0.95).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn read_only_workload_generates_only_reads() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::ycsb_c(), ClientId(1), 11);
        assert!(g
            .next_batch(500)
            .iter()
            .all(|t| matches!(t.op(), KvOp::Read { .. })));
    }

    #[test]
    fn keys_stay_within_record_space_for_reads_updates() {
        let cfg = WorkloadConfig::tiny();
        let mut g = WorkloadGenerator::new(cfg.clone(), ClientId(1), 3);
        for t in g.next_batch(2_000) {
            match t.op() {
                KvOp::Read { key } | KvOp::Update { key, .. } => {
                    assert!(*key < cfg.record_count)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn initial_records_cover_the_whole_space() {
        let cfg = WorkloadConfig::tiny();
        let records: Vec<_> = WorkloadGenerator::initial_records(&cfg).collect();
        assert_eq!(records.len(), 1_000);
        assert_eq!(records[0].0, 0);
        assert_eq!(records.last().unwrap().0, 999);
        assert_eq!(records[5].1.len(), cfg.value_size);
    }

    #[test]
    fn uniform_distribution_is_supported() {
        let cfg = WorkloadConfig {
            distribution: KeyDistribution::Uniform,
            ..WorkloadConfig::tiny()
        };
        let mut g = WorkloadGenerator::new(cfg, ClientId(1), 1);
        let batch = g.next_batch(1_000);
        let max_key = batch.iter().filter_map(|t| t.op().key()).max().unwrap();
        assert!(max_key < 1_000);
    }
}
