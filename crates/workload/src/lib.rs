//! YCSB-style workload generation.
//!
//! The paper evaluates every protocol on the Yahoo! Cloud Serving Benchmark
//! (YCSB) over a 600 k-record key-value store. This crate reproduces that
//! workload: a configurable mix of reads, updates, inserts, read-modify-write
//! and scans over keys drawn from a uniform or zipfian distribution, with
//! deterministic seeding so simulations and tests are reproducible.

pub mod generator;
pub mod zipfian;

pub use generator::{KeyDistribution, WorkloadConfig, WorkloadGenerator};
pub use zipfian::ZipfianGenerator;
