//! Zipfian key-popularity distribution (the YCSB "zipfian" request
//! distribution).
//!
//! The implementation follows Gray et al.'s rejection-free algorithm as used
//! by the original YCSB client: keys are drawn with probability proportional
//! to `1 / rank^theta`, so a small set of hot keys receives most requests.

use rand::Rng;

/// A zipfian generator over the integer range `[0, items)`.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    items: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    zeta_two: f64,
    eta: f64,
}

impl ZipfianGenerator {
    /// The skew parameter used by YCSB's default zipfian workloads.
    pub const YCSB_THETA: f64 = 0.99;

    /// Creates a generator over `[0, items)` with skew `theta` (0 < theta < 1).
    ///
    /// `theta` close to 0 approaches a uniform distribution; YCSB uses 0.99.
    pub fn new(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian needs at least one item");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zeta_n = Self::zeta(items, theta);
        let zeta_two = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta_two / zeta_n);
        ZipfianGenerator {
            items,
            theta,
            alpha,
            zeta_n,
            zeta_two,
            eta,
        }
    }

    /// Creates a generator with the YCSB default skew.
    pub fn ycsb(items: u64) -> Self {
        Self::new(items, Self::YCSB_THETA)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For the 600 k-record store this sum is computed once at start-up.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items covered by the generator.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws the next key.
    pub fn next_key<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.items as f64) * spread) as u64 % self.items
    }

    /// Exposes `zeta(2, theta)`; useful to validate the constants in tests.
    pub fn zeta_two(&self) -> f64 {
        self.zeta_two
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keys_stay_in_range() {
        let gen = ZipfianGenerator::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(gen.next_key(&mut rng) < 1000);
        }
    }

    #[test]
    fn distribution_is_skewed_toward_low_ranks() {
        let gen = ZipfianGenerator::ycsb(10_000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hot = 0usize;
        let samples = 50_000;
        for _ in 0..samples {
            if gen.next_key(&mut rng) < 100 {
                hot += 1;
            }
        }
        // With theta = 0.99, the hottest 1% of keys should receive far more
        // than 1% of requests (empirically > 30%).
        assert!(
            hot as f64 / samples as f64 > 0.3,
            "hot fraction was {}",
            hot as f64 / samples as f64
        );
    }

    #[test]
    fn lower_theta_is_less_skewed() {
        let skewed = ZipfianGenerator::new(10_000, 0.99);
        let flat = ZipfianGenerator::new(10_000, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let count_hot = |gen: &ZipfianGenerator, rng: &mut StdRng| {
            (0..20_000).filter(|_| gen.next_key(rng) < 100).count()
        };
        let hot_skewed = count_hot(&skewed, &mut rng);
        let hot_flat = count_hot(&flat, &mut rng);
        assert!(hot_skewed > hot_flat * 2);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let gen = ZipfianGenerator::ycsb(600_000);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| gen.next_key(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn zeta_two_matches_formula() {
        let gen = ZipfianGenerator::new(100, 0.5);
        let expected = 1.0 + 1.0 / 2f64.powf(0.5);
        assert!((gen.zeta_two() - expected).abs() < 1e-12);
        assert_eq!(gen.items(), 100);
        assert!((gen.theta() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = ZipfianGenerator::new(0, 0.5);
    }
}
