//! Self-lint: the workspace this crate lives in must pass its own lint.
//!
//! This is the acceptance gate in test form — `flexilint --workspace`
//! exits 0 on the tree as committed, every pragma carries a reason (a
//! reasonless pragma is a U02 finding and would dirty the run), and no
//! pragma is stale (U01).

use std::collections::BTreeSet;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    root
}

#[test]
fn workspace_lints_clean() {
    let report = flexilint::run(&workspace_root()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the workspace must lint clean; findings:\n{}",
        report.human()
    );
    // Sanity: the scan actually covered the tree, and the suppressions we
    // committed are all still load-bearing (else they'd be U01 findings).
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.suppressions_used > 0,
        "expected the committed lint:allow pragmas to be exercised"
    );
}

#[test]
fn workspace_is_clean_under_each_graph_rule_family() {
    // The graph analyses (L/C/H/X) must hold on the real tree, each
    // family on its own — a finding in one family must not be masked by
    // a filter bug that drops another family's scan. Suppressions still
    // resolve against the full finding set, so a pragma carrying a real
    // X01 keeps counting here.
    let root = workspace_root();
    for family in [
        "L01,L02",
        "C01,C02,C03",
        "H01,H02",
        "X01,X02",
        "T01,T02",
        "N01",
        "Q01,Q02",
    ] {
        let only: BTreeSet<String> = family.split(',').map(str::to_string).collect();
        let report = flexilint::run_with_rules(&root, Some(&only)).expect("workspace scan");
        assert!(
            report.is_clean(),
            "rule family {family} has findings on the real tree:\n{}",
            report.human()
        );
    }
    // The T01/T02/X02 pragmas carrying the wire and executor bounds
    // proofs are load-bearing: the full run must honour them all beyond
    // the 17 committed before the dataflow analyses landed.
    let full = flexilint::run(&root).expect("workspace scan");
    assert!(
        full.suppressions_used >= 33,
        "expected the dataflow-rule pragmas to be exercised, got {}",
        full.suppressions_used
    );
}
