//! Self-lint: the workspace this crate lives in must pass its own lint.
//!
//! This is the acceptance gate in test form — `flexilint --workspace`
//! exits 0 on the tree as committed, every pragma carries a reason (a
//! reasonless pragma is a U02 finding and would dirty the run), and no
//! pragma is stale (U01).

use std::path::PathBuf;

#[test]
fn workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );

    let report = flexilint::run(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the workspace must lint clean; findings:\n{}",
        report.human()
    );
    // Sanity: the scan actually covered the tree, and the suppressions we
    // committed are all still load-bearing (else they'd be U01 findings).
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.suppressions_used > 0,
        "expected the committed lint:allow pragmas to be exercised"
    );
}
