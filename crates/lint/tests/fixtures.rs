//! Fixture suite: each mini-tree under `tests/fixtures/` seeds exactly one
//! kind of violation (or a clean/pragma scenario), proving every rule is
//! non-vacuous — the lint actually fires where it should and stays quiet
//! where it shouldn't.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the lint over one fixture tree and returns the report.
fn lint(name: &str) -> flexilint::report::Report {
    flexilint::run(&fixture(name)).unwrap_or_else(|e| panic!("lint {name}: {e}"))
}

/// The distinct rule ids present in a report.
fn rule_set(report: &flexilint::report::Report) -> BTreeSet<String> {
    report.findings.iter().map(|f| f.rule.clone()).collect()
}

fn expect_only(name: &str, rule: &str) -> flexilint::report::Report {
    let report = lint(name);
    assert!(
        !report.findings.is_empty(),
        "{name}: expected at least one {rule} finding, got none (vacuous rule)"
    );
    assert_eq!(
        rule_set(&report),
        BTreeSet::from([rule.to_string()]),
        "{name}: expected only {rule} findings, got: {}",
        report.human()
    );
    report
}

#[test]
fn clean_tree_is_clean() {
    let report = lint("clean");
    assert!(
        report.is_clean(),
        "clean fixture flagged: {}",
        report.human()
    );
    assert_eq!(report.files_scanned, 2);
    assert_eq!(report.suppressions_used, 0);
}

#[test]
fn d01_flags_hash_collections_in_deterministic_crates() {
    let report = expect_only("d01_hashmap", "D01");
    // The use, the return type and the constructor each carry the hazard.
    assert_eq!(report.findings.len(), 3);
    assert!(report.findings[0].message.contains("iteration order"));
}

#[test]
fn d02_flags_wall_clock_reads() {
    let report = expect_only("d02_clock", "D02");
    // Only the `Instant::now()` call site — the `use` and the return type
    // never observe the clock.
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].excerpt, "Instant::now()");
}

#[test]
fn d03_flags_thread_sleep() {
    expect_only("d03_sleep", "D03");
}

#[test]
fn d04_flags_unseeded_rng() {
    expect_only("d04_rng", "D04");
}

#[test]
fn z01_flags_to_vec_payload_copies() {
    expect_only("z01_to_vec", "Z01");
}

#[test]
fn z02_flags_vec_from_payload_copies() {
    expect_only("z02_vec_from", "Z02");
}

#[test]
fn p01_flags_unwrap_in_transport_code() {
    let report = expect_only("p01_unwrap", "P01");
    assert!(report.findings[0].message.contains("kills the thread"));
}

#[test]
fn p02_flags_println_in_library_code() {
    expect_only("p02_println", "P02");
}

#[test]
fn well_formed_pragmas_suppress_trailing_and_standalone() {
    let report = lint("pragma_ok");
    assert!(
        report.is_clean(),
        "pragma_ok should lint clean: {}",
        report.human()
    );
    // Both the trailing pragma and the standalone (wrapped-reason) pragma
    // must each have suppressed a real D02 finding.
    assert_eq!(report.suppressions_used, 2);
}

#[test]
fn unused_pragmas_are_findings() {
    let report = expect_only("pragma_unused", "U01");
    assert!(report.findings[0].message.contains("suppresses nothing"));
}

#[test]
fn malformed_pragmas_are_findings() {
    let report = expect_only("pragma_malformed", "U02");
    // One missing its reason, one naming an unknown rule.
    assert_eq!(report.findings.len(), 2);
    assert!(report.findings[1].message.contains("unknown rule"));
}

#[test]
fn w01_fires_when_a_variant_has_no_codec_arm() {
    let report = expect_only("w01_missing_arm", "W01");
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("Message::Gossip"));
    assert!(report.findings[0].message.contains("codec arm"));
}

#[test]
fn w01_fires_when_a_variant_is_unaccounted_in_wire_size() {
    let report = expect_only("w01_missing_size", "W01");
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("Message::Prepare"));
    assert!(report.findings[0].message.contains("wire_size_bytes"));
}

#[test]
fn w02_fires_when_the_codec_keeps_a_removed_variant() {
    let report = expect_only("w02_stale_arm", "W02");
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("Message::Checkpoint"));
}

#[test]
fn l01_fires_on_opposite_lock_orders() {
    let report = expect_only("l01_cycle", "L01");
    assert_eq!(report.findings.len(), 1, "one cycle, one finding");
    assert!(report.findings[0].message.contains("l.accounts"));
    assert!(report.findings[0].message.contains("l.journal"));
}

#[test]
fn l02_fires_on_guard_held_across_blocking_send() {
    let report = expect_only("l02_hold_send", "L02");
    assert!(report.findings[0].message.contains("state"));
    assert!(report.findings[0].message.contains("send"));
}

#[test]
fn c01_fires_when_the_sender_is_dropped_at_creation() {
    let report = expect_only("c01_wedge", "C01");
    assert!(report.findings[0].message.contains("tx"));
    assert!(report.findings[0].message.contains("rx"));
}

#[test]
fn c02_fires_when_the_receiver_is_dropped_at_creation() {
    let report = expect_only("c02_loss", "C02");
    assert!(report.findings[0].message.contains("rx"));
}

#[test]
fn c03_fires_on_discarded_try_send_results() {
    let report = expect_only("c03_try_send", "C03");
    // Both discard shapes: the bare `;` and the `.ok();` chain.
    assert_eq!(report.findings.len(), 2, "{}", report.human());
}

#[test]
fn h01_fires_when_an_engine_wildcards_a_variant_away() {
    let report = expect_only("h01_unhandled", "H01");
    assert_eq!(report.findings.len(), 1, "{}", report.human());
    assert!(report.findings[0].message.contains("Commit"));
}

#[test]
fn h02_fires_on_an_arm_for_a_removed_variant() {
    let report = expect_only("h02_stale", "H02");
    assert!(report.findings[0].message.contains("Ballot"));
}

#[test]
fn x01_fires_on_a_panic_one_call_from_a_worker() {
    let report = expect_only("x01_panic", "X01");
    assert!(report.findings[0].message.contains("pump"));
}

#[test]
fn x02_fires_on_unchecked_indexing_in_a_worker() {
    let report = expect_only("x02_index", "X02");
    assert!(report.findings[0].message.contains("vals"));
}

#[test]
fn t01_fires_on_panics_reachable_from_a_decode_entry() {
    let report = expect_only("t01_decode_panic", "T01");
    // The slice index and the unwrap, two calls below `decode_ping`.
    assert_eq!(report.findings.len(), 2, "{}", report.human());
    assert!(report.findings.iter().any(|f| f.message.contains("unwrap")));
    assert!(report
        .findings
        .iter()
        .all(|f| f.message.contains("wire decode entry point")));
}

#[test]
fn t02_fires_on_a_narrowing_cast_of_a_peer_count() {
    let report = expect_only("t02_narrow_cast", "T02");
    assert_eq!(report.findings.len(), 1, "{}", report.human());
    assert!(report.findings[0].message.contains("as usize"));
}

#[test]
fn n01_fires_when_a_clock_value_crosses_files_into_a_message() {
    // The taint travels through a return summary: `Pacer::budget_nanos`
    // (clock.rs) is the source, `Node::heartbeat` (node.rs) the sink.
    let report = expect_only("n01_clock_leak", "N01");
    assert_eq!(report.findings.len(), 1, "{}", report.human());
    assert!(report.findings[0].message.contains("Message::Heartbeat"));
}

#[test]
fn q01_fires_on_a_quorum_that_need_not_intersect() {
    let report = expect_only("q01_quorum_gap", "Q01");
    assert_eq!(report.findings.len(), 1, "{}", report.human());
    assert!(report.findings[0].message.contains("large_quorum"));
    assert!(report.findings[0].message.contains("3f + 1"));
}

#[test]
fn seeded_violation_json_marks_the_run_dirty() {
    // The CI smoke check depends on this exact contract: a seeded
    // violation yields `"clean": false` JSON and a nonzero exit.
    let report = lint("d01_hashmap");
    let json = report.json();
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"rule\": \"D01\""));
    assert!(!report.is_clean());
}
