//! Fixture engine: keeps an arm for `Ballot`, a variant the vocabulary no
//! longer has — dead dispatch code left behind by a protocol change.
use protocol::Message;

pub struct Engine {
    prepares: u64,
    commits: u64,
}

impl Engine {
    pub fn on_message(&mut self, m: Message) {
        match m {
            Message::Prepare { .. } => {
                self.prepares += 1;
            }
            Message::Commit { .. } => {
                self.commits += 1;
            }
            Message::Ballot { .. } => {}
        }
    }
}
