//! Seeded N01: the pacer's wall-clock budget (a tainted return summary
//! from the other file) flows into a protocol message.

use crate::clock::Pacer;

pub struct Node {
    pacer: Pacer,
    out: Vec<Message>,
}

impl Node {
    pub fn heartbeat(&mut self) {
        let nanos = self.pacer.budget_nanos();
        self.out.push(Message::Heartbeat { nanos });
    }
}
