//! A pacer whose budget is a wall-clock read: legal in `runtime`
//! (not a deterministic crate), but its return value is tainted.

pub struct Pacer {
    started: std::time::Instant,
}

impl Pacer {
    pub fn budget_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}
