//! Fixture: real findings suppressed by well-formed pragmas.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now() // lint:allow(D02): fixture proves trailing pragmas suppress
}

pub fn stamp_again() -> Instant {
    // lint:allow(D02): fixture proves standalone pragmas cover the
    // next code line, across a wrapped reason comment.
    Instant::now()
}
