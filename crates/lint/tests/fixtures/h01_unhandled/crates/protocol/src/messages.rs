//! Fixture: a two-variant vocabulary, fully covered on the wire.
pub enum Message {
    Prepare { seq: u64 },
    Commit { seq: u64 },
}

impl Message {
    pub fn wire_size_bytes(&self) -> usize {
        match self {
            Message::Prepare { .. } => 16,
            Message::Commit { .. } => 16,
        }
    }
}
