//! Fixture codec: every variant has an arm — the gap is in the engine.
use super::Message;

pub fn tag(m: &Message) -> u8 {
    match m {
        Message::Prepare { .. } => 1,
        Message::Commit { .. } => 2,
    }
}
