//! Fixture engine: `on_message` never dispatches `Commit` — the wildcard
//! swallows it, so commits are dropped on the floor.
use protocol::Message;

pub struct Engine {
    prepares: u64,
}

impl Engine {
    pub fn on_message(&mut self, m: Message) {
        match m {
            Message::Prepare { .. } => {
                self.prepares += 1;
            }
            _ => {}
        }
    }
}
