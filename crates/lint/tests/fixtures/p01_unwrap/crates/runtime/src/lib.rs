//! Fixture: panicking I/O in transport code.
pub fn read_frame(bytes: &[u8]) -> u32 {
    let head: [u8; 4] = bytes[..4].try_into().unwrap();
    u32::from_le_bytes(head)
}
