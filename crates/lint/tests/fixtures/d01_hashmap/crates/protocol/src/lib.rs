//! Fixture: HashMap in a deterministic crate.
use std::collections::HashMap;

pub fn tally(votes: &[u64]) -> HashMap<u64, usize> {
    let mut counts = HashMap::new();
    for v in votes {
        *counts.entry(*v).or_insert(0) += 1;
    }
    counts
}
