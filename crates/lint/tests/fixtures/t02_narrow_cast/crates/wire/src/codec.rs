//! Seeded T02: a peer-declared count is narrowed with a bare `as` cast
//! on the decode path. No indexing, no unwrap — only the cast fires.

pub fn decode_count(bytes: &[u8]) -> usize {
    let mut declared = 0u64;
    for b in bytes.iter().take(8) {
        declared = (declared << 8) | u64::from(*b);
    }
    declared as usize
}
