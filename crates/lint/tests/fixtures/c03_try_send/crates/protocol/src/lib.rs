//! Fixture: `try_send` results discarded — backpressure becomes silent loss.
use std::sync::mpsc::SyncSender;

pub fn offer(tx: &SyncSender<u64>, v: u64) {
    tx.try_send(v);
}

pub fn nudge(tx: &SyncSender<u64>) {
    tx.try_send(0).ok();
}
