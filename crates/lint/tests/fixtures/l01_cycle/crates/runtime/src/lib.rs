//! Fixture: two mutexes acquired in opposite orders by two functions.
use std::sync::Mutex;

pub struct Ledger {
    pub accounts: Mutex<u64>,
    pub journal: Mutex<u64>,
}

pub fn credit(l: &Ledger) -> u64 {
    let a = l.accounts.lock().unwrap_or_else(|e| e.into_inner());
    let j = l.journal.lock().unwrap_or_else(|e| e.into_inner());
    *a + *j
}

pub fn audit(l: &Ledger) -> u64 {
    let j = l.journal.lock().unwrap_or_else(|e| e.into_inner());
    let a = l.accounts.lock().unwrap_or_else(|e| e.into_inner());
    *j - *a
}
