//! Fixture: a worker thread one call away from a `panic!`.
pub fn start() {
    std::thread::spawn(move || {
        pump();
    });
}

fn pump() {
    panic!("queue underflow");
}
