//! Fixture: a worker thread indexing a vector without a bound check.
pub fn start(vals: Vec<u64>) {
    std::thread::spawn(move || {
        let head = vals[0];
        drop(head);
    });
}
