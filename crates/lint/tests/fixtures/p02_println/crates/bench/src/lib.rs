//! Fixture: printing from library code.
pub fn report(n: usize) {
    println!("processed {n} items");
}
