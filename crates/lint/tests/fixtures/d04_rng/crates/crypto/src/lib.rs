//! Fixture: unseeded entropy in a deterministic crate.
pub fn nonce() -> u64 {
    rand::random()
}
