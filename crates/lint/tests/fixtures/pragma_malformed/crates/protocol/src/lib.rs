//! Fixture: pragmas missing a reason or naming an unknown rule.
// lint:allow(D01)
pub fn a() {}
// lint:allow(Q99): no such rule
pub fn b() {}
