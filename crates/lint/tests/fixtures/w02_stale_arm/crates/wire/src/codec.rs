//! Fixture codec: Checkpoint was removed from the enum.
use super::Message;

pub fn tag(m: &Message) -> u8 {
    match m {
        Message::PrePrepare { .. } => 1,
        Message::Checkpoint { .. } => 3,
    }
}
