//! Fixture: the enum lost a variant; the codec kept its arm.
pub enum Message {
    PrePrepare { seq: u64 },
}

impl Message {
    pub fn wire_size_bytes(&self) -> usize {
        match self {
            Message::PrePrepare { .. } => 16,
        }
    }
}
