//! Fixture: a mutex guard held across a blocking channel send.
use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn drain(state: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let staged = state.lock().unwrap_or_else(|e| e.into_inner());
    for v in staged.iter() {
        if tx.send(*v).is_err() {
            return;
        }
    }
}
