//! Fixture: the only sender is dropped at creation; `recv()` wedges.
use std::sync::mpsc::channel;

pub fn tally() -> u64 {
    let (tx, rx) = channel::<u64>();
    let mut total = 0;
    while let Ok(v) = rx.recv() {
        total += v;
    }
    total
}
