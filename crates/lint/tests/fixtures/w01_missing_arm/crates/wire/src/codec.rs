//! Fixture codec: Gossip never gained an arm.
use super::Message;

pub fn tag(m: &Message) -> u8 {
    match m {
        Message::PrePrepare { .. } => 1,
        Message::Prepare { .. } => 2,
        _ => 0,
    }
}
