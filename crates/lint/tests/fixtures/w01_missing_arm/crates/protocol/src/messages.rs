//! Fixture: a Message variant with no codec arm.
pub enum Message {
    PrePrepare { seq: u64 },
    Prepare { seq: u64 },
    Gossip { rumor: u64 },
}

impl Message {
    pub fn wire_size_bytes(&self) -> usize {
        match self {
            Message::PrePrepare { .. } => 16,
            Message::Prepare { .. } => 16,
            Message::Gossip { .. } => 8,
        }
    }
}
