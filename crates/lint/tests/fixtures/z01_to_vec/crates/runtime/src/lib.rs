//! Fixture: payload deep copy on the hot path.
pub fn forward(payload: &[u8]) -> Vec<u8> {
    payload.to_vec()
}
