//! Fixture: the receiver is dropped at creation; every send is silent loss.
use std::sync::mpsc::channel;

pub fn broadcast(values: &[u64]) {
    let (tx, rx) = channel::<u64>();
    for v in values {
        let _ = tx.send(*v);
    }
}
