//! Fixture: thread::sleep in a deterministic crate.
pub fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}
