//! Fixture: a fully covered enum and rule-clean sources.
use std::collections::BTreeMap;

pub enum Message {
    PrePrepare { seq: u64 },
    Prepare { seq: u64 },
}

impl Message {
    pub fn wire_size_bytes(&self) -> usize {
        match self {
            Message::PrePrepare { .. } => 16,
            Message::Prepare { .. } => 16,
        }
    }
}

pub fn tally(votes: &[u64]) -> BTreeMap<u64, usize> {
    let mut counts = BTreeMap::new();
    for v in votes {
        *counts.entry(*v).or_insert(0) += 1;
    }
    counts
}
