//! Fixture: a pragma that suppresses nothing.
// lint:allow(D01): nothing on the next line uses a hash map
pub fn noop() {}
