//! Seeded Q01: `large_quorum` is `2f` instead of `2f + 1`. Two such
//! quorums in an `n = 3f + 1` deployment overlap in only `f - 1`
//! replicas — all of which may be Byzantine — so two conflicting
//! commits can both certify. Availability still holds (`2f <= 2f + 1`
//! survivors), so only the intersection rule fires.

pub enum ReplicationFactor {
    TwoFPlusOne,
    ThreeFPlusOne,
}

impl ProtocolId {
    pub fn replication_factor(self) -> ReplicationFactor {
        match self {
            ProtocolId::Pbft => ReplicationFactor::ThreeFPlusOne,
            ProtocolId::MinBft => ReplicationFactor::TwoFPlusOne,
        }
    }
}

impl ReplicationFactor {
    pub fn replicas(self, f: usize) -> usize {
        match self {
            ReplicationFactor::TwoFPlusOne => 2 * f + 1,
            ReplicationFactor::ThreeFPlusOne => 3 * f + 1,
        }
    }
}

impl SystemConfig {
    pub fn small_quorum(&self) -> usize {
        self.f + 1
    }

    pub fn large_quorum(&self) -> usize {
        2 * self.f
    }
}
