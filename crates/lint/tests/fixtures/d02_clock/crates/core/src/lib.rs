//! Fixture: wall-clock reads in a deterministic crate.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
