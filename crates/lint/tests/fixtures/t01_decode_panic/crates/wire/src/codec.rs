//! Seeded T01: a decode entry point reaches a helper that indexes and
//! unwraps peer-controlled bytes two calls deep.

pub struct Ping {
    pub seq: u64,
}

pub fn decode_ping(bytes: &[u8]) -> Ping {
    Ping {
        seq: header_seq(bytes),
    }
}

fn header_seq(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().unwrap())
}
