//! Fixture: a Message variant missing from wire_size_bytes.
pub enum Message {
    PrePrepare { seq: u64 },
    Prepare { seq: u64 },
}

impl Message {
    pub fn wire_size_bytes(&self) -> usize {
        match self {
            Message::PrePrepare { .. } => 16,
            _ => 0,
        }
    }
}
