//! Fixture codec: both variants have arms; the size model lags.
use super::Message;

pub fn tag(m: &Message) -> u8 {
    match m {
        Message::PrePrepare { .. } => 1,
        Message::Prepare { .. } => 2,
    }
}
