//! flexilint — the project's own static-analysis pass.
//!
//! The repo's core guarantee (simulator ≡ channel cluster ≡ TCP cluster
//! commit sequences, invariant under worker and shard counts) rests on
//! properties no compiler checks: no wall-clock or map-iteration-order
//! nondeterminism in the deterministic crates, no payload deep copies on
//! hot paths, no panicking I/O in transport threads, and full wire-codec
//! coverage of the message vocabulary. This crate enforces them as named,
//! suppressible rules over a hand-rolled lexer (dependency-free, per the
//! offline-shim policy). See `RULES.md` for the catalog.
//!
//! Suppression: `// lint:allow(RULE): reason` on the offending line or the
//! line directly above. Reasons are mandatory, and a pragma that stops
//! suppressing anything is itself a finding (`U01`) — stale exemptions rot.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod wire;

use report::{Finding, Report};
use rules::FileClass;
use std::path::{Path, PathBuf};

/// Directory names never scanned, at any depth.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// Crate directories never scanned: the shims *implement* the wall-clock
/// and entropy surface the rules exist to keep out of everything else.
const SKIP_CRATES: &[&str] = &["shims"];

/// Lints the workspace rooted at `root`; the heart of both the CLI and
/// the self-lint test.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort();

    // Read and token-scan every file, keeping sources around: pragma
    // resolution must run once, after *all* passes (a pragma that only
    // suppresses a wire-coverage finding is used, not stale).
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    let mut all: Vec<Finding> = Vec::new();
    let mut wire_inputs = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        all.extend(rules::scan_file(&rel_str, &src, &classify(&rel_str)));
        wire_inputs.push(wire::WireInput::new(
            &rel_str,
            rel_str.starts_with("crates/wire/src"),
            &src,
        ));
        sources.push((rel_str, src));
    }
    all.extend(wire::check(&wire_inputs));

    let mut report = Report {
        files_scanned: sources.len(),
        ..Default::default()
    };
    for (rel, src) in &sources {
        let file_findings: Vec<Finding> = all.iter().filter(|f| &f.file == rel).cloned().collect();
        let (mut kept, used, pragma_findings) = suppress(rel, src, file_findings);
        report.suppressions_used += used;
        kept.extend(pragma_findings);
        attach_excerpts(src, &mut kept);
        report.findings.extend(kept);
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Splits `findings` into kept (unsuppressed) findings, counts honoured
/// pragmas, and emits U01/U02 findings for unused or malformed pragmas.
fn suppress(rel: &str, src: &str, findings: Vec<Finding>) -> (Vec<Finding>, usize, Vec<Finding>) {
    let lexed = lexer::lex(src);
    let pragmas = lexed.pragmas;
    let mut used = vec![false; pragmas.len()];
    let mut kept = Vec::new();

    // A trailing pragma covers its own line. A standalone comment pragma
    // covers the next line that holds any code — continuation comment
    // lines and blanks in between don't break the link, so a pragma's
    // reason can wrap.
    let covered_line = |p: &lexer::Pragma| -> u32 {
        if !p.own_line {
            return p.line;
        }
        lexed
            .tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > p.line)
            .unwrap_or(p.line + 1)
    };

    'finding: for f in findings {
        for (pi, p) in pragmas.iter().enumerate() {
            if !p.well_formed || p.reason.is_empty() {
                continue;
            }
            let covers = covered_line(p) == f.line || p.line == f.line;
            if covers && p.rules.iter().any(|r| r == &f.rule) {
                used[pi] = true;
                continue 'finding;
            }
        }
        kept.push(f);
    }

    let mut meta = Vec::new();
    let used_count = used.iter().filter(|u| **u).count();
    for (pi, p) in pragmas.iter().enumerate() {
        if !p.well_formed || p.reason.is_empty() {
            meta.push(Finding::new(
                rel,
                p.line,
                "U02",
                "malformed lint:allow pragma: expected `// lint:allow(RULE, ...): reason` \
                 with at least one rule id and a non-empty reason",
            ));
            continue;
        }
        if let Some(unknown) = p.rules.iter().find(|r| !rules::known_rule(r)) {
            meta.push(Finding::new(
                rel,
                p.line,
                "U02",
                format!("lint:allow names unknown rule `{unknown}`"),
            ));
            continue;
        }
        if !used[pi] {
            meta.push(Finding::new(
                rel,
                p.line,
                "U01",
                format!(
                    "unused lint:allow({}) pragma: it suppresses nothing on this or \
                     the next line; remove it",
                    p.rules.join(", ")
                ),
            ));
        }
    }
    (kept, used_count, meta)
}

/// Fills each finding's excerpt with its trimmed source line.
fn attach_excerpts(src: &str, findings: &mut [Finding]) {
    if findings.is_empty() {
        return;
    }
    let lines: Vec<&str> = src.lines().collect();
    for f in findings {
        if let Some(line) = lines.get((f.line as usize).saturating_sub(1)) {
            let mut excerpt = line.trim().to_string();
            excerpt.truncate(120);
            f.excerpt = excerpt;
        }
    }
}

/// Decides which rule families apply to a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let mut class = FileClass::default();
    // Only crate library sources participate; integration tests, benches
    // and examples are free to use clocks, unwraps and prints.
    let in_tests = rel.contains("/tests/") || rel.starts_with("tests/");
    let in_benches = rel.contains("/benches/") || rel.starts_with("benches/");
    let in_examples = rel.contains("/examples/") || rel.starts_with("examples/");
    if in_tests || in_benches || in_examples {
        return class;
    }
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    if !in_src {
        return class;
    }
    class.deterministic = rules::DETERMINISTIC_CRATES.contains(&crate_name);
    class.zero_copy = rules::ZERO_COPY_CRATES.contains(&crate_name);
    class.panic_free = rules::PANIC_FREE_CRATES.contains(&crate_name);
    // Binaries own their stdout; libraries do not.
    class.library = !rel.ends_with("/main.rs");
    class
}

/// Recursively collects `.rs` files under `dir`, as root-relative paths.
fn collect(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            // `crates/shims/*`: the shims implement the nondeterministic
            // surface; scanning them would be linting the fire brigade
            // for smelling of smoke.
            if dir.ends_with("crates") && SKIP_CRATES.contains(&name.as_ref()) {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_the_crate_map() {
        let c = classify("crates/protocol/src/quorum.rs");
        assert!(c.deterministic && c.zero_copy && c.library && !c.panic_free);
        let c = classify("crates/runtime/src/tcp.rs");
        assert!(!c.deterministic && c.zero_copy && c.panic_free && c.library);
        let c = classify("crates/exec/src/executor.rs");
        assert!(c.deterministic && c.panic_free);
        let c = classify("crates/lint/src/main.rs");
        assert!(!c.library, "binaries own their stdout");
        let c = classify("crates/protocol/tests/foo.rs");
        assert!(!c.deterministic && !c.library);
        let c = classify("tests/cross_host.rs");
        assert!(!c.deterministic && !c.library);
        let c = classify("crates/bench/benches/throughput.rs");
        assert!(!c.library);
        let c = classify("src/lib.rs");
        assert!(!c.deterministic && c.library);
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = "\
// lint:allow(P01): reason above
x.unwrap();
y.unwrap(); // lint:allow(P01): trailing reason
z.unwrap();
";
        let findings = vec![
            Finding::new("f.rs", 2, "P01", "m"),
            Finding::new("f.rs", 3, "P01", "m"),
            Finding::new("f.rs", 4, "P01", "m"),
        ];
        let (kept, used, meta) = suppress("f.rs", src, findings);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 4);
        assert_eq!(used, 2);
        assert!(meta.is_empty());
    }

    #[test]
    fn unused_and_malformed_pragmas_are_findings() {
        let src = "\
// lint:allow(P01): nothing here to suppress
let a = 1;
// lint:allow(P01)
// lint:allow(NOPE): unknown rule
";
        let (kept, used, meta) = suppress("f.rs", src, Vec::new());
        assert!(kept.is_empty());
        assert_eq!(used, 0);
        let rules: Vec<&str> = meta.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, vec!["U01", "U02", "U02"]);
    }

    #[test]
    fn pragma_for_a_different_rule_does_not_suppress() {
        let src = "x.unwrap(); // lint:allow(D01): wrong rule\n";
        let findings = vec![Finding::new("f.rs", 1, "P01", "m")];
        let (kept, _, meta) = suppress("f.rs", src, findings);
        assert_eq!(kept.len(), 1);
        // And the pragma is unused on top of it.
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0].rule, "U01");
    }
}
