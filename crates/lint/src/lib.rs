//! flexilint — the project's own static-analysis pass.
//!
//! The repo's core guarantee (simulator ≡ channel cluster ≡ TCP cluster
//! commit sequences, invariant under worker and shard counts) rests on
//! properties no compiler checks: no wall-clock or map-iteration-order
//! nondeterminism in the deterministic crates, no payload deep copies on
//! hot paths, no panicking I/O in transport threads, and full wire-codec
//! coverage of the message vocabulary. This crate enforces them as named,
//! suppressible rules over a hand-rolled lexer (dependency-free, per the
//! offline-shim policy). See `RULES.md` for the catalog.
//!
//! Suppression: `// lint:allow(RULE): reason` on the offending line or the
//! line directly above. Reasons are mandatory, and a pragma that stops
//! suppressing anything is itself a finding (`U01`) — stale exemptions rot.
//!
//! Three layers of analysis share one front end: the token-pattern rules
//! (D/Z/P) scan each file's token stream flat; the structural analyses
//! (W/C/H) work on the [`parser`]'s item/block/call structure; and the
//! dataflow analyses (L/X/T/N/Q) run over the whole-workspace transitive
//! call graph built once per run by [`graph`]. Every file is read, lexed
//! and parsed exactly once into a [`SourceFile`] that all passes share,
//! and every pass's wall time is reported so memoization regressions in
//! the graph show up in CI, not as silent slowdown.

pub mod channels;
pub mod graph;
pub mod handlers;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod parser;
pub mod quorum;
pub mod report;
pub mod rules;
pub mod taint;
pub mod wire;

use report::{Finding, Report};
use rules::FileClass;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One scanned file: its path-derived classification, token stream,
/// pragmas and parse tree — built once, shared by every pass.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// The crate directory name under `crates/`; empty for the facade.
    pub crate_name: String,
    /// Which rule families apply.
    pub class: FileClass,
    /// Tokens and suppression pragmas.
    pub lexed: lexer::Lexed,
    /// Item/block/call structure.
    pub parsed: parser::ParsedFile,
}

impl SourceFile {
    /// Reads one source into every representation the passes need.
    pub fn new(rel: &str, src: &str) -> Self {
        let lexed = lexer::lex(src);
        let parsed = parser::parse(&lexed.tokens);
        SourceFile {
            rel: rel.to_string(),
            crate_name: rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .unwrap_or("")
                .to_string(),
            class: classify(rel),
            lexed,
            parsed,
        }
    }

    /// The file's token stream.
    pub fn tokens(&self) -> &[lexer::Token] {
        &self.lexed.tokens
    }
}

/// Directory names never scanned, at any depth.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// Crate directories never scanned: the shims *implement* the wall-clock
/// and entropy surface the rules exist to keep out of everything else.
const SKIP_CRATES: &[&str] = &["shims"];

/// Lints the workspace rooted at `root`; the heart of both the CLI and
/// the self-lint test.
pub fn run(root: &Path) -> std::io::Result<Report> {
    run_with_rules(root, None)
}

/// Like [`run`], restricted to the rule ids in `only` when given.
///
/// Suppression still resolves against the *full* finding set first, so a
/// pragma for an unselected rule is neither honoured-and-hidden nor
/// misreported as stale; the filter applies to what is reported.
pub fn run_with_rules(root: &Path, only: Option<&BTreeSet<String>>) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort();

    // Read, lex and parse every file exactly once; pragma resolution must
    // run after *all* passes (a pragma that only suppresses a cross-file
    // finding is used, not stale).
    let mut sources: Vec<SourceFile> = Vec::with_capacity(files.len());
    let mut raws: Vec<String> = Vec::with_capacity(files.len());
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        sources.push(SourceFile::new(&rel_str, &src));
        raws.push(src);
    }

    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut timed = |label: &str, t0: Instant| {
        timings.push((label.to_string(), t0.elapsed().as_secs_f64() * 1e3));
    };

    let mut all: Vec<Finding> = Vec::new();
    let t0 = Instant::now();
    for f in &sources {
        all.extend(rules::scan_file(&f.rel, f.tokens(), &f.class));
    }
    timed("tokens", t0);

    let t0 = Instant::now();
    let graph = graph::CallGraph::build(&sources);
    timed("graph", t0);

    let t0 = Instant::now();
    all.extend(wire::check(&sources));
    timed("wire", t0);
    let t0 = Instant::now();
    all.extend(locks::check(&sources, &graph));
    timed("locks", t0);
    let t0 = Instant::now();
    all.extend(channels::check(&sources));
    timed("channels", t0);
    let t0 = Instant::now();
    all.extend(handlers::check(&sources));
    timed("handlers", t0);
    let t0 = Instant::now();
    all.extend(panics::check(&sources, &graph));
    timed("panics", t0);
    let t0 = Instant::now();
    all.extend(taint::check(&sources, &graph));
    timed("taint", t0);
    let t0 = Instant::now();
    all.extend(quorum::check(&sources));
    timed("quorum", t0);

    let mut report = Report {
        files_scanned: sources.len(),
        timings_ms: timings,
        ..Default::default()
    };
    for (f, src) in sources.iter().zip(&raws) {
        let file_findings: Vec<Finding> = all.iter().filter(|x| x.file == f.rel).cloned().collect();
        let (mut kept, used, pragma_findings) = suppress(&f.rel, &f.lexed, file_findings);
        report.suppressions_used += used;
        kept.extend(pragma_findings);
        attach_excerpts(src, &mut kept);
        report.findings.extend(kept);
    }

    if let Some(only) = only {
        report.findings.retain(|f| only.contains(&f.rule));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Splits `findings` into kept (unsuppressed) findings, counts honoured
/// pragmas, and emits U01/U02 findings for unused or malformed pragmas.
fn suppress(
    rel: &str,
    lexed: &lexer::Lexed,
    findings: Vec<Finding>,
) -> (Vec<Finding>, usize, Vec<Finding>) {
    let pragmas = &lexed.pragmas;
    let mut used = vec![false; pragmas.len()];
    let mut kept = Vec::new();

    // A trailing pragma covers its own line. A standalone comment pragma
    // covers the next line that holds any code — continuation comment
    // lines and blanks in between don't break the link, so a pragma's
    // reason can wrap.
    let covered_line = |p: &lexer::Pragma| -> u32 {
        if !p.own_line {
            return p.line;
        }
        lexed
            .tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > p.line)
            .unwrap_or(p.line + 1)
    };

    'finding: for f in findings {
        for (pi, p) in pragmas.iter().enumerate() {
            if !p.well_formed || p.reason.is_empty() {
                continue;
            }
            let covers = covered_line(p) == f.line || p.line == f.line;
            if covers && p.rules.iter().any(|r| r == &f.rule) {
                used[pi] = true;
                continue 'finding;
            }
        }
        kept.push(f);
    }

    let mut meta = Vec::new();
    let used_count = used.iter().filter(|u| **u).count();
    for (pi, p) in pragmas.iter().enumerate() {
        if !p.well_formed || p.reason.is_empty() {
            meta.push(Finding::new(
                rel,
                p.line,
                "U02",
                "malformed lint:allow pragma: expected `// lint:allow(RULE, ...): reason` \
                 with at least one rule id and a non-empty reason",
            ));
            continue;
        }
        if let Some(unknown) = p.rules.iter().find(|r| !rules::known_rule(r)) {
            meta.push(Finding::new(
                rel,
                p.line,
                "U02",
                format!("lint:allow names unknown rule `{unknown}`"),
            ));
            continue;
        }
        if !used[pi] {
            meta.push(Finding::new(
                rel,
                p.line,
                "U01",
                format!(
                    "unused lint:allow({}) pragma: it suppresses nothing on this or \
                     the next line; remove it",
                    p.rules.join(", ")
                ),
            ));
        }
    }
    (kept, used_count, meta)
}

/// Fills each finding's excerpt with its trimmed source line.
fn attach_excerpts(src: &str, findings: &mut [Finding]) {
    if findings.is_empty() {
        return;
    }
    let lines: Vec<&str> = src.lines().collect();
    for f in findings {
        if let Some(line) = lines.get((f.line as usize).saturating_sub(1)) {
            let mut excerpt = line.trim().to_string();
            excerpt.truncate(120);
            f.excerpt = excerpt;
        }
    }
}

/// Decides which rule families apply to a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let mut class = FileClass::default();
    // Only crate library sources participate; integration tests, benches
    // and examples are free to use clocks, unwraps and prints.
    let in_tests = rel.contains("/tests/") || rel.starts_with("tests/");
    let in_benches = rel.contains("/benches/") || rel.starts_with("benches/");
    let in_examples = rel.contains("/examples/") || rel.starts_with("examples/");
    if in_tests || in_benches || in_examples {
        return class;
    }
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    if !in_src {
        return class;
    }
    class.deterministic = rules::DETERMINISTIC_CRATES.contains(&crate_name);
    class.zero_copy = rules::ZERO_COPY_CRATES.contains(&crate_name);
    class.panic_free = rules::PANIC_FREE_CRATES.contains(&crate_name);
    // Binaries own their stdout; libraries do not.
    class.library = !rel.ends_with("/main.rs");
    class.locks = rules::LOCK_CRATES.contains(&crate_name);
    // Channel topology is a concern wherever channels exist — any source.
    class.channels = true;
    class.handlers = rules::HANDLER_CRATES.contains(&crate_name);
    class
}

/// Recursively collects `.rs` files under `dir`, as root-relative paths.
fn collect(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            // `crates/shims/*`: the shims implement the nondeterministic
            // surface; scanning them would be linting the fire brigade
            // for smelling of smoke.
            if dir.ends_with("crates") && SKIP_CRATES.contains(&name.as_ref()) {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_the_crate_map() {
        let c = classify("crates/protocol/src/quorum.rs");
        assert!(c.deterministic && c.zero_copy && c.library && !c.panic_free);
        assert!(!c.locks && c.channels && !c.handlers);
        let c = classify("crates/runtime/src/tcp.rs");
        assert!(!c.deterministic && c.zero_copy && c.panic_free && c.library);
        assert!(c.locks && c.channels && !c.handlers);
        let c = classify("crates/exec/src/executor.rs");
        assert!(c.deterministic && c.panic_free && c.locks);
        let c = classify("crates/core/src/flexi_bft.rs");
        assert!(c.handlers && !c.locks);
        let c = classify("crates/baselines/src/common.rs");
        assert!(c.handlers);
        let c = classify("crates/core/tests/foo.rs");
        assert!(!c.handlers && !c.channels, "tests carry no graph rules");
        let c = classify("crates/lint/src/main.rs");
        assert!(!c.library, "binaries own their stdout");
        let c = classify("crates/protocol/tests/foo.rs");
        assert!(!c.deterministic && !c.library);
        let c = classify("tests/cross_host.rs");
        assert!(!c.deterministic && !c.library);
        let c = classify("crates/bench/benches/throughput.rs");
        assert!(!c.library);
        let c = classify("src/lib.rs");
        assert!(!c.deterministic && c.library);
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = "\
// lint:allow(P01): reason above
x.unwrap();
y.unwrap(); // lint:allow(P01): trailing reason
z.unwrap();
";
        let findings = vec![
            Finding::new("f.rs", 2, "P01", "m"),
            Finding::new("f.rs", 3, "P01", "m"),
            Finding::new("f.rs", 4, "P01", "m"),
        ];
        let (kept, used, meta) = suppress("f.rs", &lexer::lex(src), findings);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 4);
        assert_eq!(used, 2);
        assert!(meta.is_empty());
    }

    #[test]
    fn unused_and_malformed_pragmas_are_findings() {
        let src = "\
// lint:allow(P01): nothing here to suppress
let a = 1;
// lint:allow(P01)
// lint:allow(NOPE): unknown rule
";
        let (kept, used, meta) = suppress("f.rs", &lexer::lex(src), Vec::new());
        assert!(kept.is_empty());
        assert_eq!(used, 0);
        let rules: Vec<&str> = meta.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, vec!["U01", "U02", "U02"]);
    }

    #[test]
    fn pragma_for_a_different_rule_does_not_suppress() {
        let src = "x.unwrap(); // lint:allow(D01): wrong rule\n";
        let findings = vec![Finding::new("f.rs", 1, "P01", "m")];
        let (kept, _, meta) = suppress("f.rs", &lexer::lex(src), findings);
        assert_eq!(kept.len(), 1);
        // And the pragma is unused on top of it.
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0].rule, "U01");
    }
}
