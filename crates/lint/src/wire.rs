//! The W-rule: wire-format coverage of the `Message` enum.
//!
//! A new `Message` variant that never gained codec support used to fail
//! only when a cross-host test happened to exercise it. This pass makes
//! it fail at lint time instead: every variant of `pub enum Message` must
//! be referenced (as `Message::Variant`) in the wire crate's sources AND
//! appear in the `wire_size_bytes` accounting next to the enum — and,
//! conversely, the codec must not reference variants the enum no longer
//! has (a removed variant leaving a stale arm or tag behind).

use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::SourceFile;

/// Whether a file belongs to the wire (codec) crate.
fn is_wire_crate(f: &SourceFile) -> bool {
    f.rel.starts_with("crates/wire/src")
}

/// Runs the wire-coverage pass over the whole file set.
///
/// Quiet when no `pub enum Message` exists anywhere (a fixture tree or a
/// foreign workspace): the rule is about keeping an existing contract
/// covered, not about demanding one.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Locate the enum declaration and collect its variants.
    let decl = files
        .iter()
        .find_map(|f| find_enum(f.tokens()).map(|(vars, line)| (f, vars, line)));
    let Some((decl_file, variants, decl_line)) = decl else {
        return findings;
    };

    // Collect every `Message :: CamelCase` reference in the wire crate,
    // and the identifiers inside the declaring file's `wire_size_bytes`.
    let mut codec_refs: Vec<(String, String, u32)> = Vec::new();
    for f in files.iter().filter(|f| is_wire_crate(f)) {
        for (name, line) in message_refs(f.tokens()) {
            codec_refs.push((name, f.rel.clone(), line));
        }
    }
    let size_idents = fn_body_idents(decl_file.tokens(), "wire_size_bytes");

    for v in &variants {
        if !codec_refs.iter().any(|(name, _, _)| name == v) {
            findings.push(Finding::new(
                &decl_file.rel,
                decl_line,
                "W01",
                format!(
                    "Message::{v} has no codec arm in the wire crate: a frame for it \
                     can be neither encoded nor decoded"
                ),
            ));
        }
        if !size_idents.contains(v) {
            findings.push(Finding::new(
                &decl_file.rel,
                decl_line,
                "W01",
                format!(
                    "Message::{v} is not accounted in wire_size_bytes: the bandwidth \
                     model would charge it nothing"
                ),
            ));
        }
    }

    for (name, rel, line) in &codec_refs {
        if !variants.iter().any(|v| v == name) {
            findings.push(Finding::new(
                rel,
                *line,
                "W02",
                format!(
                    "wire codec references Message::{name}, which is not a variant of \
                     the Message enum (stale arm after a variant removal?)"
                ),
            ));
        }
    }

    findings
}

/// Finds `pub enum Message { ... }` and returns its variant names and the
/// declaration line. Shared with the handler-exhaustiveness pass.
pub(crate) fn find_enum(tokens: &[Token]) -> Option<(Vec<String>, u32)> {
    for i in 0..tokens.len() {
        if tokens[i].is_ident("enum")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("Message"))
            && i >= 1
            && tokens[i - 1].is_ident("pub")
        {
            let open = (i + 2..tokens.len()).find(|&k| tokens[k].is_punct('{'))?;
            let mut variants = Vec::new();
            let mut depth = 0usize;
            for t in &tokens[open..] {
                if t.is_punct('{') {
                    depth += 1;
                    continue;
                }
                if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    continue;
                }
                // Variant names are the depth-1 identifiers that start a
                // field (skip tokens inside variant bodies and generics).
                if depth == 1
                    && t.kind == TokenKind::Ident
                    && t.text.chars().next().is_some_and(char::is_uppercase)
                    && !variants.contains(&t.text)
                {
                    // Only count it if the previous meaningful token was
                    // `{` or `,` — i.e. it opens a variant.
                    variants.push(t.text.clone());
                }
            }
            return Some((filter_variant_names(tokens, open, variants), tokens[i].line));
        }
    }
    None
}

/// Second pass over the enum body: keep only identifiers immediately
/// preceded by `{` or `,` at depth 1 (true variant openers, not field
/// types like `Vec` or `Option`).
fn filter_variant_names(tokens: &[Token], open: usize, candidates: Vec<String>) -> Vec<String> {
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut parens = 0usize;
    let mut expect_variant = false;
    for t in &tokens[open..] {
        if t.is_punct('{') {
            depth += 1;
            if depth == 1 {
                expect_variant = true;
            }
            continue;
        }
        if t.is_punct('}') {
            if depth == 0 {
                break;
            }
            depth -= 1;
            if depth == 0 {
                break;
            }
            continue;
        }
        if t.is_punct('(') {
            parens += 1;
            expect_variant = false;
            continue;
        }
        if t.is_punct(')') {
            parens = parens.saturating_sub(1);
            continue;
        }
        // A tuple variant's field separators live inside parens; only a
        // top-level comma announces the next variant.
        if depth == 1 && parens == 0 && t.is_punct(',') {
            expect_variant = true;
            continue;
        }
        if depth == 1 && t.is_punct('#') {
            // Variant attribute: still expecting the variant name after it.
            continue;
        }
        if depth == 1 && parens == 0 && expect_variant && t.kind == TokenKind::Ident {
            if candidates.contains(&t.text) && !variants.contains(&t.text) {
                variants.push(t.text.clone());
            }
            expect_variant = false;
        }
        if depth >= 2 {
            expect_variant = false;
        }
    }
    variants
}

/// Every `Message :: CamelCase` path reference with its line.
fn message_refs(tokens: &[Token]) -> Vec<(String, u32)> {
    let mut refs = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("Message") && tokens.get(i + 1).is_some_and(|t| t.is_op("::")) {
            if let Some(t) = tokens.get(i + 2) {
                if t.kind == TokenKind::Ident
                    && t.text.chars().next().is_some_and(char::is_uppercase)
                {
                    refs.push((t.text.clone(), t.line));
                }
            }
        }
    }
    refs
}

/// Identifiers inside the bodies of every `fn name` in the file, unioned
/// (several types may define a method of the same name — `ClientReply`
/// and `Message` both have a `wire_size_bytes`).
fn fn_body_idents(tokens: &[Token], name: &str) -> Vec<String> {
    let mut idents = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            let Some(open) = (i + 2..tokens.len()).find(|&k| tokens[k].is_punct('{')) else {
                continue;
            };
            let mut depth = 0usize;
            for t in &tokens[open..] {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident && !idents.contains(&t.text) {
                    idents.push(t.text.clone());
                }
            }
        }
    }
    idents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const ENUM_SRC: &str = r#"
        pub enum Message {
            PrePrepare { view: View, batch: Batch },
            Prepare { view: View, digest: Digest },
            Gossip { rumor: Vec<u8> },
        }
        impl Message {
            pub fn wire_size_bytes(&self) -> usize {
                match self {
                    Message::PrePrepare { batch, .. } => batch.wire_size(),
                    Message::Prepare { .. } => 32,
                    Message::Gossip { rumor } => rumor.len(),
                }
            }
        }
    "#;

    fn codec(src: &str) -> SourceFile {
        SourceFile::new("crates/wire/src/codec.rs", src)
    }

    fn decl() -> SourceFile {
        SourceFile::new("crates/protocol/src/messages.rs", ENUM_SRC)
    }

    #[test]
    fn variant_names_are_extracted_not_field_types() {
        let lexed = lex(ENUM_SRC);
        let (vars, _) = find_enum(&lexed.tokens).expect("enum found");
        assert_eq!(vars, vec!["PrePrepare", "Prepare", "Gossip"]);
    }

    #[test]
    fn covered_enum_is_clean() {
        let files = vec![
            decl(),
            codec("fn enc(m: &Message) { match m { Message::PrePrepare{..} => {} Message::Prepare{..} => {} Message::Gossip{..} => {} } }"),
        ];
        assert!(check(&files).is_empty());
    }

    #[test]
    fn missing_codec_arm_is_w01() {
        let files = vec![
            decl(),
            codec("fn enc(m: &Message) { match m { Message::PrePrepare{..} => {} Message::Prepare{..} => {} _ => {} } }"),
        ];
        let found = check(&files);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "W01");
        assert!(found[0].message.contains("Gossip"));
    }

    #[test]
    fn stale_codec_arm_is_w02() {
        let files = vec![
            decl(),
            codec("fn enc(m: &Message) { match m { Message::PrePrepare{..} => {} Message::Prepare{..} => {} Message::Gossip{..} => {} Message::Removed{..} => {} } }"),
        ];
        let found = check(&files);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "W02");
        assert!(found[0].message.contains("Removed"));
    }

    #[test]
    fn missing_wire_size_accounting_is_w01() {
        let src = r#"
            pub enum Message { A { x: u8 }, B { y: u8 } }
            impl Message {
                pub fn wire_size_bytes(&self) -> usize {
                    match self { Message::A { .. } => 1, _ => 0 }
                }
            }
        "#;
        let files = vec![
            SourceFile::new("m.rs", src),
            codec("fn enc(m: &Message) { match m { Message::A{..} => {} Message::B{..} => {} } }"),
        ];
        let found = check(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("B is not accounted"));
    }

    #[test]
    fn no_enum_anywhere_is_quiet() {
        let files = vec![codec("fn enc() {}")];
        assert!(check(&files).is_empty());
    }
}
