//! The `flexilint` CLI: scans the workspace, prints diagnostics, and
//! exits nonzero on any unsuppressed finding — the CI gate.
//!
//! ```text
//! flexilint --workspace             # lint the enclosing workspace
//! flexilint --workspace --json     # machine output (CI artifact)
//! flexilint --format github        # GitHub Actions annotations
//! flexilint --root some/dir        # lint an arbitrary tree (fixtures)
//! flexilint --rules                # print the rule catalog
//! flexilint --rules L01,L02 ...    # restrict the run to those rules
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut only: Option<BTreeSet<String>> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!(
                        "flexilint: --format needs one of human|json|github, got {}",
                        other.map_or_else(|| "nothing".to_string(), |o| format!("`{o}`"))
                    );
                    return ExitCode::from(2);
                }
            },
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("flexilint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                // Bare `--rules` prints the catalog; with a comma-separated
                // id list it restricts the run. Unknown ids are a usage
                // error, never silently ignored: a typo'd gate that lints
                // nothing is worse than no gate.
                let ids = match args.peek() {
                    Some(v) if !v.starts_with('-') => args.next(),
                    _ => None,
                };
                let Some(ids) = ids else {
                    for (id, summary) in flexilint::rules::RULES {
                        println!("{id}  {summary}");
                    }
                    return ExitCode::SUCCESS;
                };
                let mut set = only.unwrap_or_default();
                for id in ids.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    if !flexilint::rules::known_rule(id) {
                        eprintln!("flexilint: unknown rule id `{id}`; valid rules are:");
                        for (known, summary) in flexilint::rules::RULES {
                            eprintln!("  {known}  {summary}");
                        }
                        return ExitCode::from(2);
                    }
                    set.insert(id.to_string());
                }
                if set.is_empty() {
                    eprintln!("flexilint: --rules got an empty id list");
                    return ExitCode::from(2);
                }
                only = Some(set);
            }
            "--help" | "-h" => {
                println!(
                    "flexilint: determinism / zero-copy / panic-safety / wire-coverage / \
                     lock-order / channel-topology / handler-exhaustiveness / \
                     panic-propagation lint, plus call-graph dataflow: untrusted-input \
                     panic reachability, determinism taint, quorum arithmetic\n\
                     usage: flexilint [--workspace] [--root DIR] [--json] \
                     [--format human|json|github] [--rules [IDS]]\n\
                     exit status: 0 clean, 1 findings, 2 usage or I/O error"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flexilint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            if !workspace {
                eprintln!("flexilint: pass --workspace or --root DIR (try --help)");
                return ExitCode::from(2);
            }
            match workspace_root() {
                Some(r) => r,
                None => {
                    eprintln!("flexilint: no workspace Cargo.toml above the current directory");
                    return ExitCode::from(2);
                }
            }
        }
    };

    match flexilint::run_with_rules(&root, only.as_ref()) {
        Ok(report) => {
            match format {
                Format::Human => print!("{}", report.human()),
                Format::Json => print!("{}", report.json()),
                Format::Github => print!("{}", report.github()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("flexilint: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` holding a
/// `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(body) = std::fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
