//! The `flexilint` CLI: scans the workspace, prints diagnostics, and
//! exits nonzero on any unsuppressed finding — the CI gate.
//!
//! ```text
//! flexilint --workspace            # lint the enclosing workspace
//! flexilint --workspace --json    # machine output (CI artifact)
//! flexilint --root some/dir       # lint an arbitrary tree (fixtures)
//! flexilint --rules               # print the rule catalog
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("flexilint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for (id, summary) in flexilint::rules::RULES {
                    println!("{id}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "flexilint: determinism / zero-copy / panic-safety / wire-coverage lint\n\
                     usage: flexilint [--workspace] [--root DIR] [--json] [--rules]\n\
                     exit status: 0 clean, 1 findings, 2 usage or I/O error"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flexilint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            if !workspace {
                eprintln!("flexilint: pass --workspace or --root DIR (try --help)");
                return ExitCode::from(2);
            }
            match workspace_root() {
                Some(r) => r,
                None => {
                    eprintln!("flexilint: no workspace Cargo.toml above the current directory");
                    return ExitCode::from(2);
                }
            }
        }
    };

    match flexilint::run(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.json());
            } else {
                print!("{}", report.human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("flexilint: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` holding a
/// `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(body) = std::fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
