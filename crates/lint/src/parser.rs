//! A lightweight recursive-descent parse layer over the lexer.
//!
//! The token-pattern rules (D/Z/P/W) work on flat identifier sequences;
//! the graph analyses (L/C/H/X) need *structure*: which function a token
//! belongs to, where its enclosing block ends, what a function calls, and
//! which closure is handed to a `spawn`. This module parses the token
//! stream into exactly that much tree — function items with body ranges,
//! the block nesting, call expressions, and closure bodies — and no more.
//! It never resolves types, and malformed input degrades to fewer items,
//! never a panic (rustc rejects such files anyway, so precision on them
//! is worthless).

use crate::lexer::{Token, TokenKind};

/// One `fn` item (free function, method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range: indices of the opening `{` and its matching `}`
    /// (inclusive). `None` for bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// The self type of the enclosing `impl` block, if any: `Reader` for a
    /// fn inside `impl Reader` or `impl Codec for Reader`. The call graph
    /// keys method resolution on this.
    pub owner: Option<String>,
}

/// One brace pair `{ ... }` of any kind (fn body, match body, struct
/// literal, ...), by the token indices of its braces.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Index of the opening `{`.
    pub open: usize,
    /// Index of the matching `}`.
    pub close: usize,
}

/// A call expression: `name(...)`, `recv.name(...)`, or `path::name(...)`
/// (turbofish tolerated).
#[derive(Debug, Clone)]
pub struct Call {
    /// The callee's final path segment / method name.
    pub name: String,
    /// Token index of the callee identifier.
    pub idx: usize,
    /// 1-based source line of the callee identifier.
    pub line: u32,
    /// Whether the callee is invoked as a method (`.name(...)`).
    pub is_method: bool,
    /// Token indices of the argument list's `(` and matching `)`.
    pub args: (usize, usize),
    /// The path segment immediately before the callee (`Reader` in
    /// `Reader::new(...)`, `codec` in `codec::read_batch(...)`), if any.
    pub qualifier: Option<String>,
}

/// The parse tree of one file: its functions and its block nesting.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item in source order.
    pub fns: Vec<FnDef>,
    /// Every brace pair, ordered by opening index.
    pub blocks: Vec<Block>,
}

impl ParsedFile {
    /// The innermost block strictly containing token index `idx`.
    pub fn enclosing_block(&self, idx: usize) -> Option<Block> {
        self.blocks
            .iter()
            .filter(|b| b.open < idx && idx < b.close)
            .min_by_key(|b| b.close - b.open)
            .copied()
    }
}

/// Parses a lexed token stream into its item/block structure.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let test = test_regions(tokens);
    let impls = impl_regions(tokens);

    let mut blocks = Vec::new();
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                blocks.push(Block { open, close: i });
            }
        }
    }
    blocks.sort_by_key(|b| b.open);

    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            // Walk the signature to the body `{` (or the `;` of a bodyless
            // declaration). Paren/bracket depth guards against braces
            // inside default expressions; `where` clauses pass through
            // because their bounds hold no braces.
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut body = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('{') {
                    body = matching(tokens, j, '{', '}').map(|c| (j, c));
                    break;
                } else if depth == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            fns.push(FnDef {
                name: tokens[i + 1].text.clone(),
                line: tokens[i].line,
                body,
                in_test: in_region(&test, i),
                owner: impls
                    .iter()
                    .filter(|r| r.open < i && i < r.close)
                    .min_by_key(|r| r.close - r.open)
                    .map(|r| r.owner.clone()),
            });
            // Resume right after the name so fns nested in this body are
            // found too.
            i += 2;
            continue;
        }
        i += 1;
    }
    ParsedFile { fns, blocks }
}

/// One `impl` block's brace range plus the self type it implements on.
struct ImplRegion {
    open: usize,
    close: usize,
    owner: String,
}

/// Every `impl` block, with its self type: the last path segment collected
/// at angle-bracket depth 0 before the body brace. A `for` resets the
/// collection (`impl Codec for Reader` owns `Reader`, not `Codec`); a
/// `where` clause stops it. Safe without type context because `->` and
/// `=>` are merged tokens and `>>` never is, so angle depth balances.
fn impl_regions(tokens: &[Token]) -> Vec<ImplRegion> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut owner: Option<String> = None;
        let mut angle = 0i32;
        let mut j = i + 1;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 {
                if t.is_punct('{') {
                    open = Some(j);
                    break;
                }
                if t.is_punct(';') || t.is_ident("where") {
                    // `where` bounds can mention braced const expressions;
                    // scan on to the body brace without collecting names.
                    while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                        j += 1;
                    }
                    if tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                        open = Some(j);
                    }
                    break;
                }
                if t.is_ident("for") {
                    owner = None;
                } else if t.kind == TokenKind::Ident {
                    owner = Some(t.text.clone());
                }
            }
            j += 1;
        }
        let (Some(open_idx), Some(owner)) = (open, owner) else {
            i = j.max(i + 1);
            continue;
        };
        if let Some(close) = matching(tokens, open_idx, '{', '}') {
            out.push(ImplRegion {
                open: open_idx,
                close,
                owner,
            });
            // Resume inside the body: impls don't nest directly, but a fn
            // body inside can hold another impl.
            i = open_idx + 1;
            continue;
        }
        i = j.max(i + 1);
    }
    out
}

/// Keywords that read like call syntax but aren't calls (`if (x)`,
/// `while (x)`, `return (x)`, ...).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "move", "fn", "let", "in", "as", "else",
];

/// Collects every call expression whose callee identifier lies in the
/// inclusive token range.
pub fn calls_in(tokens: &[Token], range: (usize, usize)) -> Vec<Call> {
    let mut out = Vec::new();
    let (start, end) = range;
    for k in start..=end.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // Optional turbofish between the callee and its argument list.
        let mut a = k + 1;
        if tokens.get(a).is_some_and(|t| t.is_op("::"))
            && tokens.get(a + 1).is_some_and(|t| t.is_punct('<'))
        {
            match matching(tokens, a + 1, '<', '>') {
                Some(close) => a = close + 1,
                None => continue,
            }
        }
        if !tokens.get(a).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if k >= 1 && tokens[k - 1].is_ident("fn") {
            continue;
        }
        if let Some(close) = matching(tokens, a, '(', ')') {
            let qualifier =
                (k >= 2 && tokens[k - 1].is_op("::") && tokens[k - 2].kind == TokenKind::Ident)
                    .then(|| tokens[k - 2].text.clone());
            out.push(Call {
                name: t.text.clone(),
                idx: k,
                line: t.line,
                is_method: k >= 1 && tokens[k - 1].is_punct('.'),
                args: (a, close),
                qualifier,
            });
        }
    }
    out
}

/// The body token range of the first closure among a call's arguments:
/// `spawn(move || { ... })` or `spawn(|x| expr)`. A braced body returns
/// its brace pair; an expression body runs to the call's closing paren or
/// the next top-level comma.
pub fn closure_body(tokens: &[Token], args: (usize, usize)) -> Option<(usize, usize)> {
    let (open, close) = args;
    let mut depth = 0i32;
    let mut k = open + 1;
    while k < close {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('|') {
            // Parameter list up to the closing `|` (params never contain a
            // bare `|`; an empty list `||` closes immediately).
            let mut p = k + 1;
            while p < close && !tokens[p].is_punct('|') {
                p += 1;
            }
            let body_start = p + 1;
            if body_start >= close {
                return None;
            }
            if tokens[body_start].is_punct('{') {
                let end = matching(tokens, body_start, '{', '}')?;
                return Some((body_start, end));
            }
            let mut q = body_start;
            let mut d = 0i32;
            while q < close {
                let t = &tokens[q];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    d -= 1;
                } else if d == 0 && t.is_punct(',') {
                    break;
                }
                q += 1;
            }
            return Some((body_start, q.saturating_sub(1).max(body_start)));
        }
        k += 1;
    }
    None
}

/// Token-index ranges covered by `#[cfg(test)]`-gated items.
///
/// Matches the attribute sequence `# [ cfg ( test ) ]` (also `#[cfg(any(
/// test, ...))]` via a containment scan) and skips the following item's
/// braced body. Attributes stacked between the cfg and the item are walked
/// over.
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Scan the attribute's bracket group for `cfg ( .. test .. )`.
            let close = match matching(tokens, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            let is_cfg_test = tokens[i + 2..close]
                .first()
                .is_some_and(|t| t.is_ident("cfg"))
                && tokens[i + 2..close].iter().any(|t| t.is_ident("test"));
            if !is_cfg_test {
                i = close + 1;
                continue;
            }
            // Walk over any further attributes to the item, then skip its
            // braced body (fn, mod, impl, struct ...). Items ending in `;`
            // (like `mod tests;`) end the region at the semicolon.
            let mut j = close + 1;
            while tokens[j..].first().is_some_and(|t| t.is_punct('#'))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
            {
                match matching(tokens, j + 1, '[', ']') {
                    Some(c) => j = c + 1,
                    None => return regions,
                }
            }
            let mut k = j;
            while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                k += 1;
            }
            if k < tokens.len() && tokens[k].is_punct('{') {
                if let Some(end) = matching(tokens, k, '{', '}') {
                    regions.push((i, end));
                    i = end + 1;
                    continue;
                }
            }
            regions.push((i, k));
            i = k + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Index of the token closing the group opened at `open_idx`.
pub(crate) fn matching(
    tokens: &[Token],
    open_idx: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the token opening the group closed at `close_idx`.
pub(crate) fn matching_backward(
    tokens: &[Token],
    close_idx: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for k in (0..=close_idx).rev() {
        let t = &tokens[k];
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Whether token index `i` falls inside any of `regions`.
pub(crate) fn in_region(regions: &[(usize, usize)], i: usize) -> bool {
    regions.iter().any(|&(a, b)| i >= a && i <= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_items_get_names_lines_and_body_ranges() {
        let src = "fn a() { f(); }\ntrait T { fn b(&self); }\nfn c() { fn inner() {} }";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c", "inner"]);
        assert!(parsed.fns[0].body.is_some());
        assert!(parsed.fns[1].body.is_none(), "trait decl has no body");
        assert_eq!(parsed.fns[2].line, 3);
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod t { fn helper() {} }";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        assert!(!parsed.fns[0].in_test);
        assert!(parsed.fns[1].in_test);
    }

    #[test]
    fn enclosing_block_picks_the_innermost() {
        let src = "fn a() { if x { g(); } }";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let g = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("g"))
            .expect("g");
        let block = parsed.enclosing_block(g).expect("block");
        // The `if` block, not the fn body.
        assert!(lexed.tokens[block.open - 1].is_ident("x"));
    }

    #[test]
    fn calls_are_extracted_with_method_flags() {
        let src = "fn a() { free(1); recv.meth(); Path::assoc::<u8>(x); if cond { } }";
        let lexed = lex(src);
        let body = parse(&lexed.tokens).fns[0].body.unwrap();
        let calls = calls_in(&lexed.tokens, body);
        let names: Vec<(&str, bool)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.is_method))
            .collect();
        assert_eq!(
            names,
            vec![("free", false), ("meth", true), ("assoc", false)]
        );
    }

    #[test]
    fn closure_bodies_are_found_braced_and_expression() {
        let src = "fn a() { spawn(move || { work(); }); map(|x| x + 1); }";
        let lexed = lex(src);
        let body = parse(&lexed.tokens).fns[0].body.unwrap();
        let calls = calls_in(&lexed.tokens, body);
        let spawn = calls.iter().find(|c| c.name == "spawn").expect("spawn");
        let b = closure_body(&lexed.tokens, spawn.args).expect("closure");
        assert!(lexed.tokens[b.0..=b.1].iter().any(|t| t.is_ident("work")));
        let map = calls.iter().find(|c| c.name == "map").expect("map");
        let b = closure_body(&lexed.tokens, map.args).expect("closure");
        assert!(lexed.tokens[b.0..=b.1].iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn impl_blocks_assign_owners() {
        let src = "fn free() {}\n\
                   impl Reader { fn new() -> Self { Reader } fn take(&self) {} }\n\
                   impl fmt::Display for ReplicaId { fn fmt(&self) {} }\n\
                   impl<T: Into<u8>> From<T> for Wrapper { fn from(t: T) -> Self { t } }";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let owners: Vec<(&str, Option<&str>)> = parsed
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            owners,
            vec![
                ("free", None),
                ("new", Some("Reader")),
                ("take", Some("Reader")),
                ("fmt", Some("ReplicaId")),
                ("from", Some("Wrapper")),
            ]
        );
    }

    #[test]
    fn calls_carry_their_qualifier() {
        let src = "fn a() { Reader::new(); codec::read_batch(b); free(); x.meth(); \
                   Path::assoc::<u8>(y); }";
        let lexed = lex(src);
        let body = parse(&lexed.tokens).fns[0].body.unwrap();
        let calls = calls_in(&lexed.tokens, body);
        let quals: Vec<(&str, Option<&str>)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.qualifier.as_deref()))
            .collect();
        assert_eq!(
            quals,
            vec![
                ("new", Some("Reader")),
                ("read_batch", Some("codec")),
                ("free", None),
                ("meth", None),
                ("assoc", Some("Path")),
            ]
        );
    }

    #[test]
    fn nested_generics_do_not_derail_fn_bodies() {
        // Leans on the lexer's no-`>>`-merge guarantee.
        let src = "fn a(m: Arc<Mutex<Vec<u8>>>) -> Arc<Mutex<Vec<u8>>> { m.lock(); m }";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let body = parsed.fns[0].body.expect("body");
        assert!(lexed.tokens[body.0..=body.1]
            .iter()
            .any(|t| t.is_ident("lock")));
    }
}
