//! A minimal Rust lexer: just enough to walk real source token by token
//! without being fooled by strings, char literals, lifetimes or comments.
//!
//! The rule engine works on identifier/punctuation sequences (`Instant ::
//! now`, `. unwrap (`), so the lexer's one job is to classify those
//! correctly and never emit a token from inside a literal or a comment.
//! Doc comments and `//` comments are consumed here too — except for
//! `// lint:allow(...)` pragmas, which are surfaced as [`Pragma`]s so the
//! engine can match suppressions (and flag unused ones).

/// What a token is; rules mostly care about `Ident` and `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unwrap`).
    Ident,
    /// A single punctuation character (`.`, `:`, `(`, `!`, ...).
    Punct,
    /// A string / char / byte / numeric literal, collapsed to one token.
    Literal,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token text. String/char literals collapse to their quote
    /// character (rules never look inside them); numeric literals keep
    /// their verbatim digits for the quorum-arithmetic rules.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// Whether the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether the token is the single punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Whether the token is the multi-char operator `s` (`::`, `->`, `=>`).
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A `// lint:allow(RULES): reason` comment found while lexing.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The comma-separated rule ids inside the parentheses, trimmed.
    pub rules: Vec<String>,
    /// The reason after the closing `):`; empty when missing.
    pub reason: String,
    /// 1-based line the pragma sits on.
    pub line: u32,
    /// Whether the comment parsed as `lint:allow(...)` followed by `:`.
    pub well_formed: bool,
    /// Whether the pragma is a standalone comment line (covers the next
    /// line) rather than trailing code (covers its own line only).
    pub own_line: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Suppression pragmas in source order.
    pub pragmas: Vec<Pragma>,
}

/// Lexes `src` into tokens and pragmas. Unterminated literals or comments
/// simply end the token stream at the offending point: the lint must never
/// panic on weird input, and rustc will reject such a file anyway.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances past `n` bytes, counting newlines.
    macro_rules! advance {
        ($n:expr) => {{
            let n = $n;
            for k in 0..n {
                if bytes.get(i + k) == Some(&b'\n') {
                    line += 1;
                }
            }
            i += n;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;

        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }

        // Line comments (and pragmas).
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            let end = src[i..].find('\n').map(|p| i + p).unwrap_or(bytes.len());
            let comment = &src[i..end];
            let line_start = src[..i].rfind('\n').map(|p| p + 1).unwrap_or(0);
            let own_line = src[line_start..i].chars().all(char::is_whitespace);
            if let Some(p) = parse_pragma(comment, line, own_line) {
                out.pragmas.push(p);
            }
            advance!(end - i);
            continue;
        }

        // Block comments, nested.
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            advance!(j - i);
            continue;
        }

        // Raw strings: r"..."  r#"..."#  (and byte/ c-string variants).
        if (c == 'r' || c == 'b' || c == 'c') && is_raw_string_start(bytes, i) {
            let j = skip_raw_string(bytes, i);
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: "\"".into(),
                line,
            });
            advance!(j - i);
            continue;
        }

        // Plain and byte strings.
        if c == '"' || (c == 'b' && bytes.get(i + 1) == Some(&b'"')) {
            let start = if c == '"' { i + 1 } else { i + 2 };
            let j = skip_quoted(bytes, start, b'"');
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: "\"".into(),
                line,
            });
            advance!(j - i);
            continue;
        }

        // Byte char literals: b'x'.
        if c == 'b' && bytes.get(i + 1) == Some(&b'\'') {
            let j = skip_quoted(bytes, i + 2, b'\'');
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: "'".into(),
                line,
            });
            advance!(j - i);
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(j) = char_literal_end(bytes, i) {
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "'".into(),
                    line,
                });
                advance!(j - i);
            } else {
                // Lifetime / label: consume the identifier after the quote.
                let mut j = i + 1;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: src[i..j].into(),
                    line,
                });
                advance!(j - i);
            }
            continue;
        }

        // Identifiers / keywords (including r# raw identifiers).
        if is_ident_start(bytes[i]) {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_char(bytes[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: src[i..j].into(),
                line,
            });
            advance!(j - i);
            continue;
        }

        // Numbers (consume so `1.0` doesn't emit a `.` punct). The digits
        // are kept verbatim: the quorum-arithmetic rules evaluate integer
        // coefficients out of expressions like `2 * f + 1`.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len()
                && (is_ident_char(bytes[j])
                    || bytes[j] == b'.'
                        && bytes.get(j + 1).is_some_and(|d| d.is_ascii_digit())
                        && bytes.get(j.wrapping_sub(1)) != Some(&b'.'))
            {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: src[i..j].into(),
                line,
            });
            advance!(j - i);
            continue;
        }

        // Everything else: punctuation. The unambiguous multi-char
        // operators (`::`, `->`, `=>`, and the range ops `..`/`..=`) merge
        // into one token — the parser keys on the first three for paths,
        // signatures and match arms, and the quorum-expression walk needs
        // a range pattern (`0..=n`) to be one operator, not a run of dots.
        // Nothing else merges, deliberately: `>>` at the close of nested
        // generics (`Arc<Mutex<Vec<u8>>>`) is two independent closers, not
        // a shift operator, and the same ambiguity bites `<<`, `>=`, `&&`
        // (double reference) and `||` (empty closure). One character per
        // token keeps all of those correct without type context.
        let op = match (bytes[i], bytes.get(i + 1).copied()) {
            (b':', Some(b':')) => Some("::"),
            (b'-', Some(b'>')) => Some("->"),
            (b'=', Some(b'>')) => Some("=>"),
            (b'.', Some(b'.')) => {
                if bytes.get(i + 2) == Some(&b'=') {
                    Some("..=")
                } else {
                    Some("..")
                }
            }
            _ => None,
        };
        if let Some(op) = op {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: op.into(),
                line,
            });
            advance!(op.len());
            continue;
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        advance!(1);
    }

    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `r`/`b`/`c` at `i` opens a raw string (`r"`, `r#"`, `br"`, ...).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Optional b/c prefix before r.
    if bytes[j] == b'b' || bytes[j] == b'c' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Skips a raw string starting at `i`; returns the index just past it.
fn skip_raw_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == b'b' || bytes[j] == b'c' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    bytes.len()
}

/// Skips a quoted literal body starting *inside* the quotes at `start`,
/// honouring backslash escapes; returns the index just past the closer.
fn skip_quoted(bytes: &[u8], start: usize, quote: u8) -> usize {
    let mut j = start;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b if b == quote => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// If a `'` at `i` starts a char literal, returns the index just past the
/// closing quote; `None` means it is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: find the closing quote.
        return Some(skip_quoted(bytes, i + 1, b'\''));
    }
    // 'x' is a char literal; 'x followed by anything else is a lifetime.
    // Multi-byte UTF-8 chars ('λ') also close with a quote.
    let mut j = i + 1;
    if next < 0x80 && is_ident_char(next) {
        // Could be 'a' (char) or 'a (lifetime): decided by the next byte.
        if bytes.get(i + 2) == Some(&b'\'') {
            return Some(i + 3);
        }
        return None;
    }
    // Not an identifier char: consume until the closing quote (one char).
    while j < bytes.len() {
        if bytes[j] == b'\'' && j > i + 1 {
            return Some(j + 1);
        }
        j += 1;
    }
    None
}

/// Parses a `lint:allow` pragma out of a `//` comment body, if present.
fn parse_pragma(comment: &str, line: u32, own_line: bool) -> Option<Pragma> {
    let body = comment.trim_start_matches('/').trim_start();
    let rest = body.strip_prefix("lint:allow")?;
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(Pragma {
            rules: Vec::new(),
            reason: String::new(),
            line,
            well_formed: false,
            own_line,
        });
    };
    let Some(close) = rest.find(')') else {
        return Some(Pragma {
            rules: Vec::new(),
            reason: String::new(),
            line,
            well_formed: false,
            own_line,
        });
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = rest[close + 1..].trim_start();
    let (reason, well_formed) = match after.strip_prefix(':') {
        Some(r) => (r.trim().to_string(), true),
        None => (String::new(), false),
    };
    let well_formed = well_formed && !rules.is_empty();
    Some(Pragma {
        rules,
        reason,
        line,
        well_formed,
        own_line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_emit_no_idents() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"unwrap() "quoted" inside"#;
            let c = 'u'; let esc = '\n';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_following_tokens() {
        let ids = idents("fn f<'a>(x: &'a HashMap<u8, u8>) {}");
        assert!(ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_literals() {
        let src = "let a = \"x\ny\";\nlet b = unwrap;";
        let lexed = lex(src);
        let t = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert_eq!(t.line, 3);
    }

    #[test]
    fn pragmas_parse_rules_and_reason() {
        let lexed = lex("x(); // lint:allow(D02, P01): stats only\n");
        assert_eq!(lexed.pragmas.len(), 1);
        let p = &lexed.pragmas[0];
        assert!(p.well_formed);
        assert_eq!(p.rules, vec!["D02", "P01"]);
        assert_eq!(p.reason, "stats only");
    }

    #[test]
    fn pragma_without_reason_is_malformed() {
        let lexed = lex("// lint:allow(D01)\n");
        assert!(!lexed.pragmas[0].well_formed);
        let lexed = lex("// lint:allow(D01):   \n");
        assert!(lexed.pragmas[0].well_formed);
        assert!(lexed.pragmas[0].reason.is_empty());
    }

    #[test]
    fn nested_generic_closers_never_merge_into_shift_operators() {
        // Regression: `>>` at the close of nested generics must lex as
        // independent `>` tokens (three of them here), never a shift
        // operator — every group-matching walk in the parser depends on
        // each closer being its own token.
        let lexed = lex("let m: Arc<Mutex<Vec<u8>>> = mk();");
        let closers = lexed.tokens.iter().filter(|t| t.is_punct('>')).count();
        assert_eq!(closers, 3, "{:?}", lexed.tokens);
        assert!(lexed.tokens.iter().all(|t| t.text != ">>"));
    }

    #[test]
    fn unambiguous_multichar_operators_merge() {
        let lexed = lex("fn f(x: u8) -> u8 { m::g(x); match x { _ => 0 } }");
        assert!(lexed.tokens.iter().any(|t| t.is_op("->")));
        assert!(lexed.tokens.iter().any(|t| t.is_op("::")));
        assert!(lexed.tokens.iter().any(|t| t.is_op("=>")));
        // The ambiguous pairs stay split.
        let lexed = lex("if a >= b && f(c << 2) || d {}");
        for t in &lexed.tokens {
            assert!(t.text.len() == 1 || t.kind != TokenKind::Punct, "{t:?}");
        }
    }

    #[test]
    fn numeric_literals_do_not_emit_dot_puncts() {
        let lexed = lex("let x = 1.5e3; y.to_vec()");
        let dots: Vec<u32> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_punct('.'))
            .map(|t| t.line)
            .collect();
        assert_eq!(dots.len(), 1);
    }

    #[test]
    fn numeric_literals_keep_their_digits() {
        // The quorum-arithmetic rules evaluate coefficients, so `2 * f + 1`
        // must surface the actual `2` and `1`, not a placeholder.
        let lexed = lex("let q = 2 * f + 1; let n = 3 * f + 1;");
        let lits: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["2", "1", "3", "1"]);
    }

    #[test]
    fn range_operators_merge_into_single_tokens() {
        let lexed = lex("for i in 0..n { } match k { 0..=7 => a, _ => b }");
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.is_op("..")).count(),
            1,
            "{:?}",
            lexed.tokens
        );
        assert_eq!(lexed.tokens.iter().filter(|t| t.is_op("..=")).count(), 1);
        // Range bounds survive as separate literals.
        let lits: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["0", "0", "7"]);
    }

    #[test]
    fn single_dots_and_dot_runs_still_lex_correctly() {
        // Method chains keep one `.` per link, and a `...` run lexes as
        // `..` + `.` — never a merged triple or a swallowed chain.
        let lexed = lex("a.b.c(); x...y");
        let single: usize = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        let double: usize = lexed.tokens.iter().filter(|t| t.is_op("..")).count();
        assert_eq!(single, 3, "{:?}", lexed.tokens); // a.b, .c, and the tail of ...
        assert_eq!(double, 1);
        assert!(lexed.tokens.iter().all(|t| t.text != "..."));
    }
}
