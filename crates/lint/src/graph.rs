//! The whole-workspace call graph every transitive analysis runs on.
//!
//! One node per non-test `fn` with a body, across every crate. Edges come
//! from a qualified-name resolution heuristic over the parse layer —
//! deliberately type-free, so it over-approximates (a `.get(` method call
//! edges to *every* `get` method in the workspace) and under-approximates
//! only where Rust itself hides the callee (trait objects named through a
//! generic, function pointers). Over-approximation is the right failure
//! mode for reachability lints: a false edge can at worst ask for a
//! pragma with a proof; a missed edge would silently hide a panic.
//!
//! Resolution discipline, in order:
//! - `Qual::name(...)` — defs named `name` whose impl owner is `Qual`
//!   (`Self` maps to the caller's own owner). When no owner matches,
//!   `Qual` was a module path (`codec::read_batch`), so fall back to free
//!   fns named `name`.
//! - `recv.name(...)` — every impl-owned def named `name`, any owner.
//! - `name(...)` — free (un-owned) fns named `name`.
//! - No def found → the callee is external (std, a dependency); the edge
//!   is dropped.
//!
//! Recursion can't blow the analyses up: the graph is condensed into
//! strongly connected components (iterative Tarjan — source files are
//! adversarially deep from the lint's point of view, so no call-stack
//! recursion anywhere), and reachability is precomputed bottom-up over
//! the condensed DAG, one set union per SCC, memoized by construction.
//! Tarjan emits SCCs callees-first, which is exactly the order the taint
//! pass wants for return summaries.

use crate::parser::Call;
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One non-test function with a body, anywhere in the workspace.
pub struct FnNode {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Body token range (brace pair, inclusive).
    pub body: (usize, usize),
    /// The function's name.
    pub name: String,
    /// Impl self type, if the fn is a method / associated fn.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// The workspace call graph: every non-test function with a body, the
/// calls it makes, resolved cross-crate edges, and the SCC condensation
/// with memoized reachability.
pub struct CallGraph {
    /// All nodes, in (file, body-start) order.
    pub nodes: Vec<FnNode>,
    /// Every call expression in each node's body, in token order — parsed
    /// once here, reused by every downstream pass.
    pub calls: Vec<Vec<Call>>,
    /// Deduplicated callee node ids per node.
    pub edges: Vec<Vec<usize>>,
    /// SCC id per node. SCC ids are in Tarjan emission order: every SCC's
    /// callee SCCs have smaller ids (callees-first / reverse topological).
    scc_of: Vec<usize>,
    /// Node ids per SCC.
    scc_members: Vec<Vec<usize>>,
    /// Node ids reachable from each SCC (including its own members).
    scc_reach: Vec<BTreeSet<usize>>,
    /// (file, body-start) → node id, for locating the node a site sits in.
    by_body: BTreeMap<(usize, usize), usize>,
    /// name → ids of impl-owned defs.
    owned: BTreeMap<String, Vec<usize>>,
    /// name → ids of free defs.
    free: BTreeMap<String, Vec<usize>>,
    /// (owner, name) → ids.
    by_owner: BTreeMap<(String, String), Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph: collect nodes, resolve every call in every body,
    /// condense with Tarjan, precompute reachability bottom-up.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for def in f.parsed.fns.iter().filter(|d| !d.in_test) {
                let Some(body) = def.body else { continue };
                nodes.push(FnNode {
                    file: fi,
                    body,
                    name: def.name.clone(),
                    owner: def.owner.clone(),
                    line: def.line,
                });
            }
        }

        let mut owned: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut by_body = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_body.insert((n.file, n.body.0), id);
            match &n.owner {
                Some(o) => {
                    owned.entry(n.name.clone()).or_default().push(id);
                    by_owner
                        .entry((o.clone(), n.name.clone()))
                        .or_default()
                        .push(id);
                }
                None => free.entry(n.name.clone()).or_default().push(id),
            }
        }

        let mut g = CallGraph {
            calls: Vec::new(),
            edges: vec![Vec::new(); nodes.len()],
            scc_of: Vec::new(),
            scc_members: Vec::new(),
            scc_reach: Vec::new(),
            by_body,
            owned,
            free,
            by_owner,
            nodes,
        };

        for id in 0..g.nodes.len() {
            let n = &g.nodes[id];
            let calls = crate::parser::calls_in(files[n.file].tokens(), n.body);
            let mut targets = BTreeSet::new();
            for c in &calls {
                for t in g.resolve(id, c) {
                    if t != id {
                        targets.insert(t);
                    }
                }
            }
            g.edges[id] = targets.into_iter().collect();
            g.calls.push(calls);
        }

        let (scc_of, scc_members) = tarjan(g.nodes.len(), &g.edges);

        // Condensed DAG successors, then reachability bottom-up. Edges go
        // caller-SCC → callee-SCC and callee SCC ids are smaller, so by
        // the time an SCC is processed every successor set already exists.
        let mut scc_succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); scc_members.len()];
        for (v, outs) in g.edges.iter().enumerate() {
            for &w in outs {
                if scc_of[v] != scc_of[w] {
                    scc_succ[scc_of[v]].insert(scc_of[w]);
                }
            }
        }
        let mut scc_reach: Vec<BTreeSet<usize>> = Vec::with_capacity(scc_members.len());
        for (s, members) in scc_members.iter().enumerate() {
            let mut reach: BTreeSet<usize> = members.iter().copied().collect();
            for &t in &scc_succ[s] {
                reach.extend(scc_reach[t].iter().copied());
            }
            scc_reach.push(reach);
        }

        g.scc_of = scc_of;
        g.scc_members = scc_members;
        g.scc_reach = scc_reach;
        g
    }

    /// Resolves one call made from `caller` to its candidate defs.
    pub fn resolve(&self, caller: usize, c: &Call) -> Vec<usize> {
        let none = Vec::new();
        if c.is_method {
            return self.owned.get(&c.name).unwrap_or(&none).clone();
        }
        if let Some(q) = &c.qualifier {
            let owner = if q == "Self" {
                match &self.nodes[caller].owner {
                    Some(o) => o.clone(),
                    None => return Vec::new(),
                }
            } else {
                q.clone()
            };
            if let Some(ids) = self.by_owner.get(&(owner, c.name.clone())) {
                return ids.clone();
            }
            // Qualifier was a module path, not a type: fall back to free
            // fns of that name anywhere.
            return self.free.get(&c.name).unwrap_or(&none).clone();
        }
        self.free.get(&c.name).unwrap_or(&none).clone()
    }

    /// The node whose body opens at token `body_start` of file `file`.
    pub fn node_at(&self, file: usize, body_start: usize) -> Option<usize> {
        self.by_body.get(&(file, body_start)).copied()
    }

    /// Every node reachable from any of `starts` (inclusive), via the
    /// precomputed per-SCC sets.
    pub fn reachable(&self, starts: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for s in starts {
            out.extend(self.scc_reach[self.scc_of[s]].iter().copied());
        }
        out
    }

    /// SCCs in callees-first order, each as its member node ids. A taint
    /// pass walking this order sees every callee's summary before any of
    /// its callers.
    pub fn sccs_bottom_up(&self) -> &[Vec<usize>] {
        &self.scc_members
    }
}

/// Iterative Tarjan SCC. Returns (scc id per node, members per SCC), with
/// SCCs numbered in emission order: callees before callers.
fn tarjan(n: usize, edges: &[Vec<usize>]) -> (Vec<usize>, Vec<Vec<usize>>) {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    // Explicit DFS frames: (node, next edge position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSEEN {
            continue;
        }
        index[start] = next;
        low[start] = next;
        next += 1;
        stack.push(start);
        on_stack[start] = true;
        frames.push((start, 0));

        while let Some(top) = frames.last().copied() {
            let (v, ei) = top;
            if ei < edges[v].len() {
                if let Some(f) = frames.last_mut() {
                    f.1 += 1;
                }
                let w = edges[v][ei];
                if index[w] == UNSEEN {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc_of[w] = members.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    members.push(comp);
                }
            }
        }
    }
    (scc_of, members)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(rel, src)| SourceFile::new(rel, src))
            .collect()
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no node {name}"))
    }

    #[test]
    fn free_calls_resolve_across_crates() {
        let fs = files(&[
            ("crates/a/src/lib.rs", "pub fn top() { helper(); }"),
            (
                "crates/b/src/lib.rs",
                "pub fn helper() { leaf(); } pub fn leaf() {}",
            ),
        ]);
        let g = CallGraph::build(&fs);
        let reach = g.reachable([node(&g, "top")]);
        assert!(reach.contains(&node(&g, "leaf")), "transitive cross-crate");
    }

    #[test]
    fn qualified_calls_prefer_the_owner_then_fall_back_to_free() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "impl Reader { fn take(&self) {} }\n\
                 impl Writer { fn take(&self) { other(); } }\n\
                 fn caller() { Reader::take(r); mod_path::free_take(); }\n\
                 fn free_take() {}\nfn other() {}",
        )]);
        let g = CallGraph::build(&fs);
        let caller = node(&g, "caller");
        let reach = g.reachable([caller]);
        assert!(
            reach.contains(&node(&g, "free_take")),
            "module-path fallback"
        );
        assert!(
            !reach.contains(&node(&g, "other")),
            "Writer::take not taken"
        );
    }

    #[test]
    fn self_maps_to_the_callers_owner() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "impl Reader { fn new() { Self::init(); } fn init(&self) { leaf(); } }\n\
                 impl Writer { fn init(&self) {} }\nfn leaf() {}",
        )]);
        let g = CallGraph::build(&fs);
        let reach = g.reachable([node(&g, "new")]);
        assert!(reach.contains(&node(&g, "leaf")));
        let writer_init = g
            .nodes
            .iter()
            .position(|n| n.name == "init" && n.owner.as_deref() == Some("Writer"))
            .unwrap();
        assert!(!reach.contains(&writer_init));
    }

    #[test]
    fn method_calls_fan_out_to_every_owner() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "impl A { fn go(&self) { a_leaf(); } }\nimpl B { fn go(&self) { b_leaf(); } }\n\
                 fn caller(x: &A) { x.go(); }\nfn a_leaf() {}\nfn b_leaf() {}",
        )]);
        let g = CallGraph::build(&fs);
        let reach = g.reachable([node(&g, "caller")]);
        assert!(reach.contains(&node(&g, "a_leaf")));
        assert!(reach.contains(&node(&g, "b_leaf")), "over-approximates");
    }

    #[test]
    fn recursion_condenses_into_one_scc() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "fn even(n: u8) { odd(n); }\nfn odd(n: u8) { even(n); leaf(); }\nfn leaf() {}",
        )]);
        let g = CallGraph::build(&fs);
        let (e, o) = (node(&g, "even"), node(&g, "odd"));
        assert_eq!(g.scc_of[e], g.scc_of[o], "mutual recursion is one SCC");
        let reach = g.reachable([e]);
        assert!(reach.contains(&node(&g, "leaf")));
        // Bottom-up order: leaf's SCC precedes the recursive pair's.
        assert!(g.scc_of[node(&g, "leaf")] < g.scc_of[e]);
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "fn lib() {}\n#[cfg(test)]\nmod t { fn helper() { lib(); } }",
        )]);
        let g = CallGraph::build(&fs);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].name, "lib");
    }
}
