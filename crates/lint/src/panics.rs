//! X-rules: panic propagation into worker threads.
//!
//! P01 catches `.unwrap()`/`.expect()` textually; what it cannot see is
//! a `panic!` or an out-of-bounds index sitting in a function a spawned
//! worker calls. This pass takes the closures handed to `spawn` as
//! worker entry points, follows the whole-workspace [`CallGraph`]
//! transitively from their callees, and flags reachable panic macros
//! (**X01**) and value-indexing sites (**X02**) wherever they land in a
//! panic-free crate. A worker that panics dies silently under
//! `catch_unwind`-free `std::thread`, which in this codebase means a
//! replica that stops voting without a peer-loss event.
//!
//! Approximations: entry points are closures at call sites literally
//! named `spawn` (`std::thread::spawn`, `Builder::spawn`); callees
//! resolve per the graph's qualified-name heuristic (over-approximate on
//! method names); `debug_assert*` is exempt (compiled out in release,
//! where the floors are measured). Sites in non-panic-free crates stay
//! exempt even when reachable — their panics are loud test failures, not
//! silent worker deaths.

use crate::graph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::parser;
use crate::report::Finding;
use crate::SourceFile;
use std::collections::BTreeSet;

/// Macros that unconditionally (or assertively) panic.
pub(crate) const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Identifier-likes before `[` that do *not* make it a value index
/// (`&mut [u8]`, `for x in [..]`, `match x { [a, b] => .. }`, ...).
const NON_INDEX_PREV: &[&str] = &[
    "in", "mut", "dyn", "impl", "as", "let", "ref", "box", "return", "else", "match", "if",
    "while", "loop", "move", "unsafe", "break",
];

/// Runs the X-rules: collect worker entry points in panic-free crates,
/// close over the call graph, flag panic-free sites in the closure.
pub fn check(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    let mut entry_callees: BTreeSet<usize> = BTreeSet::new();

    for (fi, f) in files.iter().enumerate() {
        if !f.class.panic_free {
            continue;
        }
        for def in f.parsed.fns.iter().filter(|d| !d.in_test) {
            let Some(body) = def.body else { continue };
            let Some(node) = graph.node_at(fi, body.0) else {
                continue;
            };
            for call in parser::calls_in(f.tokens(), body) {
                if call.name != "spawn" {
                    continue;
                }
                let Some(cl) = parser::closure_body(f.tokens(), call.args) else {
                    continue;
                };
                let origin = format!("worker spawned at {}:{}", f.rel, call.line);
                scan_sites(f, cl, &origin, &mut seen, &mut out);
                for c in parser::calls_in(f.tokens(), cl) {
                    if c.name == "spawn" {
                        continue;
                    }
                    entry_callees.extend(graph.resolve(node, &c));
                }
            }
        }
    }

    // Everything the workers can transitively reach, across crates; only
    // sites that land back in a panic-free crate are flagged.
    for id in graph.reachable(entry_callees) {
        let n = &graph.nodes[id];
        let f = &files[n.file];
        if !f.class.panic_free {
            continue;
        }
        let origin = format!("via fn `{}`", n.name);
        scan_sites(f, n.body, &origin, &mut seen, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

/// Flags the panic macros and value-indexing sites in one token range.
fn scan_sites(
    f: &SourceFile,
    range: (usize, usize),
    origin: &str,
    seen: &mut BTreeSet<(String, u32, &'static str)>,
    out: &mut Vec<Finding>,
) {
    let tokens = f.tokens();
    for k in range.0..=range.1.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[k];
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('!'))
            && seen.insert((f.rel.clone(), t.line, "X01"))
        {
            out.push(Finding::new(
                &f.rel,
                t.line,
                "X01",
                format!(
                    "{}! is reachable from a worker thread ({origin}): a panic \
                     here kills the worker silently — no peer-loss event, no \
                     drop accounting; return the error instead, or pragma with \
                     the proof it cannot fire",
                    t.text
                ),
            ));
        }
        if t.is_punct('[')
            && k > range.0
            && is_value_index(tokens, k)
            && seen.insert((f.rel.clone(), t.line, "X02"))
        {
            out.push(Finding::new(
                &f.rel,
                t.line,
                "X02",
                format!(
                    "indexing `{}[..]` is reachable from a worker thread \
                     ({origin}): out of bounds panics the worker silently; \
                     use .get() into error handling, or pragma with the \
                     bound's proof",
                    tokens[k - 1].text
                ),
            ));
        }
    }
}

/// Whether the `[` at `k` indexes a value: preceded by an identifier
/// (not a keyword), a call/group close, or an index close. Attribute
/// brackets (`#[`), macro brackets (`vec![`), slice types (`&[u8]`) and
/// array literals (after `=`/`(`/`,`) all fail the test.
pub(crate) fn is_value_index(tokens: &[Token], k: usize) -> bool {
    let p = &tokens[k - 1];
    match p.kind {
        TokenKind::Ident => !NON_INDEX_PREV.contains(&p.text.as_str()),
        TokenKind::Punct => p.is_punct(')') || p.is_punct(']'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::new("crates/exec/src/lib.rs", src)];
        let graph = CallGraph::build(&files);
        check(&files, &graph)
    }

    #[test]
    fn panic_macro_in_spawned_closure_is_x01() {
        let found = lint("fn run() { spawn(move || { panic!(\"boom\"); }); }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "X01");
        assert!(found[0].message.contains("worker"));
    }

    #[test]
    fn unreachable_one_call_deep_is_x01() {
        let found = lint(
            "fn run() { spawn(move || { while step() {} }); }\n\
             fn step() -> bool { unreachable!(\"off the rails\") }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "X01");
        assert!(found[0].message.contains("step"));
    }

    #[test]
    fn panics_arbitrarily_deep_are_found() {
        let found = lint(
            "fn run() { spawn(move || { a() }); }\n\
             fn a() { b(); }\n\
             fn b() { c(); }\n\
             fn c() { panic!(\"deep\"); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "X01");
        assert!(found[0].message.contains("via fn `c`"));
    }

    #[test]
    fn reachable_sites_in_other_crates_are_found_when_panic_free() {
        let files = vec![
            SourceFile::new(
                "crates/runtime/src/lib.rs",
                "fn run() { spawn(move || { drive() }); }",
            ),
            SourceFile::new(
                "crates/exec/src/lib.rs",
                "pub fn drive() { boom!(); panic!(); }",
            ),
            SourceFile::new("crates/sim/src/lib.rs", "pub fn drive() { panic!(); }"),
        ];
        let graph = CallGraph::build(&files);
        let found = check(&files, &graph);
        // The exec copy is flagged (panic-free crate); the sim copy is
        // reachable too — name resolution over-approximates — but sim is
        // not a panic-free crate, so it stays exempt.
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].file.contains("exec"));
    }

    #[test]
    fn indexing_in_worker_is_x02_but_types_and_literals_are_not() {
        let found = lint(
            "fn run(vals: Vec<u8>) { spawn(move || { let x = vals[0]; \
             let s: &[u8] = &[1, 2]; for v in [3, 4] { eat(v); } x }); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "X02");
        assert!(found[0].message.contains("vals"));
    }

    #[test]
    fn code_outside_worker_paths_is_exempt() {
        let found = lint("fn setup() { panic!(\"config\"); let x = v[0]; }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn debug_assert_is_exempt() {
        let found = lint("fn run() { spawn(move || { debug_assert!(ok()); }); }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn non_panic_free_crates_are_exempt() {
        let files = vec![SourceFile::new(
            "crates/sim/src/lib.rs",
            "fn run() { spawn(move || { panic!(\"boom\"); }); }",
        )];
        let graph = CallGraph::build(&files);
        let found = check(&files, &graph);
        assert!(found.is_empty(), "{found:?}");
    }
}
