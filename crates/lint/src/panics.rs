//! X-rules: panic propagation into worker threads.
//!
//! P01 catches `.unwrap()`/`.expect()` textually; what it cannot see is
//! a `panic!` or an out-of-bounds index sitting in a function a spawned
//! worker calls. This pass computes the call graph reachable from
//! worker-thread entry points — the closures handed to `spawn` — one
//! call level deep within the crate, and flags reachable panic macros
//! (**X01**) and value-indexing sites (**X02**). A worker that panics
//! dies silently under `catch_unwind`-free `std::thread`, which in this
//! codebase means a replica that stops voting without a peer-loss event.
//!
//! Approximations: entry points are closures at call sites literally
//! named `spawn` (`std::thread::spawn`, `Builder::spawn`); callees
//! resolve by bare name inside the crate; `debug_assert*` is exempt
//! (compiled out in release, where the floors are measured).

use crate::lexer::{Token, TokenKind};
use crate::parser;
use crate::report::Finding;
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Macros that unconditionally (or assertively) panic.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Identifier-likes before `[` that do *not* make it a value index
/// (`&mut [u8]`, `for x in [..]`, `match x { [a, b] => .. }`, ...).
const NON_INDEX_PREV: &[&str] = &[
    "in", "mut", "dyn", "impl", "as", "let", "ref", "box", "return", "else", "match", "if",
    "while", "loop", "move", "unsafe", "break",
];

/// Runs the X-rules over every panic-free crate, one crate at a time.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut by_crate: BTreeMap<&str, Vec<&SourceFile>> = BTreeMap::new();
    for f in files.iter().filter(|f| f.class.panic_free) {
        by_crate.entry(f.crate_name.as_str()).or_default().push(f);
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    for members in by_crate.values() {
        check_crate(members, &mut seen, &mut out);
    }
    out
}

fn check_crate(
    members: &[&SourceFile],
    seen: &mut BTreeSet<(String, u32, &'static str)>,
    out: &mut Vec<Finding>,
) {
    // Crate-wide fn index for one-level callee resolution (first
    // definition wins on name collisions).
    let mut index: BTreeMap<&str, (&SourceFile, (usize, usize))> = BTreeMap::new();
    for f in members {
        for def in f.parsed.fns.iter().filter(|d| !d.in_test) {
            if let Some(body) = def.body {
                index.entry(def.name.as_str()).or_insert((f, body));
            }
        }
    }

    let mut scanned_callees: BTreeSet<(String, usize)> = BTreeSet::new();
    for f in members {
        for def in f.parsed.fns.iter().filter(|d| !d.in_test) {
            let Some(body) = def.body else { continue };
            for call in parser::calls_in(f.tokens(), body) {
                if call.name != "spawn" {
                    continue;
                }
                let Some(cl) = parser::closure_body(f.tokens(), call.args) else {
                    continue;
                };
                let origin = format!("worker spawned at {}:{}", f.rel, call.line);
                scan_sites(f, cl, &origin, seen, out);
                // One call level deep into the crate.
                for c in parser::calls_in(f.tokens(), cl) {
                    if c.name == "spawn" {
                        continue;
                    }
                    let Some(&(callee, cbody)) = index.get(c.name.as_str()) else {
                        continue;
                    };
                    if !scanned_callees.insert((callee.rel.clone(), cbody.0)) {
                        continue;
                    }
                    let origin = format!(
                        "`{}` is called from the worker spawned at {}:{}",
                        c.name, f.rel, call.line
                    );
                    scan_sites(callee, cbody, &origin, seen, out);
                }
            }
        }
    }
}

/// Flags the panic macros and value-indexing sites in one token range.
fn scan_sites(
    f: &SourceFile,
    range: (usize, usize),
    origin: &str,
    seen: &mut BTreeSet<(String, u32, &'static str)>,
    out: &mut Vec<Finding>,
) {
    let tokens = f.tokens();
    for k in range.0..=range.1.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[k];
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('!'))
            && seen.insert((f.rel.clone(), t.line, "X01"))
        {
            out.push(Finding::new(
                &f.rel,
                t.line,
                "X01",
                format!(
                    "{}! is reachable from a worker thread ({origin}): a panic \
                     here kills the worker silently — no peer-loss event, no \
                     drop accounting; return the error instead, or pragma with \
                     the proof it cannot fire",
                    t.text
                ),
            ));
        }
        if t.is_punct('[')
            && k > range.0
            && is_value_index(tokens, k)
            && seen.insert((f.rel.clone(), t.line, "X02"))
        {
            out.push(Finding::new(
                &f.rel,
                t.line,
                "X02",
                format!(
                    "indexing `{}[..]` is reachable from a worker thread \
                     ({origin}): out of bounds panics the worker silently; \
                     use .get() into error handling, or pragma with the \
                     bound's proof",
                    tokens[k - 1].text
                ),
            ));
        }
    }
}

/// Whether the `[` at `k` indexes a value: preceded by an identifier
/// (not a keyword), a call/group close, or an index close. Attribute
/// brackets (`#[`), macro brackets (`vec![`), slice types (`&[u8]`) and
/// array literals (after `=`/`(`/`,`) all fail the test.
fn is_value_index(tokens: &[Token], k: usize) -> bool {
    let p = &tokens[k - 1];
    match p.kind {
        TokenKind::Ident => !NON_INDEX_PREV.contains(&p.text.as_str()),
        TokenKind::Punct => p.is_punct(')') || p.is_punct(']'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&[SourceFile::new("crates/exec/src/lib.rs", src)])
    }

    #[test]
    fn panic_macro_in_spawned_closure_is_x01() {
        let found = lint("fn run() { spawn(move || { panic!(\"boom\"); }); }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "X01");
        assert!(found[0].message.contains("worker"));
    }

    #[test]
    fn unreachable_one_call_deep_is_x01() {
        let found = lint(
            "fn run() { spawn(move || { while step() {} }); }\n\
             fn step() -> bool { unreachable!(\"off the rails\") }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "X01");
        assert!(found[0].message.contains("step"));
    }

    #[test]
    fn two_levels_deep_is_out_of_scope() {
        let found = lint(
            "fn run() { spawn(move || { a() }); }\n\
             fn a() { b(); }\n\
             fn b() { panic!(\"deep\"); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn indexing_in_worker_is_x02_but_types_and_literals_are_not() {
        let found = lint(
            "fn run(vals: Vec<u8>) { spawn(move || { let x = vals[0]; \
             let s: &[u8] = &[1, 2]; for v in [3, 4] { eat(v); } x }); }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "X02");
        assert!(found[0].message.contains("vals"));
    }

    #[test]
    fn code_outside_worker_paths_is_exempt() {
        let found = lint("fn setup() { panic!(\"config\"); let x = v[0]; }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn debug_assert_is_exempt() {
        let found = lint("fn run() { spawn(move || { debug_assert!(ok()); }); }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn non_panic_free_crates_are_exempt() {
        let found = check(&[SourceFile::new(
            "crates/sim/src/lib.rs",
            "fn run() { spawn(move || { panic!(\"boom\"); }); }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }
}
