//! The rule engine: project invariants as token-pattern rules.
//!
//! Each rule is a named, suppressible check over one file's token stream.
//! Which rules run on which file is decided by the file's
//! [`FileClass`] — derived from its workspace-relative path — so the
//! engine itself stays path-agnostic. `#[cfg(test)]` regions inside
//! library sources are skipped: the invariants guard production behaviour,
//! and tests legitimately use wall clocks, unwraps and hash sets.

use crate::lexer::{Token, TokenKind};
use crate::parser::{in_region, test_regions};
use crate::report::Finding;

/// Crates whose commit schedules must be bit-identical across hosts,
/// worker counts and shard counts: nothing in them may observe wall-clock
/// time, OS entropy or hash-map iteration order.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "types",
    "protocol",
    "core",
    "baselines",
    "sim",
    "exec",
    "trusted",
    "crypto",
    "wire",
];

/// Crates on the message/value hot path, where payload bytes must travel
/// by `Arc` handle, never by deep copy.
pub const ZERO_COPY_CRATES: &[&str] = &[
    "types",
    "protocol",
    "core",
    "baselines",
    "sim",
    "exec",
    "trusted",
    "crypto",
    "wire",
    "runtime",
    "host",
];

/// Crates whose threads must not die on a stray panic: the transport
/// reader/writer threads and the execution workers.
pub const PANIC_FREE_CRATES: &[&str] = &["runtime", "exec"];

/// Crates holding the workspace's locks: the transport clusters, the
/// executor pool and the host dispatcher. L-rules build their
/// acquisition graph here.
pub const LOCK_CRATES: &[&str] = &["runtime", "exec", "host"];

/// Crates holding an engine `on_message` dispatch path whose match arms
/// must cover the full `Message` vocabulary (H-rules).
pub const HANDLER_CRATES: &[&str] = &["core", "baselines"];

/// Every rule the engine knows, with its one-line summary.
pub const RULES: &[(&str, &str)] = &[
    (
        "D01",
        "HashMap/HashSet in a deterministic crate (iteration order is nondeterministic)",
    ),
    (
        "D02",
        "wall-clock read (Instant::now / SystemTime) in a deterministic crate",
    ),
    ("D03", "thread::sleep in a deterministic crate"),
    (
        "D04",
        "unseeded RNG (OsRng / thread_rng / from_entropy / rand::random) in a deterministic crate",
    ),
    (
        "Z01",
        "payload deep copy (.to_vec() / .to_owned()) on a zero-copy hot path",
    ),
    (
        "Z02",
        "payload deep copy (Vec::from) on a zero-copy hot path",
    ),
    (
        "P01",
        "unwrap()/expect() in transport or execution-worker code",
    ),
    ("P02", "println!/eprintln!/dbg! in library code"),
    (
        "W01",
        "Message variant missing from the wire codec or wire_size accounting",
    ),
    ("W02", "wire codec references a nonexistent Message variant"),
    (
        "L01",
        "lock-order cycle across the acquisition graph (potential deadlock)",
    ),
    (
        "L02",
        "lock held across a blocking channel send/recv (wedges every contender)",
    ),
    (
        "C01",
        "channel sender dropped at creation: the receiver is permanently wedged",
    ),
    (
        "C02",
        "channel receiver dropped at creation: every send is silently lost",
    ),
    ("C03", "try_send result discarded without drop accounting"),
    (
        "H01",
        "Message variant unhandled by an engine's on_message dispatch",
    ),
    (
        "H02",
        "engine on_message arm references a nonexistent Message variant",
    ),
    (
        "X01",
        "panic macro reachable from a worker-thread entry point",
    ),
    (
        "X02",
        "slice/array indexing reachable from a worker-thread entry point",
    ),
    (
        "T01",
        "panicking operation reachable from a wire decode entry point (peer-controlled bytes)",
    ),
    (
        "T02",
        "unchecked `as` narrowing cast on a wire decode path (peer-controlled length/count)",
    ),
    (
        "N01",
        "nondeterministic value (clock/RNG/stats timer) flows into a Message, wire encoding \
         or state digest",
    ),
    (
        "Q01",
        "quorum intersection gap: two quorums need not share the replicas safety requires",
    ),
    (
        "Q02",
        "unreachable quorum: larger than the replicas surviving f crashes",
    ),
    ("U01", "unused lint:allow pragma"),
    (
        "U02",
        "malformed lint:allow pragma (missing rule id or reason)",
    ),
];

/// Whether `rule` is one the engine knows.
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

/// How a file participates in the rule set.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Deterministic-crate library source: D-rules apply.
    pub deterministic: bool,
    /// Hot-path library source: Z-rules apply.
    pub zero_copy: bool,
    /// Transport / execution-worker library source: P01 and X-rules apply.
    pub panic_free: bool,
    /// Library source (any crate): P02 applies.
    pub library: bool,
    /// Lock-bearing crate source: L-rules apply.
    pub locks: bool,
    /// Any crate source: C-rules apply.
    pub channels: bool,
    /// Engine-dispatch crate source: H-rules apply.
    pub handlers: bool,
}

/// Runs every applicable token rule on one file.
///
/// `rel` is the workspace-relative path (used only for reporting);
/// `class` decides which rules fire. Returned findings are not yet
/// pragma-filtered — the caller owns suppression so it can also detect
/// unused pragmas.
pub fn scan_file(rel: &str, tokens: &[Token], class: &FileClass) -> Vec<Finding> {
    let mut findings = Vec::new();
    let skip = test_regions(tokens);

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_region(&skip, i) {
            continue;
        }
        if class.deterministic {
            d_rules(rel, tokens, i, &mut findings);
        }
        if class.zero_copy {
            z_rules(rel, tokens, i, &mut findings);
        }
        if class.panic_free {
            p01(rel, tokens, i, &mut findings);
        }
        if class.library {
            p02(rel, tokens, i, &mut findings);
        }
    }
    findings
}

/// Determinism rules, evaluated at identifier `i`.
fn d_rules(rel: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    match t.text.as_str() {
        "HashMap" | "HashSet" => out.push(Finding::new(
            rel,
            t.line,
            "D01",
            format!(
                "{} in a deterministic crate: iteration order varies per process; \
                 use BTreeMap/BTreeSet (or pragma with a proof order cannot leak)",
                t.text
            ),
        )),
        "Instant" if path_call(tokens, i, "now") => out.push(Finding::new(
            rel,
            t.line,
            "D02",
            "Instant::now() in a deterministic crate: wall-clock reads diverge across \
             hosts and runs",
        )),
        "SystemTime" => out.push(Finding::new(
            rel,
            t.line,
            "D02",
            "SystemTime in a deterministic crate: wall-clock reads diverge across \
             hosts and runs",
        )),
        "sleep" if prev_is_path(tokens, i, "thread") => out.push(Finding::new(
            rel,
            t.line,
            "D03",
            "thread::sleep in a deterministic crate: timing must come from the \
             simulated clock",
        )),
        "OsRng" | "thread_rng" | "from_entropy" => out.push(Finding::new(
            rel,
            t.line,
            "D04",
            format!(
                "{} in a deterministic crate: entropy must come from the seeded RNG",
                t.text
            ),
        )),
        "random" if prev_is_path(tokens, i, "rand") => out.push(Finding::new(
            rel,
            t.line,
            "D04",
            "rand::random in a deterministic crate: entropy must come from the seeded RNG",
        )),
        _ => {}
    }
}

/// Zero-copy rules, evaluated at identifier `i`.
fn z_rules(rel: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    match t.text.as_str() {
        "to_vec" | "to_owned" if is_method_call(tokens, i) => out.push(Finding::new(
            rel,
            t.line,
            "Z01",
            format!(
                ".{}() on a zero-copy hot path: payload bytes must travel by Arc \
                 handle, not by deep copy",
                t.text
            ),
        )),
        "from" if prev_is_path(tokens, i, "Vec") && next_is_punct(tokens, i, '(') => {
            out.push(Finding::new(
                rel,
                t.line,
                "Z02",
                "Vec::from on a zero-copy hot path: payload bytes must travel by Arc \
                 handle, not by deep copy",
            ))
        }
        _ => {}
    }
}

/// Panic-safety rule P01, evaluated at identifier `i`.
fn p01(rel: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    if (t.text == "unwrap" || t.text == "expect") && is_method_call(tokens, i) {
        out.push(Finding::new(
            rel,
            t.line,
            "P01",
            format!(
                ".{}() in transport/execution-worker code: a panic kills the thread \
                 silently; handle the error into drop/peer-loss accounting",
                t.text
            ),
        ));
    }
}

/// Library-print rule P02, evaluated at identifier `i`.
fn p02(rel: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    if matches!(
        t.text.as_str(),
        "println" | "eprintln" | "print" | "eprint" | "dbg"
    ) && next_is_punct(tokens, i, '!')
    {
        out.push(Finding::new(
            rel,
            t.line,
            "P02",
            format!(
                "{}! in library code: libraries must stay silent; route output \
                 through the caller",
                t.text
            ),
        ));
    }
}

/// Whether ident `i` is followed by `:: name` (e.g. `Instant :: now`).
fn path_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_op("::"))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident(name))
}

/// Whether ident `i` is preceded by `name ::` (e.g. `thread :: sleep`).
fn prev_is_path(tokens: &[Token], i: usize, name: &str) -> bool {
    i >= 2 && tokens[i - 1].is_op("::") && tokens[i - 2].is_ident(name)
}

/// Whether ident `i` is `.name(` — a method call, not a free function or
/// a path segment (`Arc::try_unwrap`, `unwrap_or_else` are distinct
/// identifiers and never match).
fn is_method_call(tokens: &[Token], i: usize) -> bool {
    i >= 1 && tokens[i - 1].is_punct('.') && next_is_punct(tokens, i, '(')
}

/// Whether the token after ident `i` is the punct `c`.
fn next_is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> FileClass {
        FileClass {
            deterministic: true,
            zero_copy: true,
            panic_free: true,
            library: true,
            ..Default::default()
        }
    }

    fn rules_of(src: &str) -> Vec<String> {
        scan_file("x.rs", &crate::lexer::lex(src).tokens, &det())
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn d_rules_fire_on_the_seeded_patterns() {
        assert_eq!(rules_of("use std::collections::HashMap;"), vec!["D01"]);
        assert_eq!(rules_of("let t = Instant::now();"), vec!["D02"]);
        assert_eq!(rules_of("let t = SystemTime::now();"), vec!["D02"]);
        assert_eq!(rules_of("std::thread::sleep(d);"), vec!["D03"]);
        assert_eq!(rules_of("let mut rng = OsRng;"), vec!["D04"]);
        assert_eq!(rules_of("let x: u8 = rand::random();"), vec!["D04"]);
    }

    #[test]
    fn z_and_p_rules_fire_on_calls_only() {
        assert_eq!(rules_of("let v = bytes.to_vec();"), vec!["Z01"]);
        assert_eq!(rules_of("let v = Vec::from(bytes);"), vec!["Z02"]);
        assert_eq!(rules_of("let v = x.unwrap();"), vec!["P01"]);
        assert_eq!(rules_of("let v = x.expect(\"m\");"), vec!["P01"]);
        assert_eq!(rules_of("println!(\"hi\");"), vec!["P02"]);
        // Near-miss identifiers must not fire.
        assert!(rules_of("let v = x.unwrap_or(y);").is_empty());
        assert!(rules_of("let v = Arc::try_unwrap(y);").is_empty());
        assert!(rules_of("fn to_vec() {}").is_empty());
        assert!(rules_of("let to_vec = 1; f(to_vec);").is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = r#"
            fn lib() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let x = y.unwrap(); let t = Instant::now(); }
            }
        "#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn code_after_a_test_region_is_still_scanned() {
        let src = r#"
            #[cfg(test)]
            mod tests { fn t() { x.unwrap(); } }
            fn lib() { y.unwrap(); }
        "#;
        assert_eq!(rules_of(src), vec!["P01"]);
    }

    #[test]
    fn non_test_cfg_attrs_do_not_exempt() {
        let src = "#[cfg(feature = \"x\")] fn f() { y.unwrap(); }";
        assert_eq!(rules_of(src), vec!["P01"]);
    }
}
