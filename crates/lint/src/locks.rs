//! L-rules: the lock-acquisition graph.
//!
//! **L01** extracts every `Mutex`/`RwLock` acquisition per function in
//! the lock-bearing crates, follows calls made while a guard is held
//! *transitively* over the whole-workspace [`CallGraph`] (crossing crate
//! boundaries — a runtime fn holding a lock into an exec fn that locks
//! is one edge), and flags cycles in the resulting order graph: two
//! threads interleaving opposite orders deadlock, and so does
//! re-acquiring a `std::sync::Mutex` already held (it is not reentrant).
//! Lock identities are crate-qualified (`exec/state`) so same-named
//! fields in different crates never merge into a phantom cycle.
//!
//! **L02** flags a `let`-bound guard held across a *blocking* channel
//! `send`/`recv` — directly in the hold span or anywhere in a callee the
//! span transitively reaches: a full (or empty) channel parks the thread
//! while it owns the lock, wedging every contender. `try_send` is exempt
//! — it cannot park.
//!
//! Approximations, on the safe-for-CI side: a guard bound by `let` is
//! assumed held to the end of its innermost block (drops and shadowing
//! shorten real lifetimes, so this over-approximates and may need a
//! pragma); a guard consumed as a temporary is held to its statement's
//! `;`; `match m.lock() { .. }` guards are treated as temporaries
//! (under-approximates — none exist in this tree). Transitive callee
//! facts are only collected from lock-bearing crates: the deterministic
//! crates hold no locks and do no channel I/O by construction (D/C rules).

use crate::graph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::parser::{self, matching_backward};
use crate::report::Finding;
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One lock-acquisition site inside a function body.
struct Acquisition {
    /// Chain name of the lock expression: `submit_streams` for
    /// `self.submit_streams.lock()`, `DATASETS` for
    /// `DATASETS.get_or_init(..).lock()`.
    lock: String,
    /// Token index of the `.lock`/`.read`/`.write` identifier.
    idx: usize,
    /// 1-based source line of the acquisition.
    line: u32,
    /// Token index past which the guard is dead.
    hold_end: usize,
    /// Whether the guard is `let`-bound (held) rather than a temporary.
    bound: bool,
}

/// One graph node's lock-relevant facts (nodes in lock-bearing files).
struct FnInfo {
    node: usize,
    acqs: Vec<Acquisition>,
    calls: Vec<parser::Call>,
}

/// Runs the L-rules over the whole file set at once, resolving calls
/// made while a guard is held transitively over the workspace graph.
pub fn check(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();

    // Lock facts per graph node, for nodes in lock-bearing files.
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut acqs_of: BTreeMap<usize, usize> = BTreeMap::new(); // node → fns idx
    for (id, n) in graph.nodes.iter().enumerate() {
        let f = &files[n.file];
        if !f.class.locks {
            continue;
        }
        let has_rwlock = f.tokens().iter().any(|t| t.is_ident("RwLock"));
        acqs_of.insert(id, fns.len());
        fns.push(FnInfo {
            node: id,
            acqs: acquisitions_in(f, n.body, has_rwlock),
            calls: parser::calls_in(f.tokens(), n.body),
        });
    }

    // Crate-qualified lock name: `exec/state`. Same-named fields in
    // different crates are different locks.
    let qual = |files: &[SourceFile], node: usize, lock: &str| -> String {
        format!("{}/{}", files[graph.nodes[node].file].crate_name, lock)
    };

    // Build the acquired-while-holding edge set.
    struct Edge {
        file: String,
        line: u32,
        note: String,
    }
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let record = |edges: &mut BTreeMap<(String, String), Edge>,
                  from: &str,
                  to: &str,
                  file: &str,
                  line: u32,
                  note: &str| {
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| Edge {
                file: file.to_string(),
                line,
                note: note.to_string(),
            });
    };
    for f in &fns {
        let rel = &files[graph.nodes[f.node].file].rel;
        for a in &f.acqs {
            let from = qual(files, f.node, &a.lock);
            for b in &f.acqs {
                if b.idx > a.idx && b.idx <= a.hold_end {
                    record(
                        &mut edges,
                        &from,
                        &qual(files, f.node, &b.lock),
                        rel,
                        b.line,
                        "",
                    );
                }
            }
            for c in &f.calls {
                if c.idx <= a.idx || c.idx > a.hold_end {
                    continue;
                }
                for r in graph.reachable(graph.resolve(f.node, c)) {
                    let Some(&ri) = acqs_of.get(&r) else { continue };
                    for b in &fns[ri].acqs {
                        let note = format!(" (via the call to `{}`)", c.name);
                        record(
                            &mut edges,
                            &from,
                            &qual(files, r, &b.lock),
                            rel,
                            c.line,
                            &note,
                        );
                    }
                }
            }
        }
    }

    // L01: every edge that closes a cycle, one finding per node set.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((from, to), info) in &edges {
        if from == to {
            if reported.insert(vec![from.clone()]) {
                out.push(Finding::new(
                    &info.file,
                    info.line,
                    "L01",
                    format!(
                        "lock `{from}` acquired again while already held{}: \
                         std::sync::Mutex is not reentrant — this self-deadlocks",
                        info.note
                    ),
                ));
            }
            continue;
        }
        if reaches(&edges, to, from) {
            let mut cycle = vec![from.clone(), to.clone()];
            cycle.sort();
            if reported.insert(cycle) {
                out.push(Finding::new(
                    &info.file,
                    info.line,
                    "L01",
                    format!(
                        "lock-order cycle: `{from}` is held while acquiring `{to}` \
                         here{}, but another path acquires them in the opposite \
                         order — two threads interleaving these orders deadlock; \
                         pick one global order",
                        info.note
                    ),
                ));
            }
        }
    }

    // L02: blocking channel ops inside a held-guard span, directly or in
    // any transitively reached callee.
    for f in &fns {
        let file = &files[graph.nodes[f.node].file];
        let tokens = file.tokens();
        for a in f.acqs.iter().filter(|a| a.bound) {
            for k in a.idx + 1..=a.hold_end.min(tokens.len().saturating_sub(1)) {
                if let Some(op) = blocking_chan_op(tokens, k) {
                    out.push(Finding::new(
                        &file.rel,
                        tokens[k].line,
                        "L02",
                        format!(
                            "blocking channel `{op}` while holding lock `{}`: a \
                             full/empty channel parks this thread with the lock \
                             owned, wedging every contender; drop the guard first \
                             or use try_send with drop accounting",
                            a.lock
                        ),
                    ));
                }
            }
            for c in &f.calls {
                if c.idx <= a.idx || c.idx > a.hold_end {
                    continue;
                }
                // A blocking method call is already flagged directly above.
                if c.is_method && blocking_chan_op(tokens, c.idx).is_some() {
                    continue;
                }
                let hit = graph
                    .reachable(graph.resolve(f.node, c))
                    .into_iter()
                    .filter(|r| *r != f.node)
                    .filter_map(|r| acqs_of.get(&r).map(|&ri| &fns[ri]))
                    .find_map(|callee| {
                        let cf = &files[graph.nodes[callee.node].file];
                        let ct = cf.tokens();
                        let (b0, b1) = graph.nodes[callee.node].body;
                        (b0..=b1.min(ct.len().saturating_sub(1)))
                            .find_map(|j| blocking_chan_op(ct, j))
                            .map(|op| (op.to_string(), graph.nodes[callee.node].name.clone()))
                    });
                if let Some((op, in_fn)) = hit {
                    out.push(Finding::new(
                        &file.rel,
                        c.line,
                        "L02",
                        format!(
                            "the call to `{}` reaches a blocking channel `{op}` \
                             (in fn `{in_fn}`) while lock `{}` is held: a \
                             full/empty channel parks this thread with the lock \
                             owned, wedging every contender; drop the guard \
                             before the call",
                            c.name, a.lock
                        ),
                    ));
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    out
}

/// Whether `from` reaches `to` by following the edge set. The graphs are
/// a handful of locks, so a plain worklist beats anything clever.
fn reaches<V>(edges: &BTreeMap<(String, String), V>, from: &str, to: &str) -> bool {
    let mut stack = vec![from.to_string()];
    let mut visited: BTreeSet<String> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        for (a, b) in edges.keys() {
            if a == &n {
                if b == to {
                    return true;
                }
                if visited.insert(b.clone()) {
                    stack.push(b.clone());
                }
            }
        }
    }
    false
}

/// `.send(` / `.recv(` / `.recv_timeout(` at token `k` — the blocking
/// channel operations (`try_send` is a distinct identifier and exempt).
fn blocking_chan_op(tokens: &[Token], k: usize) -> Option<&str> {
    let t = tokens.get(k)?;
    if t.kind != TokenKind::Ident {
        return None;
    }
    if !matches!(t.text.as_str(), "send" | "recv" | "recv_timeout") {
        return None;
    }
    if k == 0 || !tokens[k - 1].is_punct('.') {
        return None;
    }
    if !tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    Some(t.text.as_str())
}

/// Collects the lock acquisitions in one function body.
fn acquisitions_in(file: &SourceFile, body: (usize, usize), has_rwlock: bool) -> Vec<Acquisition> {
    let tokens = file.tokens();
    let mut out = Vec::new();
    for k in body.0..=body.1.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident || k == 0 || !tokens[k - 1].is_punct('.') {
            continue;
        }
        let open_next = tokens.get(k + 1).is_some_and(|n| n.is_punct('('));
        let zero_args = open_next && tokens.get(k + 2).is_some_and(|n| n.is_punct(')'));
        let is_acq = match t.text.as_str() {
            "lock" => open_next,
            // `.read()`/`.write()` collide with io::Read/Write; only the
            // zero-arg form in a file that actually names RwLock counts.
            "read" | "write" => has_rwlock && zero_args,
            _ => false,
        };
        if !is_acq {
            continue;
        }
        let lock = chain_name(tokens, k - 1).unwrap_or_else(|| "<expr>".to_string());
        let bound = let_bound(tokens, body.0, k);
        let hold_end = if bound {
            file.parsed
                .enclosing_block(k)
                .map(|b| b.close)
                .unwrap_or(body.1)
        } else {
            (k..=body.1)
                .find(|&j| tokens[j].is_punct(';'))
                .unwrap_or(body.1)
        };
        out.push(Acquisition {
            lock,
            idx: k,
            line: t.line,
            hold_end,
            bound,
        });
    }
    out
}

/// The field/variable chain naming a lock expression, walking left from
/// the `.` before the acquisition method: root-first, `self` dropped,
/// call segments excluded (they transform, the fields identify).
fn chain_name(tokens: &[Token], dot_idx: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new(); // leaf → root
    let mut sep = dot_idx;
    loop {
        if sep == 0 {
            break;
        }
        let mut p = sep - 1;
        // Skip trailing `(...)` (a call — segment excluded) or `[...]`
        // (an index — the indexed ident still identifies the lock).
        let mut saw_call = false;
        while p > 0 && (tokens[p].is_punct(')') || tokens[p].is_punct(']')) {
            if tokens[p].is_punct(')') {
                p = matching_backward(tokens, p, '(', ')')?;
                saw_call = true;
            } else {
                p = matching_backward(tokens, p, '[', ']')?;
            }
            if p == 0 {
                return None;
            }
            p -= 1;
        }
        let t = &tokens[p];
        if t.kind != TokenKind::Ident {
            break;
        }
        if !saw_call && t.text != "self" {
            parts.push(t.text.clone());
        }
        if p >= 1 && (tokens[p - 1].is_punct('.') || tokens[p - 1].is_op("::")) {
            sep = p - 1;
            continue;
        }
        break;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Whether the statement holding token `k` starts with `let` (searching
/// back to the nearest statement boundary).
fn let_bound(tokens: &[Token], body_start: usize, k: usize) -> bool {
    let mut j = k;
    while j > body_start {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_ident("let") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(rel, src)| SourceFile::new(rel, src))
            .collect()
    }

    fn check(fs: &[SourceFile]) -> Vec<Finding> {
        let graph = CallGraph::build(fs);
        super::check(fs, &graph)
    }

    #[test]
    fn opposite_order_acquisitions_are_a_cycle() {
        let fs = files(&[(
            "crates/runtime/src/lib.rs",
            "fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); }",
        )]);
        let found = check(&fs);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "L01");
        assert!(found[0].message.contains("cycle"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let fs = files(&[(
            "crates/runtime/src/lib.rs",
            "fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.x.lock(); let h = self.y.lock(); }",
        )]);
        assert!(check(&fs).is_empty());
    }

    #[test]
    fn relock_of_the_same_mutex_is_flagged() {
        let fs = files(&[(
            "crates/exec/src/lib.rs",
            "fn a(&self) { let g = self.x.lock(); let h = self.x.lock(); }",
        )]);
        let found = check(&fs);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("not reentrant"));
    }

    #[test]
    fn cycle_through_an_inlined_call_is_found() {
        let fs = files(&[(
            "crates/runtime/src/lib.rs",
            "impl Node { fn a(&self) { let g = self.x.lock(); self.takes_y(); }\n\
             fn takes_y(&self) { let g = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); } }",
        )]);
        let found = check(&fs);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("cycle"));
    }

    #[test]
    fn cycle_through_a_transitive_cross_crate_call_is_found() {
        // runtime/X is held into exec/Y two calls deep across the crate
        // boundary, and exec/Y is held back into runtime/X — a cycle no
        // per-crate one-level analysis can see.
        let fs = files(&[
            (
                "crates/runtime/src/lib.rs",
                "fn a() { let g = X.lock(); hop(); }\n\
                 pub fn back() { let h = X.lock(); }",
            ),
            (
                "crates/exec/src/lib.rs",
                "pub fn hop() { deep(); }\n\
                 fn deep() { let g = Y.lock(); }\n\
                 fn rev() { let g = Y.lock(); back(); }",
            ),
        ]);
        let found = check(&fs);
        assert!(
            found
                .iter()
                .any(|f| f.rule == "L01" && f.message.contains("cycle")),
            "{found:?}"
        );
    }

    #[test]
    fn same_lock_name_in_different_crates_is_not_a_cycle() {
        let fs = files(&[
            (
                "crates/runtime/src/lib.rs",
                "fn a(&self) { let g = self.state.lock(); let h = self.out.lock(); }",
            ),
            (
                "crates/exec/src/lib.rs",
                "fn z(&self) { let g = self.out.lock(); let h = self.state.lock(); }",
            ),
        ]);
        assert!(check(&fs).is_empty(), "{:?}", check(&fs));
    }

    #[test]
    fn send_under_a_held_guard_is_l02() {
        let fs = files(&[(
            "crates/exec/src/lib.rs",
            "fn a(&self) { let g = self.state.lock(); self.tx.send(1); }",
        )]);
        let found = check(&fs);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "L02");
        assert!(found[0].message.contains("state"));
    }

    #[test]
    fn temporary_guard_and_try_send_are_clean() {
        let fs = files(&[(
            "crates/exec/src/lib.rs",
            "fn a(&self) { self.state.lock().insert(1); self.tx.send(1); }\n\
             fn b(&self) { let g = self.state.lock(); self.tx.try_send(1); }",
        )]);
        assert!(check(&fs).is_empty(), "{:?}", check(&fs));
    }

    #[test]
    fn non_lock_crates_are_out_of_scope() {
        let fs = files(&[(
            "crates/protocol/src/lib.rs",
            "fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); }",
        )]);
        assert!(check(&fs).is_empty());
    }
}
