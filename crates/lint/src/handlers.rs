//! H-rules: engine handler exhaustiveness over the `Message` vocabulary.
//!
//! The W-rules keep the wire codec and the enum in lockstep; this pass
//! extends the same contract to the protocol engines. Every `fn
//! on_message` in a handler crate must match every `Message` variant
//! explicitly (**H01** — a new variant falling through a `_` wildcard is
//! exactly the silent drop that cost a cross-host divergence hunt), and
//! must not keep arms for variants the enum no longer has (**H02**).
//!
//! An explicit-ignore arm (`Message::Commit { .. } => {}`) counts as
//! handled — the rule demands a *decision* per variant, not an action.
//! An engine that deliberately does not speak a variant suppresses the
//! fn-level H01 with a pragma carrying the reason, which is the audit
//! trail we actually want.

use crate::lexer::{Token, TokenKind};
use crate::parser::matching;
use crate::report::Finding;
use crate::wire::find_enum;
use crate::SourceFile;
use std::collections::BTreeSet;

/// Runs the H-rules: quiet when no `pub enum Message` exists anywhere
/// (fixture trees, foreign workspaces).
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let Some(variants) = files
        .iter()
        .find_map(|f| find_enum(f.tokens()).map(|(v, _)| v))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for f in files.iter().filter(|f| f.class.handlers) {
        for def in f
            .parsed
            .fns
            .iter()
            .filter(|d| !d.in_test && d.name == "on_message")
        {
            let Some(body) = def.body else { continue };
            let arms = match_arms(f.tokens(), body);
            if arms.is_empty() {
                // A thin wrapper delegating elsewhere; the delegate's own
                // on_message carries the obligation.
                continue;
            }
            let handled: BTreeSet<&String> = arms.iter().map(|(n, _)| n).collect();
            for v in &variants {
                if !handled.contains(v) {
                    out.push(Finding::new(
                        &f.rel,
                        def.line,
                        "H01",
                        format!(
                            "Message::{v} is not matched by this engine's on_message: \
                             it would fall through silently; add an arm (an explicit \
                             ignore counts) or pragma this fn with the reason the \
                             engine does not speak it"
                        ),
                    ));
                }
            }
            for (name, line) in &arms {
                if !variants.contains(name) {
                    out.push(Finding::new(
                        &f.rel,
                        *line,
                        "H02",
                        format!(
                            "on_message matches Message::{name}, which is not a \
                             variant of the Message enum (stale handler after a \
                             variant removal?)"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Every `Message::Variant` reference in arm-pattern position inside the
/// body range, with its line. Constructor uses (`Message::Foo { .. }` as
/// an expression) never reach a `=>` and are excluded.
fn match_arms(tokens: &[Token], body: (usize, usize)) -> Vec<(String, u32)> {
    let mut arms = Vec::new();
    let mut k = body.0;
    while k + 2 <= body.1 {
        if tokens[k].is_ident("Message")
            && tokens[k + 1].is_op("::")
            && tokens[k + 2].kind == TokenKind::Ident
            && tokens[k + 2]
                .text
                .chars()
                .next()
                .is_some_and(char::is_uppercase)
        {
            if is_arm_pattern(tokens, k + 2, body.1) {
                arms.push((tokens[k + 2].text.clone(), tokens[k + 2].line));
            }
            k += 3;
            continue;
        }
        k += 1;
    }
    arms
}

/// Whether the variant name at token `v` sits in match-arm pattern
/// position: an optional binder group, any number of `|` alternates, an
/// optional `if` guard, then `=>`. The taint pass reuses this to tell a
/// `Message::X { .. }` construction from a destructuring arm.
pub(crate) fn is_arm_pattern(tokens: &[Token], v: usize, end: usize) -> bool {
    let mut p = v + 1;
    loop {
        if p > end {
            return false;
        }
        // Skip one binder group if present.
        if tokens[p].is_punct('{') || tokens[p].is_punct('(') {
            let (o, c) = if tokens[p].is_punct('{') {
                ('{', '}')
            } else {
                ('(', ')')
            };
            match matching(tokens, p, o, c) {
                Some(close) => p = close + 1,
                None => return false,
            }
            if p > end {
                return false;
            }
        }
        if tokens[p].is_op("=>") {
            return true;
        }
        if tokens[p].is_punct('|') {
            // Alternate: skip its `A :: B :: C` path, then loop back to
            // handle its binder group and whatever follows.
            p += 1;
            while p < end && tokens[p].kind == TokenKind::Ident && tokens[p + 1].is_op("::") {
                p += 2;
            }
            if p <= end && tokens[p].kind == TokenKind::Ident {
                p += 1;
            }
            continue;
        }
        if tokens[p].is_ident("if") {
            // Guard: scan to `=>` at group depth 0. A depth-0 `{` or `;`
            // means this was never a pattern.
            let mut d = 0i32;
            while p <= end {
                let t = &tokens[p];
                if t.is_punct('(') || t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    d -= 1;
                } else if d == 0 && t.is_op("=>") {
                    return true;
                } else if d == 0 && (t.is_punct('{') || t.is_punct(';')) {
                    return false;
                }
                p += 1;
            }
            return false;
        }
        return false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENUM: &str = "pub enum Message { Prepare { v: u64 }, Commit { v: u64 }, Retry(u8) }";

    fn lint(engine_src: &str) -> Vec<Finding> {
        check(&[
            SourceFile::new("crates/protocol/src/messages.rs", ENUM),
            SourceFile::new("crates/core/src/engine.rs", engine_src),
        ])
    }

    #[test]
    fn full_coverage_is_clean() {
        let found = lint(
            "fn on_message(&mut self, m: &Message) { match m { \
             Message::Prepare { v } => self.p(v), \
             Message::Commit { .. } => {} \
             Message::Retry(n) => self.r(n), } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn missing_variant_is_h01_even_behind_a_wildcard() {
        let found = lint(
            "fn on_message(&mut self, m: &Message) { match m { \
             Message::Prepare { v } => self.p(v), _ => {} } }",
        );
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|f| f.rule == "H01"));
        assert!(found.iter().any(|f| f.message.contains("Commit")));
        assert!(found.iter().any(|f| f.message.contains("Retry")));
    }

    #[test]
    fn alternation_arms_cover_both_sides() {
        let found = lint(
            "fn on_message(&mut self, m: &Message) { match m { \
             Message::Prepare { .. } | Message::Commit { .. } => self.vote(m), \
             Message::Retry(n) => self.r(n), } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn guarded_arm_counts_but_constructor_use_does_not() {
        let found = lint(
            "fn on_message(&mut self, m: &Message) { match m { \
             Message::Prepare { v } if *v > 0 => self.p(v), \
             Message::Commit { .. } => { self.out.push(Message::Retry(1)); } \
             Message::Retry(n) => self.r(n), } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn stale_arm_is_h02() {
        let found = lint(
            "fn on_message(&mut self, m: &Message) { match m { \
             Message::Prepare { .. } => {} Message::Commit { .. } => {} \
             Message::Retry(n) => self.r(n), Message::Ghost { .. } => {} } }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "H02");
        assert!(found[0].message.contains("Ghost"));
    }

    #[test]
    fn fn_without_a_message_match_is_exempt() {
        let found = lint("fn on_message(&mut self, m: &Message) { self.inner.on_message(m) }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn other_fn_names_are_ignored() {
        let found = lint(
            "fn route(&mut self, m: &Message) { match m { Message::Prepare { .. } => {} _ => {} } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
