//! Diagnostics: one [`Finding`] per violation, rendered human-readable
//! (`file:line: rule: message`) or as machine JSON for CI artifacts.

use std::fmt::Write as _;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D01`, `P02`, ...).
    pub rule: String,
    /// Human explanation.
    pub message: String,
    /// The offending source line, trimmed; empty when unavailable.
    pub excerpt: String,
}

impl Finding {
    /// Creates a finding without an excerpt (attached later from source).
    pub fn new(file: &str, line: u32, rule: &str, message: impl Into<String>) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.into(),
            excerpt: String::new(),
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Pragmas that suppressed at least one finding.
    pub suppressions_used: usize,
    /// Wall time per analysis pass, in run order — the CI budget check
    /// reads these out of the JSON artifact.
    pub timings_ms: Vec<(String, f64)>,
}

impl Report {
    /// Whether the run is clean (gates CI: clean == exit 0).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: {}: {}", f.file, f.line, f.rule, f.message);
            if !f.excerpt.is_empty() {
                let _ = writeln!(out, "    {}", f.excerpt);
            }
        }
        let _ = writeln!(
            out,
            "flexilint: {} file(s) scanned, {} finding(s), {} suppression(s) honoured",
            self.files_scanned,
            self.findings.len(),
            self.suppressions_used
        );
        out
    }

    /// GitHub Actions problem-matcher rendering: one `::error` workflow
    /// command per finding (annotates the PR diff), plus a `::notice`
    /// summary. Values are escaped per the workflow-command rules.
    pub fn github(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "::error file={},line={},title=flexilint {}::{}",
                gh_property(&f.file),
                f.line,
                gh_property(&f.rule),
                gh_data(&f.message)
            );
        }
        let _ = writeln!(
            out,
            "::notice title=flexilint::{} file(s) scanned, {} finding(s), \
             {} suppression(s) honoured",
            self.files_scanned,
            self.findings.len(),
            self.suppressions_used
        );
        out
    }

    /// JSON rendering (hand-rolled: the lint is dependency-free).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \
                 \"message\": {}, \"excerpt\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.rule),
                json_str(&f.message),
                json_str(&f.excerpt),
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"files_scanned\": {},\n  \"suppressions_used\": {},\n  \"timings_ms\": {{",
            self.files_scanned, self.suppressions_used,
        );
        for (i, (pass, ms)) in self.timings_ms.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{}: {ms:.2}", json_str(pass));
        }
        let _ = write!(out, "}},\n  \"clean\": {}\n}}\n", self.is_clean());
        out
    }
}

/// Escapes a workflow-command data value (the part after `::`).
fn gh_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command property value (`file=`, `title=`): data
/// escapes plus the property delimiters.
fn gh_property(s: &str) -> String {
    gh_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\nc"), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn report_renders_both_shapes() {
        let mut r = Report {
            files_scanned: 2,
            ..Default::default()
        };
        r.findings.push(Finding::new("a.rs", 3, "D01", "bad map"));
        assert!(r.human().contains("a.rs:3: D01: bad map"));
        assert!(r.json().contains("\"rule\": \"D01\""));
        assert!(r.json().contains("\"clean\": false"));
        assert!(!r.is_clean());
    }

    #[test]
    fn json_carries_per_pass_timings() {
        let r = Report {
            files_scanned: 1,
            timings_ms: vec![("graph".into(), 1.25), ("taint".into(), 0.5)],
            ..Default::default()
        };
        let j = r.json();
        assert!(
            j.contains("\"timings_ms\": {\"graph\": 1.25, \"taint\": 0.50}"),
            "{j}"
        );
    }

    #[test]
    fn github_format_emits_error_commands_with_escapes() {
        let mut r = Report {
            files_scanned: 1,
            ..Default::default()
        };
        r.findings.push(Finding::new(
            "a.rs",
            3,
            "L01",
            "cycle: `x` -> `y`\nand back",
        ));
        let gh = r.github();
        assert!(
            gh.contains(
                "::error file=a.rs,line=3,title=flexilint L01::cycle: `x` -> `y`%0Aand back"
            ),
            "{gh}"
        );
        assert!(gh.contains("::notice title=flexilint::1 file(s) scanned"));
    }
}
