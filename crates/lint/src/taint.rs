//! T/N-rules: taint dataflow over the workspace call graph.
//!
//! **T-rules — untrusted input.** Every `wire` decode entry point (fns
//! named `decode_*`/`read_*`, which includes `read_frame`) handles bytes
//! an adversarial peer chose. **T01** flags panicking operations —
//! `.unwrap()`/`.expect()`, panic macros, value indexing — in any wire
//! function transitively reachable from a decode entry, and in any
//! runtime function that *directly* calls one (the TCP reader threads).
//! The validation boundary is the decode call's return: past it the
//! bytes have become typed `Message` fields, and deeper propagation is
//! the engines' domain. **T02** flags unchecked `as` casts to a
//! fixed-width integer or `usize` in the same region — a length or
//! count narrowed from attacker bytes wraps silently; `usize::try_from`
//! (or a bounds check the pragma cites) does not.
//!
//! **N-rules — determinism leaks.** The D-rules ban wall-clock and
//! entropy *sources* in deterministic crates, but 17 pragmas legitimately
//! excuse stats plumbing (`ExecStats` timers, key generation). **N01**
//! proves those excused values stay out of the protocol's deterministic
//! surface: a value whose dataflow originates at `Instant::now`, RNG, or
//! a stats timer must not reach `Message` construction, wire encoding
//! (`encode_*`/`write_frame`/`write_message_body`), or `state_digest`
//! input. Taint is tracked per function (let-bindings and assignments to
//! a fixpoint) and across calls via return summaries computed bottom-up
//! over the graph's SCC condensation — a function returning
//! `started.elapsed()` taints its callers' bindings. Struct-literal
//! returns carry *field-level* taint (`LaneOutcome { busy_nanos, .. }`
//! taints only reads of `.busy_nanos`), and method calls on a
//! field-tainted receiver do not propagate it — `KeyStore::generate`'s
//! entropy stays inside the keys unless a tainted field is read out.

use crate::graph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::panics::{is_value_index, PANIC_MACROS};
use crate::report::Finding;
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose code N01 scans for sinks: everywhere a `Message` is
/// built or encoded. (Summaries are computed workspace-wide regardless.)
const N_SINK_CRATES: &[&str] = &[
    "types",
    "protocol",
    "core",
    "baselines",
    "sim",
    "exec",
    "trusted",
    "crypto",
    "wire",
    "runtime",
    "host",
];

/// Integer types a tainted `as` cast may narrow into. `usize`/`isize`
/// are included: their width is platform-defined, so `u64 as usize`
/// truncates on 32-bit targets.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Call names that hand their arguments to the deterministic surface.
fn is_n_sink_call(name: &str) -> bool {
    name.starts_with("encode_")
        || matches!(
            name,
            "write_frame"
                | "write_message_body"
                | "write_reply_body"
                | "state_digest"
                | "mutation_hash"
        )
}

/// Runs T01/T02 and N01.
pub fn check(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    check_untrusted(files, graph, &mut out);
    check_determinism(files, graph, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

// ---------------------------------------------------------------- T-rules

fn check_untrusted(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    // Decode entry points: wire fns whose name marks them as byte readers.
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            files[n.file].crate_name == "wire"
                && (n.name.starts_with("decode_") || n.name.starts_with("read_"))
        })
        .map(|(id, _)| id)
        .collect();
    let entry_set: BTreeSet<usize> = entries.iter().copied().collect();

    let mut seen: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();

    // Region 1: everything transitively reachable inside `wire`.
    for id in graph.reachable(entries.iter().copied()) {
        let n = &graph.nodes[id];
        let f = &files[n.file];
        if f.crate_name != "wire" {
            continue;
        }
        scan_t_sites(f, n.body, &n.name, &mut seen, out);
    }

    // Region 2: runtime fns that directly call a decode entry — the TCP
    // reader threads handling freshly decoded, still-unvalidated frames.
    for (id, n) in graph.nodes.iter().enumerate() {
        let f = &files[n.file];
        if f.crate_name != "runtime" {
            continue;
        }
        let calls_decode = graph.calls[id]
            .iter()
            .any(|c| graph.resolve(id, c).iter().any(|t| entry_set.contains(t)));
        if calls_decode {
            scan_t_sites(f, n.body, &n.name, &mut seen, out);
        }
    }
}

/// Flags T01 panic sites and T02 narrowing casts in one decode-reachable
/// function body.
fn scan_t_sites(
    f: &SourceFile,
    body: (usize, usize),
    fn_name: &str,
    seen: &mut BTreeSet<(String, usize, &'static str)>,
    out: &mut Vec<Finding>,
) {
    let tokens = f.tokens();
    for k in body.0..=body.1.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[k];
        let what = if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && k > 0
            && tokens[k - 1].is_punct('.')
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
        {
            Some(format!(".{}()", t.text))
        } else if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('!'))
        {
            Some(format!("{}!", t.text))
        } else if t.is_punct('[') && k > body.0 && is_value_index(tokens, k) {
            Some(format!("indexing `{}[..]`", tokens[k - 1].text))
        } else {
            None
        };
        if let Some(what) = what {
            if seen.insert((f.rel.clone(), k, "T01")) {
                out.push(Finding::new(
                    &f.rel,
                    t.line,
                    "T01",
                    format!(
                        "{what} in `{fn_name}` is reachable from a wire decode \
                         entry point: these bytes came from a peer, and a \
                         malformed frame must surface as a WireError, not a \
                         panic; use a checked conversion/.get() or pragma with \
                         the proof the operation cannot fail"
                    ),
                ));
            }
        }
        // T02: `<expr> as <narrow-int>` — exempt literal casts (`1 as u8`
        // is a constant, not attacker data).
        if t.is_ident("as")
            && tokens
                .get(k + 1)
                .is_some_and(|n| NARROW_TYPES.contains(&n.text.as_str()))
            && k > body.0
            && tokens[k - 1].kind != TokenKind::Literal
            && seen.insert((f.rel.clone(), k, "T02"))
        {
            out.push(Finding::new(
                &f.rel,
                t.line,
                "T02",
                format!(
                    "unchecked `as {}` cast in `{fn_name}` on a wire decode \
                     path: a length or count narrowed from peer-chosen bytes \
                     wraps silently; use usize::try_from / a checked \
                     conversion, or pragma with the bound that makes the cast \
                     lossless",
                    tokens[k + 1].text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- N-rules

/// What a function's return value carries.
#[derive(Clone, PartialEq, Eq)]
enum Summary {
    Clean,
    /// The whole return value is nondeterministic.
    Full,
    /// A struct literal return whose named fields are tainted.
    Fields(BTreeSet<String>),
}

fn check_determinism(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    // Return summaries, bottom-up: Tarjan emits SCCs callees-first, so
    // every callee summary exists before its callers are analysed. Within
    // one SCC (recursion) a second sweep reaches the fixpoint — taint
    // lattices this small (Clean < Fields < Full) need at most two.
    let mut summaries: Vec<Summary> = vec![Summary::Clean; graph.nodes.len()];
    for scc in graph.sccs_bottom_up() {
        for _ in 0..2 {
            for &id in scc {
                let (taint, summary) = analyse(files, graph, id, &summaries);
                summaries[id] = summary;
                drop(taint);
            }
            if scc.len() == 1 {
                break;
            }
        }
    }

    // Sinks, per node in the sink crates.
    for (id, n) in graph.nodes.iter().enumerate() {
        let f = &files[n.file];
        if !N_SINK_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let (taint, _) = analyse(files, graph, id, &summaries);
        let tokens = f.tokens();
        let ctx = Ctx {
            graph,
            node: id,
            taint: &taint,
            summaries: &summaries,
        };

        // Sink 1: Message construction in expression position.
        let mut k = n.body.0;
        while k + 2 <= n.body.1 {
            if tokens[k].is_ident("Message")
                && tokens[k + 1].is_op("::")
                && tokens[k + 2].kind == TokenKind::Ident
                && !crate::handlers::is_arm_pattern(tokens, k + 2, n.body.1)
            {
                let variant = &tokens[k + 2].text;
                let group = tokens.get(k + 3).and_then(|g| {
                    if g.is_punct('{') {
                        crate::parser::matching(tokens, k + 3, '{', '}').map(|c| (k + 3, c))
                    } else if g.is_punct('(') {
                        crate::parser::matching(tokens, k + 3, '(', ')').map(|c| (k + 3, c))
                    } else {
                        None
                    }
                });
                if let Some(group) = group {
                    if let Some(why) = expr_taint(tokens, group, &ctx) {
                        out.push(Finding::new(
                            &f.rel,
                            tokens[k + 2].line,
                            "N01",
                            format!(
                                "nondeterministic value ({why}) flows into \
                                 Message::{variant}: replicas would build \
                                 divergent messages from identical inputs, \
                                 breaking the simulator/cluster equivalence; \
                                 keep timing and entropy out of protocol \
                                 messages, or pragma with the proof the field \
                                 never enters consensus state"
                            ),
                        ));
                    }
                    k = group.1 + 1;
                    continue;
                }
            }
            k += 1;
        }

        // Sink 2: wire-encoding / digest calls.
        for c in &graph.calls[id] {
            if !is_n_sink_call(&c.name) {
                continue;
            }
            if let Some(why) = expr_taint(tokens, (c.args.0 + 1, c.args.1.saturating_sub(1)), &ctx)
            {
                out.push(Finding::new(
                    &f.rel,
                    c.line,
                    "N01",
                    format!(
                        "nondeterministic value ({why}) is passed to `{}`: \
                         wire bytes and digests must be pure functions of \
                         protocol state, or replicas diverge; keep timing and \
                         entropy out of encoded payloads, or pragma with the \
                         proof the argument is deterministic",
                        c.name
                    ),
                ));
            }
        }
    }
}

/// Per-expression taint context: the node's local taint plus the global
/// summaries for call returns.
struct Ctx<'a> {
    graph: &'a CallGraph,
    node: usize,
    taint: &'a Taint,
    summaries: &'a [Summary],
}

/// One function's local taint state.
#[derive(Default)]
struct Taint {
    /// Fully tainted local bindings.
    idents: BTreeSet<String>,
    /// Field-tainted bindings: reads of `name.field` are tainted.
    fields: BTreeMap<String, BTreeSet<String>>,
}

/// Identifier names that *are* timer values wherever they appear —
/// `ExecStats` plumbing today excused by D-rule pragmas.
const SOURCE_NAMES: &[&str] = &["busy_nanos", "critical_nanos"];

/// Whether token `k` is a nondeterminism source.
fn source_at(tokens: &[Token], k: usize) -> bool {
    let t = &tokens[k];
    if t.kind != TokenKind::Ident {
        return false;
    }
    let callish = |k: usize| tokens.get(k + 1).is_some_and(|n| n.is_punct('('));
    match t.text.as_str() {
        "SystemTime" | "OsRng" => true,
        s if SOURCE_NAMES.contains(&s) => true,
        "now" => k >= 2 && tokens[k - 1].is_op("::") && tokens[k - 2].is_ident("Instant"),
        "elapsed" | "exec_stats" => k >= 1 && tokens[k - 1].is_punct('.') && callish(k),
        "thread_rng" | "from_entropy" => callish(k),
        "random" => k >= 2 && tokens[k - 1].is_op("::") && tokens[k - 2].is_ident("rand"),
        _ => false,
    }
}

/// Whether any token in the inclusive range carries taint; returns a
/// short reason for the finding message.
fn expr_taint(tokens: &[Token], range: (usize, usize), ctx: &Ctx) -> Option<String> {
    let (start, end) = range;
    if start > end {
        return None;
    }
    for k in start..=end.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[k];
        if source_at(tokens, k) {
            return Some(format!("`{}`", t.text));
        }
        if t.kind == TokenKind::Ident && ctx.taint.idents.contains(&t.text) {
            // An ident use — but not a struct-literal field *name*
            // (`at: clean_value` must not match a tainted `at` binding).
            let is_field_label = tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens.get(k + 1).is_some_and(|n| n.is_op("::"));
            // Shorthand struct fields (`Foo { nanos }`) ARE uses; labels
            // with values are not. A label is followed by `:` then the
            // value expression.
            if !is_field_label {
                return Some(format!("binding `{}`", t.text));
            }
        }
        // Field-taint read: `x.field` with field in x's tainted set.
        if t.kind == TokenKind::Ident && k + 2 <= end && tokens[k + 1].is_punct('.') {
            if let Some(fields) = ctx.taint.fields.get(&t.text) {
                let fname = &tokens[k + 2];
                if fname.kind == TokenKind::Ident && fields.contains(&fname.text) {
                    return Some(format!("`{}.{}`", t.text, fname.text));
                }
            }
        }
    }
    // Calls whose return summary is Full.
    for c in &ctx.graph.calls[ctx.node] {
        if c.idx < start || c.idx > end {
            continue;
        }
        for t in ctx.graph.resolve(ctx.node, c) {
            if ctx.summaries[t] == Summary::Full {
                return Some(format!("return of `{}`", c.name));
            }
        }
    }
    None
}

/// Computes one function's local taint (to a fixpoint) and its return
/// summary given the current global summaries.
fn analyse(
    files: &[SourceFile],
    graph: &CallGraph,
    id: usize,
    summaries: &[Summary],
) -> (Taint, Summary) {
    let n = &graph.nodes[id];
    let tokens = files[n.file].tokens();
    let (b0, b1) = n.body;
    let mut taint = Taint::default();

    // Destructured timer fields (`let LaneOutcome { busy_nanos, .. }`) are
    // caught by name: SOURCE_NAMES idents taint themselves at use sites,
    // so only let/assignment propagation needs the fixpoint.
    for _ in 0..4 {
        let before = (taint.idents.len(), taint.fields.len());
        let mut k = b0;
        while k < b1 {
            // `let [mut] name ... = expr ;`
            if tokens[k].is_ident("let") {
                let mut p = k + 1;
                if tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
                    p += 1;
                }
                let name = match tokens.get(p) {
                    Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
                    _ => {
                        k += 1;
                        continue;
                    }
                };
                // Find the `=` (at group depth 0 from the let) and the
                // statement-ending `;`.
                if let Some((eq, semi)) = let_rhs(tokens, p, b1) {
                    let ctx = Ctx {
                        graph,
                        node: id,
                        taint: &taint,
                        summaries,
                    };
                    let rhs = (eq + 1, semi.saturating_sub(1));
                    if expr_taint(tokens, rhs, &ctx).is_some() {
                        taint.idents.insert(name);
                    } else {
                        let fields = fields_taint(tokens, rhs, graph, id, summaries, &taint);
                        if !fields.is_empty() {
                            taint.fields.entry(name).or_default().extend(fields);
                        }
                    }
                    k = semi + 1;
                    continue;
                }
            }
            // Plain reassignment at a statement start: `name = expr ;`
            // (the lexer never merges `==`, so equality shows as `= =`).
            if tokens[k].kind == TokenKind::Ident
                && k > b0
                && (tokens[k - 1].is_punct(';')
                    || tokens[k - 1].is_punct('{')
                    || tokens[k - 1].is_punct('}'))
                && tokens.get(k + 1).is_some_and(|t| t.is_punct('='))
                && !tokens.get(k + 2).is_some_and(|t| t.is_punct('='))
            {
                if let Some(semi) = (k + 2..=b1).find(|&j| tokens[j].is_punct(';')) {
                    let ctx = Ctx {
                        graph,
                        node: id,
                        taint: &taint,
                        summaries,
                    };
                    if expr_taint(tokens, (k + 2, semi.saturating_sub(1)), &ctx).is_some() {
                        taint.idents.insert(tokens[k].text.clone());
                    }
                    k = semi + 1;
                    continue;
                }
            }
            k += 1;
        }
        if (taint.idents.len(), taint.fields.len()) == before {
            break;
        }
    }

    // Return summary: explicit `return expr;` then the tail expression.
    let ctx = Ctx {
        graph,
        node: id,
        taint: &taint,
        summaries,
    };
    let mut k = b0 + 1;
    while k < b1 {
        if tokens[k].is_ident("return") {
            let semi = (k + 1..=b1)
                .find(|&j| tokens[j].is_punct(';'))
                .unwrap_or(b1);
            if expr_taint(tokens, (k + 1, semi.saturating_sub(1)), &ctx).is_some() {
                return (taint, Summary::Full);
            }
            k = semi + 1;
            continue;
        }
        k += 1;
    }
    if let Some(tail) = tail_expr(tokens, (b0, b1)) {
        // A struct-literal tail carries field-level taint only.
        if let Some(fields) = struct_literal_fields(tokens, tail, graph, id, summaries, &taint) {
            return (
                taint,
                if fields.is_empty() {
                    Summary::Clean
                } else {
                    Summary::Fields(fields)
                },
            );
        }
        if expr_taint(tokens, tail, &ctx).is_some() {
            return (taint, Summary::Full);
        }
    }
    (taint, Summary::Clean)
}

/// For a `let` starting at binder token `p`: the indices of its `=` and
/// terminating `;`, both at group depth 0 relative to the binding.
fn let_rhs(tokens: &[Token], p: usize, end: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut eq = None;
    for (k, t) in tokens.iter().enumerate().take(end + 1).skip(p) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && eq.is_none() && t.is_punct('=') {
            eq = Some(k);
        } else if depth == 0 && t.is_punct(';') {
            return eq.map(|e| (e, k));
        }
        if depth < 0 {
            return None;
        }
    }
    None
}

/// The function body's tail expression: tokens after the last top-level
/// `;` (or `}` of a trailing-statement block), up to the closing brace.
fn tail_expr(tokens: &[Token], body: (usize, usize)) -> Option<(usize, usize)> {
    let (b0, b1) = body;
    if b1 <= b0 + 1 {
        return None;
    }
    let mut depth = 0i32;
    let mut last_stmt_end = b0;
    for (k, t) in tokens.iter().enumerate().take(b1).skip(b0 + 1) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            last_stmt_end = k;
        }
    }
    if last_stmt_end + 1 >= b1 {
        return None;
    }
    Some((last_stmt_end + 1, b1 - 1))
}

/// Field-level taint a `let` RHS confers on its binding: the tainted
/// fields of a struct-literal RHS, or the `Fields` summary of a call
/// the RHS resolves to (`let o = run_lane();`).
fn fields_taint(
    tokens: &[Token],
    range: (usize, usize),
    graph: &CallGraph,
    node: usize,
    summaries: &[Summary],
    taint: &Taint,
) -> BTreeSet<String> {
    if let Some(fields) = struct_literal_fields(tokens, range, graph, node, summaries, taint) {
        return fields;
    }
    let mut out = BTreeSet::new();
    for c in &graph.calls[node] {
        if c.idx < range.0 || c.idx > range.1 {
            continue;
        }
        for t in graph.resolve(node, c) {
            if let Summary::Fields(fields) = &summaries[t] {
                out.extend(fields.iter().cloned());
            }
        }
    }
    out
}

/// If the expression is a struct literal `Name { f1: e1, f2, .. }`,
/// returns the set of tainted field names (empty set = clean literal);
/// `None` means it is not a struct literal.
fn struct_literal_fields(
    tokens: &[Token],
    range: (usize, usize),
    graph: &CallGraph,
    node: usize,
    summaries: &[Summary],
    taint: &Taint,
) -> Option<BTreeSet<String>> {
    let (start, end) = range;
    // `Name {` or `path :: Name {`.
    let mut k = start;
    if tokens.get(k)?.kind != TokenKind::Ident {
        return None;
    }
    while k < end && tokens[k + 1].is_op("::") {
        k += 2;
    }
    if tokens.get(k)?.kind != TokenKind::Ident
        || !tokens[k]
            .text
            .chars()
            .next()
            .is_some_and(char::is_uppercase)
    {
        return None;
    }
    let open = k + 1;
    if !tokens.get(open).is_some_and(|t| t.is_punct('{')) {
        return None;
    }
    let close = crate::parser::matching(tokens, open, '{', '}')?;
    if close != end {
        return None;
    }

    let ctx = Ctx {
        graph,
        node,
        taint,
        summaries,
    };
    let mut fields = BTreeSet::new();
    let mut p = open + 1;
    while p < close {
        let t = &tokens[p];
        if t.kind != TokenKind::Ident {
            p += 1;
            continue;
        }
        let name = t.text.clone();
        // Value range: to the `,` at this depth (or the closing brace).
        let has_value = tokens.get(p + 1).is_some_and(|n| n.is_punct(':'));
        let vstart = if has_value { p + 2 } else { p };
        let mut depth = 0i32;
        let mut vend = close - 1;
        for (q, t) in tokens.iter().enumerate().take(close).skip(vstart) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(',') {
                vend = q - 1;
                break;
            }
            vend = q;
        }
        if SOURCE_NAMES.contains(&name.as_str())
            || expr_taint(tokens, (vstart, vend), &ctx).is_some()
        {
            fields.insert(name);
        }
        p = vend + 2;
    }
    Some(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, src)| SourceFile::new(rel, src))
            .collect();
        let graph = CallGraph::build(&files);
        check(&files, &graph)
    }

    #[test]
    fn unwrap_transitively_reachable_from_decode_is_t01() {
        let found = lint(&[(
            "crates/wire/src/codec.rs",
            "pub fn decode_ping(b: &[u8]) -> u64 { header(b) }\n\
             fn header(b: &[u8]) -> u64 { u64::from_le_bytes(b[..8].try_into().unwrap()) }",
        )]);
        let t01: Vec<_> = found.iter().filter(|f| f.rule == "T01").collect();
        assert_eq!(t01.len(), 2, "{found:?}"); // the index and the unwrap
        assert!(t01.iter().any(|f| f.message.contains(".unwrap()")));
    }

    #[test]
    fn panic_sites_not_reachable_from_decode_are_exempt() {
        let found = lint(&[(
            "crates/wire/src/codec.rs",
            "pub fn encode_ping(out: &mut Vec<u8>, v: u64) { push_all(out, v); }\n\
             fn push_all(out: &mut Vec<u8>, v: u64) { let b = v.to_le_bytes(); \
             out.push(b[0]); }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn narrowing_cast_on_a_decode_path_is_t02_but_literals_are_exempt() {
        let found = lint(&[(
            "crates/wire/src/codec.rs",
            "pub fn decode_len(b: &[u8]) -> usize { let mut r = 0u64; \
             for x in b { r = mix(r, x); } let cap = 1 as usize; r as usize }",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "T02");
        assert!(found[0].message.contains("as usize"));
    }

    #[test]
    fn runtime_direct_caller_of_decode_is_scanned() {
        let found = lint(&[
            (
                "crates/wire/src/frame.rs",
                "pub fn read_frame(r: &mut R) -> Result<Vec<u8>, E> { fill(r) }\n\
                 fn fill(r: &mut R) -> Result<Vec<u8>, E> { Ok(Vec::new()) }",
            ),
            (
                "crates/runtime/src/tcp.rs",
                "fn reader(r: &mut R) { let frame = read_frame(r).unwrap(); eat(frame); }",
            ),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "T01");
        assert!(found[0].file.contains("runtime"));
    }

    #[test]
    fn clock_value_into_message_construction_is_n01() {
        let found = lint(&[(
            "crates/runtime/src/lib.rs",
            "fn stamp(&mut self) { let t = Instant::now(); \
             self.out.push(Message::Tick { at: t }); }",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "N01");
        assert!(found[0].message.contains("Message::Tick"));
    }

    #[test]
    fn taint_flows_through_return_summaries_across_files() {
        let found = lint(&[
            (
                "crates/runtime/src/clock.rs",
                "impl Pacer { pub fn budget(&self) -> u64 { \
                 self.started.elapsed().as_nanos() as u64 } }",
            ),
            (
                "crates/runtime/src/lib.rs",
                "impl Node { fn beat(&mut self) { let b = self.pacer.budget(); \
                 self.tx.push(encode_ping(b)); } }",
            ),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "N01");
        assert!(found[0].message.contains("encode_ping"));
    }

    #[test]
    fn struct_field_taint_does_not_leak_through_the_receiver() {
        // run_lane-shaped: the outcome struct carries tainted timer fields,
        // but reading a *clean* field of it must stay clean.
        let found = lint(&[(
            "crates/exec/src/lib.rs",
            "fn run_lane() -> LaneOutcome { let started = Instant::now(); \
             let results = compute(); \
             LaneOutcome { results, busy_nanos: started.elapsed() } }\n\
             fn compute() -> u64 { 7 }\n\
             fn publish(&mut self) { let o = run_lane(); \
             self.q.push(Message::Done { r: o.results }); }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn reading_a_tainted_field_into_a_sink_is_n01() {
        let found = lint(&[(
            "crates/exec/src/lib.rs",
            "fn run_lane() -> LaneOutcome { let started = Instant::now(); \
             LaneOutcome { busy_nanos: started.elapsed() } }\n\
             fn publish(&mut self) { let o = run_lane(); \
             self.q.push(Message::Done { t: o.busy_nanos }); }",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "N01");
        assert!(found[0].message.contains("busy_nanos"));
    }

    #[test]
    fn match_arm_patterns_are_not_constructions() {
        let found = lint(&[(
            "crates/core/src/engine.rs",
            "fn on_message(&mut self, m: &Message) { match m { \
             Message::Tick { at } => self.note(at), _ => {} } }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn state_digest_with_tainted_arg_is_n01() {
        let found = lint(&[(
            "crates/exec/src/lib.rs",
            "fn snap(&self) -> Digest { let salt = rand::random(); \
             state_digest(self.store, salt) }\nfn state_digest(s: S, x: u64) -> Digest { D }",
        )]);
        assert!(
            found
                .iter()
                .any(|f| f.rule == "N01" && f.message.contains("state_digest")),
            "{found:?}"
        );
    }
}
