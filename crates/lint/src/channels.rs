//! C-rules: channel endpoint topology.
//!
//! A channel whose sender is dropped at creation leaves its receiver
//! permanently wedged (**C01**); one whose receiver is dropped swallows
//! every send silently (**C02**); and a discarded `try_send` result is a
//! shed message that never reaches the drop accounting the transport
//! layer promises (**C03**). The PR-4 TCP work hit all three shapes by
//! hand — this pass finds them at lint time.
//!
//! Scope: every crate source. Detection is intentionally local: a
//! creation is the canonical `let (tx, rx) = bounded(..)/unbounded()/
//! channel()` destructuring, and an endpoint counts as *live* when its
//! exact identifier occurs again in the enclosing block (moves into
//! structs, spawns and loops all count). Underscore-prefixed names are
//! an explicit "yes, dropped on purpose" and stay exempt.

use crate::lexer::TokenKind;
use crate::parser::{self};
use crate::report::Finding;
use crate::SourceFile;

/// The constructors that create a (sender, receiver) pair.
const CTORS: &[&str] = &["bounded", "unbounded", "channel"];

/// Runs the C-rules over every in-scope file.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| f.class.channels) {
        for def in f.parsed.fns.iter().filter(|d| !d.in_test) {
            let Some(body) = def.body else { continue };
            let calls = parser::calls_in(f.tokens(), body);
            for c in &calls {
                if CTORS.contains(&c.name.as_str()) && !c.is_method {
                    endpoint_rules(f, body, c, &mut out);
                }
                if c.name == "try_send" && c.is_method {
                    discard_rule(f, c, &mut out);
                }
            }
        }
    }
    out
}

/// C01/C02 at one channel-creation call.
fn endpoint_rules(
    f: &SourceFile,
    body: (usize, usize),
    call: &parser::Call,
    out: &mut Vec<Finding>,
) {
    let tokens = f.tokens();
    // Walk back over the constructor's path prefix (`crossbeam::channel::
    // bounded`) to the start of the callee expression; the canonical
    // creation shape puts `=` right before it.
    let mut start = call.idx;
    while start >= 2 && tokens[start - 1].is_op("::") && tokens[start - 2].kind == TokenKind::Ident
    {
        start -= 2;
    }
    if start < 2 || !tokens[start - 1].is_punct('=') {
        return;
    }
    // Walk back from the `=`: an optional type-ascription group first
    // (`: (Sender<..>, Receiver<..>)`), then the `( tx , rx )` pattern,
    // then `let`.
    let mut p = start - 1; // exclusive upper bound of what's left of `=`
    let (pat_open, pat_close) = loop {
        while p > 0 && !tokens[p - 1].is_punct(')') {
            let t = &tokens[p - 1];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                return;
            }
            p -= 1;
        }
        if p == 0 {
            return;
        }
        let Some(open) = parser::matching_backward(tokens, p - 1, '(', ')') else {
            return;
        };
        if open > 0 && tokens[open - 1].is_punct(':') {
            p = open - 1;
            continue;
        }
        break (open, p - 1);
    };
    if pat_open == 0 || !tokens[pat_open - 1].is_ident("let") {
        return;
    }
    // Inside the pattern: exactly `ident , ident` (`mut` tolerated).
    let inner: Vec<usize> = (pat_open + 1..pat_close)
        .filter(|&k| tokens[k].kind == TokenKind::Ident && tokens[k].text != "mut")
        .collect();
    if inner.len() != 2 {
        return;
    }
    let (tx_i, rx_i) = (inner[0], inner[1]);
    let tx = tokens[tx_i].text.clone();
    let rx = tokens[rx_i].text.clone();

    // Liveness: the identifier occurs again between the end of this
    // statement and the end of the enclosing block.
    let stmt_end = (call.args.1..=body.1)
        .find(|&k| tokens[k].is_punct(';'))
        .unwrap_or(body.1);
    let scope_end = f
        .parsed
        .enclosing_block(call.idx)
        .map(|b| b.close)
        .unwrap_or(body.1);
    let used = |name: &str| {
        (stmt_end + 1..=scope_end.min(tokens.len().saturating_sub(1)))
            .any(|k| tokens[k].is_ident(name))
    };
    if !tx.starts_with('_') && !used(&tx) {
        out.push(Finding::new(
            &f.rel,
            call.line,
            "C01",
            format!(
                "channel sender `{tx}` is never used: it drops at the end of this \
                 statement, leaving receiver `{rx}` permanently wedged (recv blocks \
                 or disconnects); plumb it to a producer, or name it `_{tx}` if the \
                 dead lane is deliberate"
            ),
        ));
    }
    if !rx.starts_with('_') && !used(&rx) {
        out.push(Finding::new(
            &f.rel,
            call.line,
            "C02",
            format!(
                "channel receiver `{rx}` is never used: it drops at the end of this \
                 statement, so every send into `{tx}` is silently lost; consume it, \
                 or name it `_{rx}` if the sink is deliberate"
            ),
        ));
    }
}

/// C03 at one `.try_send(..)` call: the `Result` must be observed.
fn discard_rule(f: &SourceFile, call: &parser::Call, out: &mut Vec<Finding>) {
    let tokens = f.tokens();
    let after = call.args.1 + 1;
    // `tx.try_send(x);` — plain statement discard.
    let mut discarded = tokens.get(after).is_some_and(|t| t.is_punct(';'));
    // `tx.try_send(x).ok();` — laundered discard.
    if !discarded
        && tokens.get(after).is_some_and(|t| t.is_punct('.'))
        && tokens.get(after + 1).is_some_and(|t| t.is_ident("ok"))
        && tokens.get(after + 4).is_some_and(|t| t.is_punct(';'))
    {
        discarded = true;
    }
    // `let _ = tx.try_send(x);` — explicit discard.
    if !discarded {
        let mut j = call.idx;
        while j > 0 {
            j -= 1;
            let t = &tokens[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.is_ident("let")
                && tokens.get(j + 1).is_some_and(|t| t.is_ident("_"))
                && tokens.get(j + 2).is_some_and(|t| t.is_punct('='))
            {
                discarded = true;
                break;
            }
        }
    }
    if discarded {
        out.push(Finding::new(
            &f.rel,
            call.line,
            "C03",
            "try_send result discarded: a shed message must hit a drop counter \
             (or be handled), not vanish — check is_err() and account for it",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&[SourceFile::new("crates/runtime/src/lib.rs", src)])
    }

    #[test]
    fn unused_sender_is_c01() {
        let found = lint("fn a() { let (tx, rx) = bounded(4); rx.recv(); }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "C01");
        assert!(found[0].message.contains("tx"));
    }

    #[test]
    fn unused_receiver_is_c02() {
        let found = lint("fn a() { let (tx, rx) = unbounded(); tx.send(1); }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "C02");
    }

    #[test]
    fn both_endpoints_used_is_clean() {
        let found = lint(
            "fn a() { let (tx, rx) = bounded(4); spawn(move || tx.send(1)); \
             while let Ok(v) = rx.recv() { eat(v); } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn underscore_names_opt_out() {
        let found = lint("fn a() { let (tx, _rx) = bounded::<u8>(4); keep(tx); }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn moved_into_struct_counts_as_used() {
        let found = lint("fn a() -> S { let (tx, rx) = bounded(4); S { tx, rx } }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn path_qualified_ctor_is_recognised() {
        let found = lint("fn a() { let (tx, rx) = crossbeam::channel::bounded(4); keep(rx); }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "C01");
    }

    #[test]
    fn discarded_try_send_is_c03() {
        let found = lint("fn a(tx: &S) { tx.try_send(1); }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "C03");
        let found = lint("fn a(tx: &S) { let _ = tx.try_send(1); }");
        assert_eq!(found.len(), 1, "{found:?}");
        let found = lint("fn a(tx: &S) { tx.try_send(1).ok(); }");
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn checked_try_send_is_clean() {
        let found =
            lint("fn a(&mut self) { if self.tx.try_send(1).is_err() { self.drops += 1; } }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn test_regions_are_exempt() {
        let found = lint("#[cfg(test)] mod t { fn a() { let (tx, rx) = bounded(1); tx; } }");
        assert!(found.is_empty(), "{found:?}");
    }
}
