//! Q-rules: quorum arithmetic, checked symbolically.
//!
//! The protocols' safety rests on two lines of algebra: any two quorums
//! that can both commit a value must intersect in enough replicas to
//! pin it (≥ f + 1 honest-majority witnesses in the untrusted
//! `n = 3f + 1` regime; ≥ 1 witness when a trusted component already
//! prevents equivocation, `n = 2f + 1`), and a quorum must still be
//! reachable with f replicas crashed (q ≤ n − f). This pass extracts
//! the workspace's quorum definitions — `ReplicationFactor::replicas`,
//! `small_quorum`, `large_quorum` — as linear expressions `µ·f + c` and
//! proves both properties for every f ≥ 1, which for linear forms
//! reduces to two integer comparisons (µ ≥ 0 and µ + c ≥ 0 on the
//! slack). **Q01** is an intersection gap; **Q02** is an unreachable
//! quorum.
//!
//! Definitions are checked against their own regime (`large_quorum`
//! against 3f + 1, `small_quorum` against 2f + 1 — the pairings the
//! protocol table uses). Then every *site* that fixes a quorum rule —
//! `prepare_quorum_rule:`/`commit_quorum_rule:` fields in a
//! `ProtocolStyle` literal, and `let …prepare_quorum… =` bindings onto
//! a quorum helper — is re-checked for intersection in the regime of
//! the `ProtocolId` named in the same function, via the arm map of
//! `replication_factor`. That catches the cross-regime bug class the
//! paper is about: a trust-bft `f + 1` quorum pasted into a `3f + 1`
//! deployment intersects in `1 − f` replicas and is silently unsafe.
//! Availability is deliberately not re-checked at sites: fast paths
//! (Zyzzyva's all-replicas reply rule) trade it away on purpose.

use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::SourceFile;
use std::collections::BTreeMap;

/// A linear form `f_coef · f + constant` over the fault threshold.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Linear {
    f_coef: i64,
    constant: i64,
}

impl Linear {
    const fn new(f_coef: i64, constant: i64) -> Self {
        Linear { f_coef, constant }
    }

    fn sub(self, o: Linear) -> Linear {
        Linear::new(self.f_coef - o.f_coef, self.constant - o.constant)
    }

    /// Whether `self ≥ o` for every integer f ≥ 1.
    fn ge_for_all_f(self, o: Linear) -> bool {
        let d = self.sub(o);
        d.f_coef >= 0 && d.f_coef + d.constant >= 0
    }

    /// Renders as `2f + 1` / `f` / `3` for findings.
    fn render(self) -> String {
        match (self.f_coef, self.constant) {
            (0, c) => format!("{c}"),
            (1, 0) => "f".into(),
            (1, c) if c > 0 => format!("f + {c}"),
            (1, c) => format!("f - {}", -c),
            (m, 0) => format!("{m}f"),
            (m, c) if c > 0 => format!("{m}f + {c}"),
            (m, c) => format!("{m}f - {}", -c),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Regime {
    TwoFPlusOne,
    ThreeFPlusOne,
}

impl Regime {
    /// Minimum intersection of two commit-capable quorums: the trusted
    /// 2f+1 regime needs one witness (equivocation is impossible), the
    /// untrusted 3f+1 regime needs an honest replica beyond the f
    /// Byzantine ones.
    fn min_intersection(self) -> Linear {
        match self {
            Regime::TwoFPlusOne => Linear::new(0, 1),
            Regime::ThreeFPlusOne => Linear::new(1, 1),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Regime::TwoFPlusOne => "trusted n = 2f + 1",
            Regime::ThreeFPlusOne => "untrusted n = 3f + 1",
        }
    }
}

/// A definition extracted from source: its linear value plus where it
/// was written, for anchoring findings.
#[derive(Clone)]
struct Def {
    value: Linear,
    file: String,
    line: u32,
}

/// The workspace's quorum vocabulary.
#[derive(Default)]
struct Defs {
    n2: Option<Def>,
    n3: Option<Def>,
    q_small: Option<Def>,
    q_large: Option<Def>,
    /// `ProtocolId` variant name → regime, from `replication_factor`.
    regime_of: BTreeMap<String, Regime>,
}

/// Runs the Q-rules. Quiet when the tree defines no quorum vocabulary
/// (fixture trees for other rule families).
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let defs = extract(files);
    let mut out = Vec::new();
    check_definitions(&defs, &mut out);
    check_sites(files, &defs, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

// ------------------------------------------------------------- extraction

fn extract(files: &[SourceFile]) -> Defs {
    let mut defs = Defs::default();
    for f in files {
        let tokens = f.tokens();
        for def in f.parsed.fns.iter().filter(|d| !d.in_test) {
            let Some(body) = def.body else { continue };
            match def.name.as_str() {
                // `ReplicationFactor::replicas`, not the SystemConfig
                // iterator of the same name: require the regime arms.
                "replicas" => {
                    let two = arm_value(tokens, body, "TwoFPlusOne");
                    let three = arm_value(tokens, body, "ThreeFPlusOne");
                    if let (Some(two), Some(three)) = (two, three) {
                        defs.n2 = Some(Def {
                            value: two,
                            file: f.rel.clone(),
                            line: def.line,
                        });
                        defs.n3 = Some(Def {
                            value: three,
                            file: f.rel.clone(),
                            line: def.line,
                        });
                    }
                }
                "small_quorum" | "large_quorum" => {
                    if let Some(v) = parse_linear(tokens, (body.0 + 1, body.1.saturating_sub(1))) {
                        let d = Some(Def {
                            value: v,
                            file: f.rel.clone(),
                            line: def.line,
                        });
                        if def.name == "small_quorum" {
                            defs.q_small = d;
                        } else {
                            defs.q_large = d;
                        }
                    }
                }
                "replication_factor" => {
                    regime_arms(tokens, body, &mut defs.regime_of);
                }
                _ => {}
            }
        }
    }
    defs
}

/// The linear value of the match arm `… Name => <expr>,` in the body.
fn arm_value(tokens: &[Token], body: (usize, usize), name: &str) -> Option<Linear> {
    let (b0, b1) = body;
    for k in b0..=b1 {
        if tokens[k].is_ident(name) && tokens.get(k + 1).is_some_and(|t| t.is_op("=>")) {
            let start = k + 2;
            let mut depth = 0i32;
            let mut end = b1;
            for (q, t) in tokens.iter().enumerate().take(b1 + 1).skip(start) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if depth == 0 {
                        end = q.saturating_sub(1);
                        break;
                    }
                    depth -= 1;
                } else if depth == 0 && t.is_punct(',') {
                    end = q.saturating_sub(1);
                    break;
                }
            }
            return parse_linear(tokens, (start, end));
        }
    }
    None
}

/// Collects `ProtocolId::Name | … => ReplicationFactor::Regime` arms:
/// every pattern name seen since the last regime is mapped to the next
/// regime token encountered.
fn regime_arms(tokens: &[Token], body: (usize, usize), out: &mut BTreeMap<String, Regime>) {
    let mut pending: Vec<String> = Vec::new();
    let mut k = body.0;
    while k + 2 <= body.1 {
        if tokens[k].kind == TokenKind::Ident && tokens[k + 1].is_op("::") {
            match tokens[k].text.as_str() {
                "ProtocolId" => pending.push(tokens[k + 2].text.clone()),
                "ReplicationFactor" => {
                    let regime = match tokens[k + 2].text.as_str() {
                        "TwoFPlusOne" => Some(Regime::TwoFPlusOne),
                        "ThreeFPlusOne" => Some(Regime::ThreeFPlusOne),
                        _ => None,
                    };
                    if let Some(r) = regime {
                        for name in pending.drain(..) {
                            out.insert(name, r);
                        }
                    }
                }
                _ => {}
            }
            k += 3;
            continue;
        }
        k += 1;
    }
}

/// Parses a token range as a linear expression over `f`: products of
/// integer literals and at most one `f` per term, terms joined by
/// `+`/`-`. `self`, `.`, parentheses, and `as usize` widenings are
/// transparent; anything else (another identifier, a call) fails and
/// the caller skips the site rather than guess.
fn parse_linear(tokens: &[Token], range: (usize, usize)) -> Option<Linear> {
    let (start, end) = range;
    if start > end || end >= tokens.len() {
        return None;
    }
    let mut total = Linear::new(0, 0);
    let mut sign = 1i64;
    let mut coeff = 1i64;
    let mut has_f = false;
    let mut any = false;
    let flush = |sign: i64, coeff: i64, has_f: bool, any: bool, total: &mut Linear| {
        if any {
            if has_f {
                total.f_coef += sign * coeff;
            } else {
                total.constant += sign * coeff;
            }
        }
    };
    for t in &tokens[start..=end] {
        match t.kind {
            TokenKind::Literal => {
                let v: i64 = t.text.parse().ok()?;
                coeff = coeff.checked_mul(v)?;
                any = true;
            }
            TokenKind::Ident => match t.text.as_str() {
                "f" => {
                    if has_f {
                        return None;
                    }
                    has_f = true;
                    any = true;
                }
                "self" | "as" | "usize" | "u64" | "u32" | "i64" => {}
                _ => return None,
            },
            _ => {
                if t.is_punct('*') || t.is_punct('.') || t.is_punct('(') || t.is_punct(')') {
                    // transparent
                } else if t.is_punct('+') || t.is_punct('-') {
                    flush(sign, coeff, has_f, any, &mut total);
                    sign = if t.is_punct('+') { 1 } else { -1 };
                    coeff = 1;
                    has_f = false;
                    any = false;
                } else {
                    return None;
                }
            }
        }
    }
    flush(sign, coeff, has_f, any, &mut total);
    if total == Linear::new(0, 0) && !any {
        return None;
    }
    Some(total)
}

// ------------------------------------------------------------ definitions

fn check_definitions(defs: &Defs, out: &mut Vec<Finding>) {
    let pairs = [
        (
            &defs.q_large,
            &defs.n3,
            Regime::ThreeFPlusOne,
            "large_quorum",
        ),
        (&defs.q_small, &defs.n2, Regime::TwoFPlusOne, "small_quorum"),
    ];
    for (q, n, regime, name) in pairs {
        let (Some(q), Some(n)) = (q, n) else { continue };
        let overlap = Linear::new(2 * q.value.f_coef, 2 * q.value.constant).sub(n.value);
        let need = regime.min_intersection();
        if !overlap.ge_for_all_f(need) {
            out.push(Finding::new(
                &q.file,
                q.line,
                "Q01",
                format!(
                    "quorum intersection gap: two `{name}` quorums of size {} in \
                     an n = {} deployment ({}) overlap in only {} replicas, but \
                     safety needs ≥ {}; two conflicting commits could both gather \
                     quorums",
                    q.value.render(),
                    n.value.render(),
                    regime.label(),
                    overlap.render(),
                    need.render(),
                ),
            ));
        }
        let reachable = n.value.sub(Linear::new(1, 0));
        if !reachable.ge_for_all_f(q.value) {
            out.push(Finding::new(
                &q.file,
                q.line,
                "Q02",
                format!(
                    "unreachable quorum: `{name}` needs {} replicas but only {} \
                     of n = {} survive f crashes ({}); the protocol would stall \
                     under the fault load it claims to tolerate",
                    q.value.render(),
                    reachable.render(),
                    n.value.render(),
                    regime.label(),
                ),
            ));
        }
    }
}

// ------------------------------------------------------------------ sites

fn check_sites(files: &[SourceFile], defs: &Defs, out: &mut Vec<Finding>) {
    let (Some(n2), Some(n3), Some(q_small), Some(q_large)) =
        (&defs.n2, &defs.n3, &defs.q_small, &defs.q_large)
    else {
        return;
    };
    let n_of = |r: Regime| match r {
        Regime::TwoFPlusOne => n2.value,
        Regime::ThreeFPlusOne => n3.value,
    };
    let rule_size = |rule: &str, r: Regime| match rule {
        "FPlusOne" => Some(q_small.value),
        "TwoFPlusOne" => Some(q_large.value),
        "AllReplicas" => Some(n_of(r)),
        _ => None,
    };

    for f in files {
        let tokens = f.tokens();
        for def in f.parsed.fns.iter().filter(|d| !d.in_test) {
            let Some(body) = def.body else { continue };
            // The deployment regime this function configures: every
            // `ProtocolId::X` it names must agree, else skip (a generic
            // helper handling several protocols proves nothing).
            let Some(regime) = fn_regime(tokens, body, &defs.regime_of) else {
                continue;
            };
            let n = n_of(regime);
            let need = regime.min_intersection();
            let flag = |line: u32, what: &str, q: Linear, out: &mut Vec<Finding>| {
                let overlap = Linear::new(2 * q.f_coef, 2 * q.constant).sub(n);
                if !overlap.ge_for_all_f(need) {
                    out.push(Finding::new(
                        &f.rel,
                        line,
                        "Q01",
                        format!(
                            "quorum intersection gap at this site: {what} gives a \
                             quorum of {} in an n = {} deployment ({}), \
                             overlapping in only {} replicas where safety needs \
                             ≥ {}; this is the cross-regime mismatch (e.g. a \
                             trust-bft f+1 quorum in a 3f+1 deployment) that \
                             lets two conflicting commits both certify",
                            q.render(),
                            n.render(),
                            regime.label(),
                            overlap.render(),
                            need.render(),
                        ),
                    ));
                }
            };

            let mut k = body.0;
            while k + 4 <= body.1 {
                // Field site: `prepare_quorum_rule: QuorumRule::X`.
                if (tokens[k].is_ident("prepare_quorum_rule")
                    || tokens[k].is_ident("commit_quorum_rule"))
                    && tokens[k + 1].is_punct(':')
                    && tokens[k + 2].is_ident("QuorumRule")
                    && tokens[k + 3].is_op("::")
                {
                    let rule = &tokens[k + 4].text;
                    if let Some(q) = rule_size(rule, regime) {
                        let what = format!("`{}: QuorumRule::{rule}`", tokens[k].text);
                        flag(tokens[k + 4].line, &what, q, out);
                    }
                    k += 5;
                    continue;
                }
                // Binding site: `let …prepare_quorum… = ….large_quorum();`
                if tokens[k].is_ident("let") {
                    let mut p = k + 1;
                    if tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
                        p += 1;
                    }
                    if let Some(t) = tokens.get(p) {
                        if t.kind == TokenKind::Ident
                            && (t.text.contains("prepare_quorum")
                                || t.text.contains("commit_quorum"))
                        {
                            let semi = (p..=body.1)
                                .find(|&q| tokens[q].is_punct(';'))
                                .unwrap_or(body.1);
                            if let Some(q) =
                                binding_size(tokens, (p, semi), q_small.value, q_large.value)
                            {
                                let what = format!("binding `{}`", t.text);
                                flag(t.line, &what, q, out);
                            }
                            k = semi + 1;
                            continue;
                        }
                    }
                }
                k += 1;
            }
        }
    }
}

/// The single regime implied by the `ProtocolId`s a function names, or
/// `None` when it names none or they disagree.
fn fn_regime(
    tokens: &[Token],
    body: (usize, usize),
    regime_of: &BTreeMap<String, Regime>,
) -> Option<Regime> {
    let mut found: Option<Regime> = None;
    let mut k = body.0;
    while k + 2 <= body.1 {
        if tokens[k].is_ident("ProtocolId") && tokens[k + 1].is_op("::") {
            if let Some(&r) = regime_of.get(&tokens[k + 2].text) {
                match found {
                    None => found = Some(r),
                    Some(prev) if prev != r => return None,
                    _ => {}
                }
            }
            k += 3;
            continue;
        }
        k += 1;
    }
    found
}

/// The quorum size a `let` binding resolves to, when the RHS calls
/// exactly one of the named helpers. A generic `.quorum(rule)` call is
/// rule-dependent and proves nothing, so it yields `None`.
fn binding_size(
    tokens: &[Token],
    range: (usize, usize),
    q_small: Linear,
    q_large: Linear,
) -> Option<Linear> {
    let mut size = None;
    for k in range.0..=range.1.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident || !tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        match t.text.as_str() {
            "small_quorum" => size = Some(q_small),
            "large_quorum" => size = Some(q_large),
            "quorum" => return None,
            _ => {}
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real tree's quorum vocabulary, minimised.
    fn config_src(large: &str) -> String {
        format!(
            "impl ProtocolId {{ pub fn replication_factor(self) -> ReplicationFactor {{ \
             match self {{ \
             ProtocolId::Pbft | ProtocolId::FlexiBft => ReplicationFactor::ThreeFPlusOne, \
             ProtocolId::MinBft | ProtocolId::CheapBft => ReplicationFactor::TwoFPlusOne, }} }} }}\n\
             impl ReplicationFactor {{ pub fn replicas(self, f: usize) -> usize {{ \
             match self {{ ReplicationFactor::TwoFPlusOne => 2 * f + 1, \
             ReplicationFactor::ThreeFPlusOne => 3 * f + 1, }} }} }}\n\
             impl SystemConfig {{ \
             pub fn small_quorum(&self) -> usize {{ self.f + 1 }} \
             pub fn large_quorum(&self) -> usize {{ {large} }} }}"
        )
    }

    fn lint(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, src)| SourceFile::new(rel, src))
            .collect();
        check(&files)
    }

    #[test]
    fn the_papers_quorum_table_is_clean() {
        let cfg = config_src("2 * self.f + 1");
        let found = lint(&[
            ("crates/types/src/config.rs", &cfg),
            (
                "crates/baselines/src/pbft.rs",
                "pub fn style() -> ProtocolStyle { ProtocolStyle { \
                 id: ProtocolId::Pbft, \
                 prepare_quorum_rule: QuorumRule::TwoFPlusOne, \
                 commit_quorum_rule: QuorumRule::TwoFPlusOne } }",
            ),
            (
                "crates/baselines/src/minbft.rs",
                "pub fn style() -> ProtocolStyle { ProtocolStyle { \
                 id: ProtocolId::MinBft, \
                 prepare_quorum_rule: QuorumRule::FPlusOne, \
                 commit_quorum_rule: QuorumRule::FPlusOne } }",
            ),
            (
                "crates/core/src/flexi_bft.rs",
                "pub fn new(config: Arc<SystemConfig>) -> Self { \
                 let prepare_quorum = config.large_quorum(); \
                 let sequential = config.protocol == ProtocolId::FlexiBft; \
                 Self { prepare_quorum, sequential } }",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn a_too_small_large_quorum_is_a_q01_intersection_gap() {
        // 2(2f) - (3f+1) = f - 1 < f + 1: quorums need not intersect in
        // an honest replica.
        let cfg = config_src("2 * self.f");
        let found = lint(&[("crates/types/src/config.rs", &cfg)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "Q01");
        assert!(found[0].message.contains("large_quorum"));
    }

    #[test]
    fn a_too_large_quorum_is_a_q02_availability_gap() {
        // 2f + 2 > (3f + 1) - f = 2f + 1 survivors.
        let cfg = config_src("2 * self.f + 2");
        let found = lint(&[("crates/types/src/config.rs", &cfg)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "Q02");
        assert!(found[0].message.contains("stall"));
    }

    #[test]
    fn a_trust_bft_rule_in_an_untrusted_deployment_is_q01_at_the_site() {
        let cfg = config_src("2 * self.f + 1");
        let found = lint(&[
            ("crates/types/src/config.rs", &cfg),
            (
                "crates/baselines/src/pbft.rs",
                "pub fn style() -> ProtocolStyle { ProtocolStyle { \
                 id: ProtocolId::Pbft, \
                 prepare_quorum_rule: QuorumRule::FPlusOne, \
                 commit_quorum_rule: QuorumRule::TwoFPlusOne } }",
            ),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "Q01");
        assert!(found[0].message.contains("prepare_quorum_rule"));
    }

    #[test]
    fn generic_rule_plumbing_and_mixed_protocol_helpers_are_skipped() {
        let cfg = config_src("2 * self.f + 1");
        let found = lint(&[
            ("crates/types/src/config.rs", &cfg),
            (
                "crates/baselines/src/common.rs",
                // `.quorum(rule)` is rule-dependent; a fn naming two
                // protocols of different regimes proves nothing.
                "fn build(config: &SystemConfig, style: &ProtocolStyle) { \
                 let prepare_quorum = config.quorum(style.prepare_quorum_rule); \
                 let which = if x { ProtocolId::Pbft } else { ProtocolId::MinBft }; }",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn trees_without_quorum_vocabulary_are_quiet() {
        let found = lint(&[(
            "crates/exec/src/lib.rs",
            "fn run() { let prepare_quorum_rule = 3; }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn linear_parsing_handles_the_real_shapes() {
        let f = SourceFile::new(
            "crates/types/src/x.rs",
            "fn q(&self) -> usize { 2 * self.f + 1 }",
        );
        let tokens = f.tokens();
        let body = f.parsed.fns[0].body.unwrap();
        assert_eq!(
            parse_linear(tokens, (body.0 + 1, body.1 - 1)),
            Some(Linear::new(2, 1))
        );
        assert_eq!(Linear::new(2, 1).render(), "2f + 1");
        assert_eq!(Linear::new(1, -1).render(), "f - 1");
        assert!(Linear::new(1, 1).ge_for_all_f(Linear::new(0, 2)));
        assert!(!Linear::new(0, 3).ge_for_all_f(Linear::new(1, 0)));
    }
}
