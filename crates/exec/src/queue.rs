//! In-order execution of committed batches.
//!
//! All protocols in the paper share the rule "execute the request at slot `k`
//! only after the request at slot `k − 1` has executed". The engine layer
//! marks batches as executable in whatever order quorums happen to complete;
//! the [`ExecutionQueue`] holds them until their turn comes, applies every
//! transaction to the [`KvStore`], and returns the per-transaction outcomes
//! that are sent back to clients.

use crate::executor::{ExecStats, ShardedExecutor};
use crate::kvstore::KvStore;
use flexitrust_types::{Batch, Digest, KvOp, SeqNum, TxnOutcome};
use std::collections::BTreeMap;

/// The result of executing one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutedBatch {
    /// The sequence number the batch was executed at.
    pub seq: SeqNum,
    /// The digest of the executed batch.
    pub digest: Digest,
    /// Per-transaction outcomes, in batch order.
    pub outcomes: Vec<TxnOutcome>,
}

/// Holds committed-but-not-yet-executable batches and executes them in
/// sequence-number order.
///
/// Draining is grouped: when a submission unblocks several contiguous
/// batches (common under out-of-order commit bursts), every parallel-safe
/// batch in the run is flattened into one op group and scattered across
/// the shard workers in a single round trip; batches containing `Scan`
/// execute serially, in order, between the parallel segments. The results
/// — per-op outcomes and the store's state digest — are bit-identical to
/// executing every batch serially (see [`ShardedExecutor`]).
#[derive(Debug)]
pub struct ExecutionQueue {
    store: KvStore,
    executor: ShardedExecutor,
    pending: BTreeMap<u64, Batch>,
    last_executed: u64,
    executed_count: u64,
    executed_txns: u64,
}

impl Default for ExecutionQueue {
    fn default() -> Self {
        ExecutionQueue::new()
    }
}

impl ExecutionQueue {
    /// Creates a serial (one-worker) queue over an empty store.
    pub fn new() -> Self {
        ExecutionQueue::with_store(KvStore::new())
    }

    /// Creates a serial (one-worker) queue over a pre-loaded store.
    pub fn with_store(store: KvStore) -> Self {
        ExecutionQueue::with_workers(store, 1)
    }

    /// Creates a queue over `store` with a pool of `workers` shard
    /// workers; `workers <= 1` executes inline on the caller's thread.
    pub fn with_workers(store: KvStore, workers: usize) -> Self {
        ExecutionQueue {
            store,
            executor: ShardedExecutor::new(workers),
            pending: BTreeMap::new(),
            last_executed: 0,
            executed_count: 0,
            executed_txns: 0,
        }
    }

    /// Number of shard workers executing committed batches.
    pub fn worker_count(&self) -> usize {
        self.executor.worker_count()
    }

    /// Timing counters accumulated by the sharded executor (op groups only;
    /// the serial `Scan` lane applies directly through the store and is not
    /// counted).
    pub fn exec_stats(&self) -> ExecStats {
        self.executor.exec_stats()
    }

    /// The highest sequence number executed so far (0 = nothing executed).
    pub fn last_executed(&self) -> SeqNum {
        SeqNum(self.last_executed)
    }

    /// Number of batches waiting for earlier sequence numbers.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total number of batches executed.
    pub fn executed_batches(&self) -> u64 {
        self.executed_count
    }

    /// Total number of transactions executed.
    pub fn executed_txns(&self) -> u64 {
        self.executed_txns
    }

    /// Read-only access to the underlying store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Digest of the current state (used by checkpoints).
    pub fn state_digest(&self) -> Digest {
        self.store.state_digest()
    }

    /// Returns `true` when the batch at `seq` has already been executed.
    pub fn is_executed(&self, seq: SeqNum) -> bool {
        seq.0 <= self.last_executed && seq.0 > 0
    }

    /// Offers a committed batch at `seq`; executes it (and any unblocked
    /// successors) if it is next in order, otherwise parks it.
    ///
    /// Re-offering an already-executed or already-pending sequence number is
    /// a no-op: execution is idempotent per slot.
    pub fn submit(&mut self, seq: SeqNum, batch: Batch) -> Vec<ExecutedBatch> {
        if self.is_executed(seq) || self.pending.contains_key(&seq.0) {
            return Vec::new();
        }
        self.pending.insert(seq.0, batch);
        self.drain_ready()
    }

    fn drain_ready(&mut self) -> Vec<ExecutedBatch> {
        // Collect the whole contiguous ready run, then execute it as
        // parallel segments split at Scan-containing batches.
        let mut ready = Vec::new();
        while let Some(batch) = self
            .pending
            .remove(&(self.last_executed + ready.len() as u64 + 1))
        {
            ready.push(batch);
        }

        let mut executed = Vec::new();
        let mut run: Vec<Batch> = Vec::new();
        for batch in ready {
            let cross_shard = batch
                .txns()
                .iter()
                .any(|txn| matches!(txn.op(), KvOp::Scan { .. }));
            if cross_shard {
                self.flush_run(&mut run, &mut executed);
                // Serial lane: Scan reads across every shard, so the whole
                // batch executes in order on this thread.
                let outcomes = batch
                    .txns()
                    .iter()
                    .map(|txn| TxnOutcome {
                        client: txn.client(),
                        request: txn.request(),
                        result: self.store.apply(txn.op()),
                    })
                    .collect();
                self.record_executed(batch, outcomes, &mut executed);
            } else {
                run.push(batch);
            }
        }
        self.flush_run(&mut run, &mut executed);
        executed
    }

    /// Executes a run of parallel-safe batches as one scatter/gather group
    /// and reassembles per-batch outcomes in batch order.
    fn flush_run(&mut self, run: &mut Vec<Batch>, executed: &mut Vec<ExecutedBatch>) {
        if run.is_empty() {
            return;
        }
        let mut results = {
            let ops: Vec<&KvOp> = run
                .iter()
                .flat_map(|batch| batch.txns().iter().map(|txn| txn.op()))
                .collect();
            self.executor
                .execute_group(&mut self.store, &ops)
                .into_iter()
        };
        for batch in run.drain(..) {
            let outcomes = batch
                .txns()
                .iter()
                .map(|txn| TxnOutcome {
                    client: txn.client(),
                    request: txn.request(),
                    // lint:allow(P01): the executor returns exactly one
                    // result per submitted op (pinned by exec_determinism
                    // proptests); continuing past a miscount would ack
                    // transactions that never executed.
                    result: results.next().expect("one result per op"),
                })
                .collect();
            self.record_executed(batch, outcomes, executed);
        }
        debug_assert!(results.next().is_none(), "no results left over");
    }

    fn record_executed(
        &mut self,
        batch: Batch,
        outcomes: Vec<TxnOutcome>,
        executed: &mut Vec<ExecutedBatch>,
    ) {
        let seq = SeqNum(self.last_executed + 1);
        self.executed_count += 1;
        self.executed_txns += batch.len() as u64;
        self.last_executed = seq.0;
        executed.push(ExecutedBatch {
            seq,
            digest: batch.digest(),
            outcomes,
        });
    }

    /// Skips directly to `seq` without executing the missing slots; used only
    /// by state transfer after a checkpoint proves the state at `seq`.
    pub fn fast_forward(&mut self, seq: SeqNum, store: KvStore) {
        if seq.0 <= self.last_executed {
            return;
        }
        self.store = store;
        self.last_executed = seq.0;
        self.pending = self.pending.split_off(&(seq.0 + 1));
    }

    /// Rolls back speculative execution to `seq`, restoring the provided
    /// store snapshot (used by speculative protocols — Zyzzyva, MinZZ,
    /// Flexi-ZZ — when a view change discards speculatively executed slots).
    pub fn rollback_to(&mut self, seq: SeqNum, store: KvStore) {
        self.store = store;
        self.last_executed = seq.0;
        self.pending.retain(|k, _| *k > seq.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{ClientId, KvOp, RequestId, Transaction};

    fn batch(tag: u64, key: u64) -> Batch {
        Batch::new(
            vec![Transaction::new(
                ClientId(1),
                RequestId(tag),
                KvOp::Update {
                    key,
                    value: vec![tag as u8].into(),
                },
            )],
            Digest::from_u64_tag(tag),
        )
    }

    #[test]
    fn executes_in_order_even_when_submitted_out_of_order() {
        let mut q = ExecutionQueue::new();
        assert!(q.submit(SeqNum(2), batch(2, 20)).is_empty());
        assert!(q.submit(SeqNum(3), batch(3, 30)).is_empty());
        assert_eq!(q.pending_len(), 2);

        let executed = q.submit(SeqNum(1), batch(1, 10));
        assert_eq!(executed.len(), 3);
        assert_eq!(
            executed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![SeqNum(1), SeqNum(2), SeqNum(3)]
        );
        assert_eq!(q.last_executed(), SeqNum(3));
        assert_eq!(q.pending_len(), 0);
        assert_eq!(q.executed_txns(), 3);
    }

    #[test]
    fn duplicate_submission_is_idempotent() {
        let mut q = ExecutionQueue::new();
        let first = q.submit(SeqNum(1), batch(1, 1));
        assert_eq!(first.len(), 1);
        assert!(q.submit(SeqNum(1), batch(99, 1)).is_empty());
        assert_eq!(q.executed_batches(), 1);
        // The original write survives.
        assert_eq!(q.store().get(1), Some(&[1u8][..]));
    }

    #[test]
    fn outcomes_carry_client_and_request_ids() {
        let mut q = ExecutionQueue::new();
        let executed = q.submit(SeqNum(1), batch(7, 5));
        assert_eq!(executed[0].outcomes[0].client, ClientId(1));
        assert_eq!(executed[0].outcomes[0].request, RequestId(7));
    }

    #[test]
    fn gaps_block_execution() {
        let mut q = ExecutionQueue::new();
        q.submit(SeqNum(1), batch(1, 1));
        assert!(q.submit(SeqNum(3), batch(3, 3)).is_empty());
        assert_eq!(q.last_executed(), SeqNum(1));
        let executed = q.submit(SeqNum(2), batch(2, 2));
        assert_eq!(executed.len(), 2);
        assert_eq!(q.last_executed(), SeqNum(3));
    }

    #[test]
    fn fast_forward_skips_missing_history() {
        let mut q = ExecutionQueue::new();
        q.submit(SeqNum(5), batch(5, 5));
        let snapshot = KvStore::with_dataset(10, 4);
        q.fast_forward(SeqNum(4), snapshot);
        assert_eq!(q.last_executed(), SeqNum(4));
        // The parked batch at 5 is now next in order; the next submission
        // unblocks it and both 5 and 6 execute.
        let executed = q.submit(SeqNum(6), batch(6, 6));
        assert_eq!(
            executed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![SeqNum(5), SeqNum(6)]
        );
        assert_eq!(q.last_executed(), SeqNum(6));
        assert_eq!(q.pending_len(), 0);
    }

    #[test]
    fn fast_forward_backwards_is_ignored() {
        let mut q = ExecutionQueue::new();
        q.submit(SeqNum(1), batch(1, 1));
        q.fast_forward(SeqNum(0), KvStore::new());
        assert_eq!(q.last_executed(), SeqNum(1));
    }

    #[test]
    fn rollback_discards_speculative_state() {
        let mut q = ExecutionQueue::new();
        let clean = q.store().clone();
        q.submit(SeqNum(1), batch(1, 1));
        q.submit(SeqNum(2), batch(2, 2));
        assert_eq!(q.last_executed(), SeqNum(2));
        q.rollback_to(SeqNum(0), clean);
        assert_eq!(q.last_executed(), SeqNum(0));
        assert!(q.store().is_empty());
    }

    #[test]
    fn is_executed_boundaries() {
        let mut q = ExecutionQueue::new();
        assert!(!q.is_executed(SeqNum(0)));
        assert!(!q.is_executed(SeqNum(1)));
        q.submit(SeqNum(1), batch(1, 1));
        assert!(q.is_executed(SeqNum(1)));
        assert!(!q.is_executed(SeqNum(2)));
    }
}
