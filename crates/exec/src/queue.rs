//! In-order execution of committed batches.
//!
//! All protocols in the paper share the rule "execute the request at slot `k`
//! only after the request at slot `k − 1` has executed". The engine layer
//! marks batches as executable in whatever order quorums happen to complete;
//! the [`ExecutionQueue`] holds them until their turn comes, applies every
//! transaction to the [`KvStore`], and returns the per-transaction outcomes
//! that are sent back to clients.

use crate::kvstore::KvStore;
use flexitrust_types::{Batch, Digest, SeqNum, TxnOutcome};
use std::collections::BTreeMap;

/// The result of executing one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutedBatch {
    /// The sequence number the batch was executed at.
    pub seq: SeqNum,
    /// The digest of the executed batch.
    pub digest: Digest,
    /// Per-transaction outcomes, in batch order.
    pub outcomes: Vec<TxnOutcome>,
}

/// Holds committed-but-not-yet-executable batches and executes them in
/// sequence-number order.
#[derive(Debug, Default)]
pub struct ExecutionQueue {
    store: KvStore,
    pending: BTreeMap<u64, Batch>,
    last_executed: u64,
    executed_count: u64,
    executed_txns: u64,
}

impl ExecutionQueue {
    /// Creates a queue over an empty store.
    pub fn new() -> Self {
        ExecutionQueue::default()
    }

    /// Creates a queue over a pre-loaded store.
    pub fn with_store(store: KvStore) -> Self {
        ExecutionQueue {
            store,
            ..ExecutionQueue::default()
        }
    }

    /// The highest sequence number executed so far (0 = nothing executed).
    pub fn last_executed(&self) -> SeqNum {
        SeqNum(self.last_executed)
    }

    /// Number of batches waiting for earlier sequence numbers.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total number of batches executed.
    pub fn executed_batches(&self) -> u64 {
        self.executed_count
    }

    /// Total number of transactions executed.
    pub fn executed_txns(&self) -> u64 {
        self.executed_txns
    }

    /// Read-only access to the underlying store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Digest of the current state (used by checkpoints).
    pub fn state_digest(&self) -> Digest {
        self.store.state_digest()
    }

    /// Returns `true` when the batch at `seq` has already been executed.
    pub fn is_executed(&self, seq: SeqNum) -> bool {
        seq.0 <= self.last_executed && seq.0 > 0
    }

    /// Offers a committed batch at `seq`; executes it (and any unblocked
    /// successors) if it is next in order, otherwise parks it.
    ///
    /// Re-offering an already-executed or already-pending sequence number is
    /// a no-op: execution is idempotent per slot.
    pub fn submit(&mut self, seq: SeqNum, batch: Batch) -> Vec<ExecutedBatch> {
        if self.is_executed(seq) || self.pending.contains_key(&seq.0) {
            return Vec::new();
        }
        self.pending.insert(seq.0, batch);
        self.drain_ready()
    }

    fn drain_ready(&mut self) -> Vec<ExecutedBatch> {
        let mut executed = Vec::new();
        while let Some(batch) = self.pending.remove(&(self.last_executed + 1)) {
            let seq = SeqNum(self.last_executed + 1);
            let outcomes = batch
                .txns()
                .iter()
                .map(|txn| TxnOutcome {
                    client: txn.client(),
                    request: txn.request(),
                    result: self.store.apply(txn.op()),
                })
                .collect();
            self.executed_count += 1;
            self.executed_txns += batch.len() as u64;
            self.last_executed = seq.0;
            executed.push(ExecutedBatch {
                seq,
                digest: batch.digest(),
                outcomes,
            });
        }
        executed
    }

    /// Skips directly to `seq` without executing the missing slots; used only
    /// by state transfer after a checkpoint proves the state at `seq`.
    pub fn fast_forward(&mut self, seq: SeqNum, store: KvStore) {
        if seq.0 <= self.last_executed {
            return;
        }
        self.store = store;
        self.last_executed = seq.0;
        self.pending = self.pending.split_off(&(seq.0 + 1));
    }

    /// Rolls back speculative execution to `seq`, restoring the provided
    /// store snapshot (used by speculative protocols — Zyzzyva, MinZZ,
    /// Flexi-ZZ — when a view change discards speculatively executed slots).
    pub fn rollback_to(&mut self, seq: SeqNum, store: KvStore) {
        self.store = store;
        self.last_executed = seq.0;
        self.pending.retain(|k, _| *k > seq.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{ClientId, KvOp, RequestId, Transaction};

    fn batch(tag: u64, key: u64) -> Batch {
        Batch::new(
            vec![Transaction::new(
                ClientId(1),
                RequestId(tag),
                KvOp::Update {
                    key,
                    value: vec![tag as u8],
                },
            )],
            Digest::from_u64_tag(tag),
        )
    }

    #[test]
    fn executes_in_order_even_when_submitted_out_of_order() {
        let mut q = ExecutionQueue::new();
        assert!(q.submit(SeqNum(2), batch(2, 20)).is_empty());
        assert!(q.submit(SeqNum(3), batch(3, 30)).is_empty());
        assert_eq!(q.pending_len(), 2);

        let executed = q.submit(SeqNum(1), batch(1, 10));
        assert_eq!(executed.len(), 3);
        assert_eq!(
            executed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![SeqNum(1), SeqNum(2), SeqNum(3)]
        );
        assert_eq!(q.last_executed(), SeqNum(3));
        assert_eq!(q.pending_len(), 0);
        assert_eq!(q.executed_txns(), 3);
    }

    #[test]
    fn duplicate_submission_is_idempotent() {
        let mut q = ExecutionQueue::new();
        let first = q.submit(SeqNum(1), batch(1, 1));
        assert_eq!(first.len(), 1);
        assert!(q.submit(SeqNum(1), batch(99, 1)).is_empty());
        assert_eq!(q.executed_batches(), 1);
        // The original write survives.
        assert_eq!(q.store().get(1), Some(&vec![1u8]));
    }

    #[test]
    fn outcomes_carry_client_and_request_ids() {
        let mut q = ExecutionQueue::new();
        let executed = q.submit(SeqNum(1), batch(7, 5));
        assert_eq!(executed[0].outcomes[0].client, ClientId(1));
        assert_eq!(executed[0].outcomes[0].request, RequestId(7));
    }

    #[test]
    fn gaps_block_execution() {
        let mut q = ExecutionQueue::new();
        q.submit(SeqNum(1), batch(1, 1));
        assert!(q.submit(SeqNum(3), batch(3, 3)).is_empty());
        assert_eq!(q.last_executed(), SeqNum(1));
        let executed = q.submit(SeqNum(2), batch(2, 2));
        assert_eq!(executed.len(), 2);
        assert_eq!(q.last_executed(), SeqNum(3));
    }

    #[test]
    fn fast_forward_skips_missing_history() {
        let mut q = ExecutionQueue::new();
        q.submit(SeqNum(5), batch(5, 5));
        let snapshot = KvStore::with_dataset(10, 4);
        q.fast_forward(SeqNum(4), snapshot);
        assert_eq!(q.last_executed(), SeqNum(4));
        // The parked batch at 5 is now next in order; the next submission
        // unblocks it and both 5 and 6 execute.
        let executed = q.submit(SeqNum(6), batch(6, 6));
        assert_eq!(
            executed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![SeqNum(5), SeqNum(6)]
        );
        assert_eq!(q.last_executed(), SeqNum(6));
        assert_eq!(q.pending_len(), 0);
    }

    #[test]
    fn fast_forward_backwards_is_ignored() {
        let mut q = ExecutionQueue::new();
        q.submit(SeqNum(1), batch(1, 1));
        q.fast_forward(SeqNum(0), KvStore::new());
        assert_eq!(q.last_executed(), SeqNum(1));
    }

    #[test]
    fn rollback_discards_speculative_state() {
        let mut q = ExecutionQueue::new();
        let clean = q.store().clone();
        q.submit(SeqNum(1), batch(1, 1));
        q.submit(SeqNum(2), batch(2, 2));
        assert_eq!(q.last_executed(), SeqNum(2));
        q.rollback_to(SeqNum(0), clean);
        assert_eq!(q.last_executed(), SeqNum(0));
        assert!(q.store().is_empty());
    }

    #[test]
    fn is_executed_boundaries() {
        let mut q = ExecutionQueue::new();
        assert!(!q.is_executed(SeqNum(0)));
        assert!(!q.is_executed(SeqNum(1)));
        q.submit(SeqNum(1), batch(1, 1));
        assert!(q.is_executed(SeqNum(1)));
        assert!(!q.is_executed(SeqNum(2)));
    }
}
