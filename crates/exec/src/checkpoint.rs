//! Checkpointing of executed state.
//!
//! Every protocol in the paper periodically checkpoints: replicas exchange
//! `Checkpoint` messages covering the requests committed since the last
//! checkpoint and mark a checkpoint *stable* once enough replicas vouch for
//! it (f + 1 for trust-bft protocols, 2f + 1 for PBFT-style protocols).
//! Stable checkpoints bound the consensus log and let trusted logs truncate.
//!
//! The protocol-independent part lives here: which sequence numbers are
//! checkpoints, what state digest each checkpoint certifies, and which
//! checkpoint is the current stable low-water mark.

use flexitrust_types::{Digest, ReplicaId, SeqNum};
use std::collections::{BTreeMap, BTreeSet};

/// One checkpoint: a state digest at a sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// The last sequence number covered by the checkpoint.
    pub seq: SeqNum,
    /// Digest of the RSM state after executing everything up to `seq`.
    pub state_digest: Digest,
}

/// Tracks checkpoint votes and the stable low-water mark at one replica.
#[derive(Debug, Default)]
pub struct CheckpointLog {
    interval: u64,
    quorum: usize,
    /// Votes per (seq, digest): which replicas certified that state.
    votes: BTreeMap<(u64, Digest), BTreeSet<ReplicaId>>,
    stable: Option<Checkpoint>,
}

impl CheckpointLog {
    /// Creates a checkpoint log that checkpoints every `interval` sequence
    /// numbers and declares stability after `quorum` matching votes.
    pub fn new(interval: u64, quorum: usize) -> Self {
        CheckpointLog {
            interval: interval.max(1),
            quorum: quorum.max(1),
            votes: BTreeMap::new(),
            stable: None,
        }
    }

    /// The checkpoint interval.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Returns `true` when `seq` is a checkpoint boundary.
    pub fn is_checkpoint_seq(&self, seq: SeqNum) -> bool {
        seq.0 > 0 && seq.0.is_multiple_of(self.interval)
    }

    /// The current stable checkpoint, if any.
    pub fn stable(&self) -> Option<Checkpoint> {
        self.stable
    }

    /// The low-water mark: sequence numbers at or below this are covered by
    /// the stable checkpoint and may be garbage collected.
    pub fn low_water_mark(&self) -> SeqNum {
        self.stable.map(|c| c.seq).unwrap_or(SeqNum(0))
    }

    /// Records a checkpoint vote from `replica` for the state `digest` at
    /// `seq`. Returns the checkpoint if this vote made it stable (exactly
    /// once per checkpoint).
    pub fn record_vote(
        &mut self,
        replica: ReplicaId,
        seq: SeqNum,
        digest: Digest,
    ) -> Option<Checkpoint> {
        if seq <= self.low_water_mark() {
            return None;
        }
        let entry = self.votes.entry((seq.0, digest)).or_default();
        entry.insert(replica);
        if entry.len() >= self.quorum {
            let checkpoint = Checkpoint {
                seq,
                state_digest: digest,
            };
            self.stable = Some(checkpoint);
            // Drop votes covered by the new stable checkpoint.
            self.votes.retain(|(s, _), _| *s > seq.0);
            Some(checkpoint)
        } else {
            None
        }
    }

    /// Number of distinct (seq, digest) candidates currently tracked.
    pub fn tracked_candidates(&self) -> usize {
        self.votes.len()
    }

    /// Installs `checkpoint` as the stable low-water mark without a local
    /// vote quorum — the state-transfer path: a recovering replica adopts a
    /// peer's stable checkpoint wholesale. Ignored when it would move the
    /// low-water mark backwards. Votes at or below the installed checkpoint
    /// are garbage collected.
    pub fn install_stable(&mut self, checkpoint: Checkpoint) {
        if checkpoint.seq <= self.low_water_mark() {
            return;
        }
        self.stable = Some(checkpoint);
        self.votes.retain(|(s, _), _| *s > checkpoint.seq.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_boundaries_follow_interval() {
        let log = CheckpointLog::new(100, 3);
        assert!(!log.is_checkpoint_seq(SeqNum(0)));
        assert!(!log.is_checkpoint_seq(SeqNum(99)));
        assert!(log.is_checkpoint_seq(SeqNum(100)));
        assert!(log.is_checkpoint_seq(SeqNum(200)));
        assert_eq!(log.interval(), 100);
    }

    #[test]
    fn stability_requires_quorum_of_matching_votes() {
        let mut log = CheckpointLog::new(10, 3);
        let d = Digest::from_u64_tag(1);
        assert!(log.record_vote(ReplicaId(0), SeqNum(10), d).is_none());
        assert!(log.record_vote(ReplicaId(1), SeqNum(10), d).is_none());
        // A mismatching digest does not help the quorum.
        assert!(log
            .record_vote(ReplicaId(2), SeqNum(10), Digest::from_u64_tag(2))
            .is_none());
        let stable = log.record_vote(ReplicaId(3), SeqNum(10), d).unwrap();
        assert_eq!(stable.seq, SeqNum(10));
        assert_eq!(log.low_water_mark(), SeqNum(10));
    }

    #[test]
    fn duplicate_votes_from_one_replica_do_not_count_twice() {
        let mut log = CheckpointLog::new(10, 2);
        let d = Digest::from_u64_tag(1);
        assert!(log.record_vote(ReplicaId(0), SeqNum(10), d).is_none());
        assert!(log.record_vote(ReplicaId(0), SeqNum(10), d).is_none());
        assert!(log.record_vote(ReplicaId(1), SeqNum(10), d).is_some());
    }

    #[test]
    fn votes_below_low_water_mark_are_ignored() {
        let mut log = CheckpointLog::new(10, 1);
        log.record_vote(ReplicaId(0), SeqNum(20), Digest::ZERO);
        assert_eq!(log.low_water_mark(), SeqNum(20));
        assert!(log
            .record_vote(ReplicaId(1), SeqNum(10), Digest::ZERO)
            .is_none());
        assert_eq!(log.low_water_mark(), SeqNum(20));
    }

    #[test]
    fn stale_candidates_are_garbage_collected() {
        let mut log = CheckpointLog::new(10, 2);
        log.record_vote(ReplicaId(0), SeqNum(10), Digest::from_u64_tag(1));
        log.record_vote(ReplicaId(0), SeqNum(20), Digest::from_u64_tag(2));
        assert_eq!(log.tracked_candidates(), 2);
        log.record_vote(ReplicaId(1), SeqNum(20), Digest::from_u64_tag(2));
        // The candidate at 10 was covered by the stable checkpoint at 20.
        assert_eq!(log.tracked_candidates(), 0);
        assert_eq!(log.stable().unwrap().seq, SeqNum(20));
    }

    #[test]
    fn install_stable_adopts_forward_checkpoints_only() {
        let mut log = CheckpointLog::new(10, 2);
        log.record_vote(ReplicaId(0), SeqNum(30), Digest::from_u64_tag(3));
        log.install_stable(Checkpoint {
            seq: SeqNum(40),
            state_digest: Digest::from_u64_tag(4),
        });
        assert_eq!(log.low_water_mark(), SeqNum(40));
        // Votes at or below the installed checkpoint were dropped.
        assert_eq!(log.tracked_candidates(), 0);
        // A backwards install is a no-op.
        log.install_stable(Checkpoint {
            seq: SeqNum(20),
            state_digest: Digest::from_u64_tag(2),
        });
        assert_eq!(log.low_water_mark(), SeqNum(40));
    }

    #[test]
    fn zero_interval_is_clamped() {
        let log = CheckpointLog::new(0, 0);
        assert_eq!(log.interval(), 1);
        assert!(log.is_checkpoint_seq(SeqNum(1)));
    }
}
