//! Replicated state machine (RSM) execution layer.
//!
//! Following Schneider's distinction adopted by the paper (§2), consensus
//! orders batches of transactions while the *state machine* defines the
//! output of each transaction given everything ordered before it. This crate
//! provides:
//!
//! * [`KvStore`] — the in-memory key-value store the YCSB workload runs
//!   against (600 k records in the paper's setup);
//! * [`ExecutionQueue`] — in-sequence-number-order execution: a replica may
//!   learn that slot `k + 3` committed before slot `k`, but it must execute
//!   `k` first ("r executes every request in sequence number order");
//! * [`CheckpointLog`] — the periodic checkpoints every protocol uses for
//!   log truncation and state transfer.

pub mod checkpoint;
pub mod executor;
pub mod kvstore;
pub mod queue;

pub use checkpoint::{Checkpoint, CheckpointLog};
pub use executor::{ExecStats, ShardedExecutor};
pub use kvstore::KvStore;
pub use queue::{ExecutedBatch, ExecutionQueue};
