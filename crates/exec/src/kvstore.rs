//! The in-memory key-value store the workload executes against.

use flexitrust_crypto::sha256;
use flexitrust_types::{Digest, KvOp, KvResult, StateSnapshot, ValueBytes};
use std::collections::BTreeMap;

use std::mem;
use std::sync::{Mutex, OnceLock};

/// Default number of keyspace shards (see [`KvStore::with_shards`]).
pub const DEFAULT_SHARDS: usize = 8;

/// A deterministic in-memory key-value store, partitioned into keyspace
/// shards.
///
/// **Zero-copy values.** Records hold [`ValueBytes`] — reference-counted
/// immutable buffers. Writes move the client's payload handle into the
/// store (a refcount bump), reads and scans hand back clones of the stored
/// handle; no path through `apply` copies value bytes.
///
/// **Sharding.** Keys are partitioned by `key % shard_count` into
/// independent `BTreeMap` shards so the execution queue can apply
/// non-conflicting op runs on parallel workers. All observable state —
/// `get`, `Scan` results, `len`, and `state_digest` — is independent of
/// the shard count.
///
/// **Fingerprint.** The store keeps a cheap incremental fingerprint so
/// replicas can produce a state digest at checkpoints without hashing the
/// whole store. Each applied mutation is hashed together with its global
/// mutation index (1-based, assigned in execution order) and the hashes
/// are folded with a *commutative* wrapping sum. Commutativity makes the
/// fingerprint identical whether mutations were applied serially or
/// scattered across shard workers; the embedded index keeps it sensitive
/// to execution *order*, so two honest replicas agree exactly when they
/// executed the same mutations in the same order.
#[derive(Debug, Clone)]
pub struct KvStore {
    shards: Vec<BTreeMap<u64, ValueBytes>>,
    applied_mutations: u64,
    fingerprint: u64,
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore::new()
    }
}

/// Hashes one mutation: the global mutation index, the key, and the first
/// 16 value bytes, mixed non-linearly so that permuting (index, key)
/// assignments changes the commutative fold.
pub(crate) fn mutation_hash(index: u64, key: u64, value: &[u8]) -> u64 {
    let mut h = index.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key.rotate_left(17);
    for b in value.iter().take(16) {
        h = h.wrapping_mul(0x100_0000_01b3) ^ u64::from(*b);
    }
    h.wrapping_mul(0xff51_afd7_ed55_8ccd)
}

impl KvStore {
    /// Creates an empty store with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        KvStore::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty store with `shard_count` keyspace shards. The
    /// shard count changes only how work parallelises, never observable
    /// state: digests, reads and scans are bit-identical across counts.
    pub fn with_shards(shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        KvStore {
            shards: (0..shard_count).map(|_| BTreeMap::new()).collect(),
            applied_mutations: 0,
            fingerprint: 0,
        }
    }

    /// Creates a store pre-loaded with `records` (key, value) pairs.
    pub fn preloaded<V: Into<ValueBytes>>(records: impl IntoIterator<Item = (u64, V)>) -> Self {
        let mut store = KvStore::new();
        for (k, v) in records {
            store.insert_raw(k, v.into());
        }
        store
    }

    /// Creates a store with `count` records of `value_size` deterministic
    /// bytes, mirroring the paper's 600 k-record YCSB table.
    pub fn with_dataset(count: u64, value_size: usize) -> Self {
        let mut store = KvStore::new();
        for key in 0..count {
            let mut value = vec![0u8; value_size];
            for (i, b) in value.iter_mut().enumerate() {
                *b = (key as u8).wrapping_add(i as u8);
            }
            store.insert_raw(key, value.into());
        }
        store
    }

    /// Returns a store with the same dataset as [`KvStore::with_dataset`],
    /// built **once per process** and shared across callers: every clone
    /// shares the same value buffers by reference (the per-record
    /// `ValueBytes` Arcs), so starting an n-replica cluster on the paper's
    /// 600 k-record table costs one dataset build plus n cheap map clones
    /// instead of n full rebuilds.
    pub fn shared_dataset(count: u64, value_size: usize) -> Self {
        static DATASETS: OnceLock<Mutex<BTreeMap<(u64, usize), KvStore>>> = OnceLock::new();
        let registry = DATASETS.get_or_init(|| Mutex::new(BTreeMap::new()));
        let mut registry = registry
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        registry
            .entry((count, value_size))
            .or_insert_with(|| KvStore::with_dataset(count, value_size))
            .clone()
    }

    /// Repartitions the records into `shard_count` shards. Purely a
    /// parallelism change: the fingerprint, mutation count and record set
    /// are untouched, so observable state — digest, reads, scans — is
    /// identical before and after. Entries move by handle; no value bytes
    /// are copied.
    pub fn reshard(&mut self, shard_count: usize) {
        let shard_count = shard_count.max(1);
        if shard_count == self.shards.len() {
            return;
        }
        let old = mem::replace(
            &mut self.shards,
            (0..shard_count).map(|_| BTreeMap::new()).collect(),
        );
        for map in old {
            for (key, value) in map {
                let shard = self.shard_of(key);
                self.shards[shard].insert(key, value);
            }
        }
    }

    /// The shard a key lives in.
    pub fn shard_of(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// Number of keyspace shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global index the *next* mutation will receive (1-based).
    pub(crate) fn next_mutation_index(&self) -> u64 {
        self.applied_mutations + 1
    }

    /// Moves the shard maps out for parallel execution; the store is left
    /// with empty shards and must be refilled with [`Self::restore_shards`].
    pub(crate) fn take_shards(&mut self) -> Vec<BTreeMap<u64, ValueBytes>> {
        let count = self.shards.len();
        mem::replace(
            &mut self.shards,
            (0..count).map(|_| BTreeMap::new()).collect(),
        )
    }

    /// Puts back shard maps taken with [`Self::take_shards`].
    pub(crate) fn restore_shards(&mut self, shards: Vec<BTreeMap<u64, ValueBytes>>) {
        debug_assert_eq!(shards.len(), self.shards.len());
        self.shards = shards;
    }

    /// Folds in the outcome of a parallel run: `mutations` writes whose
    /// commutative hash sum is `fingerprint_delta`.
    pub(crate) fn fold_parallel_run(&mut self, mutations: u64, fingerprint_delta: u64) {
        self.applied_mutations += mutations;
        self.fingerprint = self.fingerprint.wrapping_add(fingerprint_delta);
    }

    fn insert_raw(&mut self, key: u64, value: ValueBytes) {
        self.applied_mutations += 1;
        self.fingerprint =
            self.fingerprint
                .wrapping_add(mutation_hash(self.applied_mutations, key, &value));
        let shard = self.shard_of(key);
        // lint:allow(X02): shard_of reduces modulo shards.len()
        self.shards[shard].insert(key, value);
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(BTreeMap::len).sum()
    }

    /// Returns `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(BTreeMap::is_empty)
    }

    /// Reads a record directly (outside transaction execution).
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        // lint:allow(X02): shard_of reduces modulo shards.len()
        self.shards[self.shard_of(key)].get(&key).map(|v| &**v)
    }

    /// The stored value handle for `key`, sharing the record's buffer.
    pub fn get_shared(&self, key: u64) -> Option<ValueBytes> {
        // lint:allow(X02): shard_of reduces modulo shards.len()
        self.shards[self.shard_of(key)].get(&key).cloned()
    }

    /// Scans `count` records with keys `>= start_key` in ascending key
    /// order, merging across shards. Rows share the stored value buffers.
    fn scan(&self, start_key: u64, count: usize) -> Vec<(u64, ValueBytes)> {
        let mut iters: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.range(start_key..).peekable())
            .collect();
        let mut out = Vec::with_capacity(count.min(64));
        while out.len() < count {
            let mut best: Option<(usize, u64)> = None;
            for (i, it) in iters.iter_mut().enumerate() {
                if let Some((k, _)) = it.peek() {
                    if best.is_none_or(|(_, bk)| **k < bk) {
                        best = Some((i, **k));
                    }
                }
            }
            match best {
                Some((i, _)) => {
                    // lint:allow(P01): the k-way merge only advances an
                    // iterator whose head it just peeked; a hole here is a
                    // broken merge, not an I/O condition to recover from.
                    // lint:allow(X02): i enumerates iters in the loop above
                    let (k, v) = iters[i].next().expect("peeked entry");
                    out.push((*k, v.clone()));
                }
                None => break,
            }
        }
        out
    }

    /// Applies one operation and returns its result. Reads and scans hand
    /// back shared value handles; writes move the op's payload handle into
    /// the store. No value bytes are copied on any path.
    pub fn apply(&mut self, op: &KvOp) -> KvResult {
        match op {
            KvOp::Read { key } => KvResult::Value(self.get_shared(*key)),
            KvOp::Update { key, value } | KvOp::Insert { key, value } => {
                self.insert_raw(*key, value.clone());
                KvResult::Written
            }
            KvOp::ReadModifyWrite { key, value } => {
                let previous = self.get_shared(*key);
                self.insert_raw(*key, value.clone());
                KvResult::Value(previous)
            }
            KvOp::Scan { start_key, count } => {
                KvResult::Range(self.scan(*start_key, *count as usize))
            }
            KvOp::Noop => KvResult::Noop,
        }
    }

    /// A digest summarising the mutation history of the store; two honest
    /// replicas that executed the same ordered mutations report the same
    /// digest, which is what checkpoint agreement compares. The digest is
    /// independent of the shard count and of whether mutations were
    /// applied serially or by parallel shard workers (see the type docs).
    pub fn state_digest(&self) -> Digest {
        let mut bytes = [0u8; 24];
        // lint:allow(X02): constant ranges into a fixed [u8; 24] cannot be out of bounds
        bytes[..8].copy_from_slice(&self.fingerprint.to_le_bytes());
        // lint:allow(X02): constant ranges into a fixed [u8; 24] cannot be out of bounds
        bytes[8..16].copy_from_slice(&self.applied_mutations.to_le_bytes());
        // lint:allow(X02): constant ranges into a fixed [u8; 24] cannot be out of bounds
        bytes[16..24].copy_from_slice(&(self.len() as u64).to_le_bytes());
        sha256(&bytes)
    }

    /// Number of mutations applied since creation.
    pub fn applied_mutations(&self) -> u64 {
        self.applied_mutations
    }

    /// Captures the full store as a [`StateSnapshot`] for checkpoint state
    /// transfer. Values share their buffers with the store (handle clones,
    /// no byte copies); entries come out in ascending key order so the
    /// snapshot is identical for every shard count.
    pub fn to_snapshot(&self) -> StateSnapshot {
        let mut entries: Vec<(u64, ValueBytes)> = self
            .shards
            .iter()
            .flat_map(|shard| shard.iter().map(|(k, v)| (*k, v.clone())))
            .collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        StateSnapshot {
            entries,
            applied_mutations: self.applied_mutations,
            fingerprint: self.fingerprint,
        }
    }

    /// Rebuilds a store from a snapshot taken with [`Self::to_snapshot`].
    /// The mutation counter and fingerprint are restored verbatim (the
    /// snapshot certifies a mutation *history*, not a fresh insert run), so
    /// the rebuilt store reports the same [`Self::state_digest`] as the
    /// store it was captured from.
    pub fn from_snapshot(snapshot: &StateSnapshot, shard_count: usize) -> Self {
        let mut store = KvStore::with_shards(shard_count);
        for (key, value) in &snapshot.entries {
            let shard = store.shard_of(*key);
            // lint:allow(X02): shard_of reduces modulo shards.len()
            store.shards[shard].insert(*key, value.clone());
        }
        store.applied_mutations = snapshot.applied_mutations;
        store.fingerprint = snapshot.fingerprint;
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes() {
        let mut store = KvStore::new();
        assert_eq!(store.apply(&KvOp::Read { key: 1 }), KvResult::Value(None));
        store.apply(&KvOp::Insert {
            key: 1,
            value: vec![9, 9].into(),
        });
        assert_eq!(
            store.apply(&KvOp::Read { key: 1 }),
            KvResult::Value(Some(vec![9, 9].into()))
        );
    }

    #[test]
    fn update_overwrites() {
        let mut store = KvStore::preloaded([(5, vec![1])]);
        store.apply(&KvOp::Update {
            key: 5,
            value: vec![2].into(),
        });
        assert_eq!(store.get(5), Some(&[2u8][..]));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn rmw_returns_previous_value() {
        let mut store = KvStore::preloaded([(7, vec![1])]);
        let out = store.apply(&KvOp::ReadModifyWrite {
            key: 7,
            value: vec![2].into(),
        });
        assert_eq!(out, KvResult::Value(Some(vec![1].into())));
        assert_eq!(store.get(7), Some(&[2u8][..]));
    }

    #[test]
    fn scan_returns_sorted_prefix() {
        let store = {
            let mut s = KvStore::new();
            for k in [5u64, 1, 9, 3] {
                s.apply(&KvOp::Insert {
                    key: k,
                    value: vec![k as u8].into(),
                });
            }
            s
        };
        let mut s = store.clone();
        match s.apply(&KvOp::Scan {
            start_key: 2,
            count: 2,
        }) {
            KvResult::Range(r) => {
                assert_eq!(r.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![3, 5]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scan_merges_shards_in_key_order() {
        // 1000 keys scattered across the default 8 shards; every window a
        // scan returns must be the globally sorted run, and identical for
        // every shard count.
        for shards in [1, 3, 8, 13] {
            let mut s = KvStore::with_shards(shards);
            for k in 0..1000u64 {
                s.apply(&KvOp::Insert {
                    key: (k * 7919) % 1000,
                    value: vec![k as u8].into(),
                });
            }
            match s.apply(&KvOp::Scan {
                start_key: 123,
                count: 50,
            }) {
                KvResult::Range(r) => {
                    let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
                    let expect: Vec<u64> = (123..173).collect();
                    assert_eq!(keys, expect, "shards={shards}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn noop_does_not_change_state_digest() {
        let mut store = KvStore::with_dataset(10, 4);
        let before = store.state_digest();
        assert_eq!(store.apply(&KvOp::Noop), KvResult::Noop);
        let got = store.apply(&KvOp::Read { key: 3 });
        assert_eq!(got, KvResult::Value(store.get_shared(3)));
        assert_eq!(store.state_digest(), before);
    }

    #[test]
    fn same_mutation_sequence_same_digest() {
        let run = || {
            let mut s = KvStore::with_dataset(100, 8);
            for k in 0..50u64 {
                s.apply(&KvOp::Update {
                    key: k,
                    value: vec![k as u8; 8].into(),
                });
            }
            s.state_digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_mutation_order_changes_digest() {
        let digest_of = |keys: &[u64]| {
            let mut s = KvStore::new();
            for k in keys {
                s.apply(&KvOp::Insert {
                    key: *k,
                    value: vec![1].into(),
                });
            }
            s.state_digest()
        };
        assert_ne!(digest_of(&[1, 2]), digest_of(&[2, 1]));
    }

    #[test]
    fn digest_is_shard_count_invariant() {
        let digest_for = |shards: usize| {
            let mut s = KvStore::with_shards(shards);
            for k in 0..200u64 {
                s.apply(&KvOp::Update {
                    key: k % 37,
                    value: vec![k as u8; 12].into(),
                });
            }
            s.state_digest()
        };
        let reference = digest_for(1);
        for shards in [2, 4, 8, 16] {
            assert_eq!(digest_for(shards), reference, "shards={shards}");
        }
    }

    #[test]
    fn reads_share_the_stored_buffer() {
        let value: ValueBytes = vec![7u8; 64].into();
        let mut store = KvStore::new();
        store.apply(&KvOp::Insert {
            key: 1,
            value: value.clone(),
        });
        match store.apply(&KvOp::Read { key: 1 }) {
            KvResult::Value(Some(got)) => {
                assert!(got.shares_buffer(&value), "read must not copy the value")
            }
            other => panic!("unexpected {other:?}"),
        }
        match store.apply(&KvOp::Scan {
            start_key: 0,
            count: 5,
        }) {
            KvResult::Range(rows) => {
                assert!(rows[0].1.shares_buffer(&value), "scan must not copy values")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_dataset_shares_value_buffers_across_clones() {
        let a = KvStore::shared_dataset(512, 32);
        let b = KvStore::shared_dataset(512, 32);
        assert_eq!(a.len(), 512);
        assert_eq!(a.state_digest(), b.state_digest());
        let va = a.get_shared(100).unwrap();
        let vb = b.get_shared(100).unwrap();
        assert!(
            va.shares_buffer(&vb),
            "shared dataset clones must share record buffers"
        );
    }

    #[test]
    fn snapshot_round_trip_preserves_digest_across_shard_counts() {
        let mut store = KvStore::with_dataset(200, 16);
        for k in 0..40u64 {
            store.apply(&KvOp::Update {
                key: k * 3,
                value: vec![k as u8; 8].into(),
            });
        }
        let snapshot = store.to_snapshot();
        for shards in [1, 4, 8, 13] {
            let rebuilt = KvStore::from_snapshot(&snapshot, shards);
            assert_eq!(
                rebuilt.state_digest(),
                store.state_digest(),
                "shards={shards}"
            );
            assert_eq!(rebuilt.len(), store.len());
            assert_eq!(rebuilt.applied_mutations(), store.applied_mutations());
            assert_eq!(rebuilt.get(3), store.get(3));
        }
    }

    #[test]
    fn snapshot_shares_value_buffers() {
        let value: ValueBytes = vec![5u8; 32].into();
        let mut store = KvStore::new();
        store.apply(&KvOp::Insert {
            key: 9,
            value: value.clone(),
        });
        let snapshot = store.to_snapshot();
        assert!(snapshot.entries[0].1.shares_buffer(&value));
        let rebuilt = KvStore::from_snapshot(&snapshot, 2);
        assert!(rebuilt.get_shared(9).unwrap().shares_buffer(&value));
    }

    #[test]
    fn dataset_constructor_loads_count_records() {
        let store = KvStore::with_dataset(600, 100);
        assert_eq!(store.len(), 600);
        assert!(!store.is_empty());
        assert_eq!(store.get(599).unwrap().len(), 100);
        assert_eq!(store.applied_mutations(), 600);
    }
}
