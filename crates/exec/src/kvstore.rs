//! The in-memory key-value store the workload executes against.

use flexitrust_crypto::sha256;
use flexitrust_types::{Digest, KvOp, KvResult};
use std::collections::BTreeMap;

/// A deterministic in-memory key-value store.
///
/// The store keeps a cheap incremental fingerprint of its contents so that
/// replicas can produce a state digest at checkpoints without hashing the
/// whole store: the fingerprint folds in a hash of every applied mutation,
/// which is sufficient for two honest replicas that executed the same
/// mutations in the same order to agree.
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    records: BTreeMap<u64, Vec<u8>>,
    applied_mutations: u64,
    fingerprint: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Creates a store pre-loaded with `records` (key, value) pairs.
    pub fn preloaded(records: impl IntoIterator<Item = (u64, Vec<u8>)>) -> Self {
        let mut store = KvStore::new();
        for (k, v) in records {
            store.insert_raw(k, v);
        }
        store
    }

    /// Creates a store with `count` records of `value_size` deterministic
    /// bytes, mirroring the paper's 600 k-record YCSB table.
    pub fn with_dataset(count: u64, value_size: usize) -> Self {
        let mut store = KvStore::new();
        for key in 0..count {
            let mut value = vec![0u8; value_size];
            for (i, b) in value.iter_mut().enumerate() {
                *b = (key as u8).wrapping_add(i as u8);
            }
            store.insert_raw(key, value);
        }
        store
    }

    fn insert_raw(&mut self, key: u64, value: Vec<u8>) {
        self.fold_mutation(key, &value);
        self.records.insert(key, value);
    }

    fn fold_mutation(&mut self, key: u64, value: &[u8]) {
        self.applied_mutations += 1;
        let mut h = self.fingerprint ^ key.rotate_left(17);
        for b in value.iter().take(16) {
            h = h.wrapping_mul(0x100_0000_01b3) ^ u64::from(*b);
        }
        self.fingerprint = h.wrapping_add(self.applied_mutations);
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reads a record directly (outside transaction execution).
    pub fn get(&self, key: u64) -> Option<&Vec<u8>> {
        self.records.get(&key)
    }

    /// Applies one operation and returns its result.
    pub fn apply(&mut self, op: &KvOp) -> KvResult {
        match op {
            KvOp::Read { key } => KvResult::Value(self.records.get(key).cloned()),
            KvOp::Update { key, value } | KvOp::Insert { key, value } => {
                self.insert_raw(*key, value.clone());
                KvResult::Written
            }
            KvOp::ReadModifyWrite { key, value } => {
                let previous = self.records.get(key).cloned();
                self.insert_raw(*key, value.clone());
                KvResult::Value(previous)
            }
            KvOp::Scan { start_key, count } => {
                let range: Vec<(u64, Vec<u8>)> = self
                    .records
                    .range(*start_key..)
                    .take(*count as usize)
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                KvResult::Range(range)
            }
            KvOp::Noop => KvResult::Noop,
        }
    }

    /// A digest summarising the mutation history of the store; two honest
    /// replicas that executed the same ordered mutations report the same
    /// digest, which is what checkpoint agreement compares.
    pub fn state_digest(&self) -> Digest {
        let mut bytes = [0u8; 24];
        bytes[..8].copy_from_slice(&self.fingerprint.to_le_bytes());
        bytes[8..16].copy_from_slice(&self.applied_mutations.to_le_bytes());
        bytes[16..24].copy_from_slice(&(self.records.len() as u64).to_le_bytes());
        sha256(&bytes)
    }

    /// Number of mutations applied since creation.
    pub fn applied_mutations(&self) -> u64 {
        self.applied_mutations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes() {
        let mut store = KvStore::new();
        assert_eq!(store.apply(&KvOp::Read { key: 1 }), KvResult::Value(None));
        store.apply(&KvOp::Insert {
            key: 1,
            value: vec![9, 9],
        });
        assert_eq!(
            store.apply(&KvOp::Read { key: 1 }),
            KvResult::Value(Some(vec![9, 9]))
        );
    }

    #[test]
    fn update_overwrites() {
        let mut store = KvStore::preloaded([(5, vec![1])]);
        store.apply(&KvOp::Update {
            key: 5,
            value: vec![2],
        });
        assert_eq!(store.get(5), Some(&vec![2]));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn rmw_returns_previous_value() {
        let mut store = KvStore::preloaded([(7, vec![1])]);
        let out = store.apply(&KvOp::ReadModifyWrite {
            key: 7,
            value: vec![2],
        });
        assert_eq!(out, KvResult::Value(Some(vec![1])));
        assert_eq!(store.get(7), Some(&vec![2]));
    }

    #[test]
    fn scan_returns_sorted_prefix() {
        let store = {
            let mut s = KvStore::new();
            for k in [5u64, 1, 9, 3] {
                s.apply(&KvOp::Insert {
                    key: k,
                    value: vec![k as u8],
                });
            }
            s
        };
        let mut s = store.clone();
        match s.apply(&KvOp::Scan {
            start_key: 2,
            count: 2,
        }) {
            KvResult::Range(r) => {
                assert_eq!(r.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![3, 5]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn noop_does_not_change_state_digest() {
        let mut store = KvStore::with_dataset(10, 4);
        let before = store.state_digest();
        assert_eq!(store.apply(&KvOp::Noop), KvResult::Noop);
        assert_eq!(
            store.apply(&KvOp::Read { key: 3 }),
            KvResult::Value(Some(store.get(3).unwrap().clone()))
        );
        assert_eq!(store.state_digest(), before);
    }

    #[test]
    fn same_mutation_sequence_same_digest() {
        let run = || {
            let mut s = KvStore::with_dataset(100, 8);
            for k in 0..50u64 {
                s.apply(&KvOp::Update {
                    key: k,
                    value: vec![k as u8; 8],
                });
            }
            s.state_digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_mutation_order_changes_digest() {
        let digest_of = |keys: &[u64]| {
            let mut s = KvStore::new();
            for k in keys {
                s.apply(&KvOp::Insert {
                    key: *k,
                    value: vec![1],
                });
            }
            s.state_digest()
        };
        assert_ne!(digest_of(&[1, 2]), digest_of(&[2, 1]));
    }

    #[test]
    fn dataset_constructor_loads_count_records() {
        let store = KvStore::with_dataset(600, 100);
        assert_eq!(store.len(), 600);
        assert!(!store.is_empty());
        assert_eq!(store.get(599).unwrap().len(), 100);
        assert_eq!(store.applied_mutations(), 600);
    }
}
