//! The sharded parallel executor behind [`crate::ExecutionQueue`].
//!
//! Committed op runs are partitioned by key shard (`key % shard_count`)
//! and applied by a persistent pool of worker threads, one job per shard.
//! Determinism comes from three rules:
//!
//! 1. **Per-shard order.** Every op lands in exactly one shard (single-key
//!    ops only — `Scan` never reaches the executor; the queue routes it to
//!    the serial lane). Within a shard, ops run in group order, so a read
//!    observes exactly the writes that precede it serially.
//! 2. **Batch-order reassembly.** Each op carries its result slot; per-op
//!    results are scattered by the workers and gathered back into batch
//!    order, so the outcome vector is identical to serial execution.
//! 3. **Commutative fingerprint fold.** Mutation indices are assigned in
//!    group order *before* the scatter; each worker sums
//!    `mutation_hash(index, key, value)` for its shard and the store folds
//!    the per-shard sums with a wrapping add — associative and
//!    commutative, so the digest is independent of worker interleaving
//!    and bit-identical to the serial path.
//!
//! A pool of `workers <= 1` spawns no threads at all: the group executes
//! inline through [`KvStore::apply`], which is also the reference
//! behaviour the parallel path must reproduce exactly.

use crate::kvstore::{mutation_hash, KvStore};
use flexitrust_types::{KvOp, KvResult, ValueBytes};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::mem;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

/// Timing counters accumulated across every executed op group.
///
/// `busy_nanos` is the sum of shard-job execution time (the work itself);
/// `critical_nanos` models the group's parallel span: the longest
/// per-worker lane plus whatever the group's wall time spent outside the
/// lanes (dispatch, map moves, gather). On a host with fewer cores than
/// workers the wall clock cannot show scaling, but the lanes are still
/// measured individually, so `critical_nanos` reports what the partition
/// would cost with one core per worker — the number the scaling bench
/// records alongside raw wall-clock throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of op groups executed (inline or scattered).
    pub groups: u64,
    /// Total shard-lane execution time, summed over all lanes, in ns.
    pub busy_nanos: u64,
    /// Modeled parallel span: per group, `max(lane) + (wall - sum(lanes))`,
    /// summed over groups, in ns. Equal to `busy_nanos` on the inline path.
    pub critical_nanos: u64,
}

/// One worker's slice of an execution group: every shard assigned to the
/// worker (`shard % workers`), each with its map (moved out of the store
/// for the duration of the job) and its ops in group order, tagged with
/// their result slot and — for writes — their global mutation index. All
/// of a worker's shards travel in ONE job, so a group costs each worker a
/// single send/recv wakeup no matter how many shards it owns. Op clones
/// share value buffers (refcount bumps, no byte copies).
struct LaneJob {
    worker: usize,
    shards: Vec<LaneShard>,
}

/// One shard within a [`LaneJob`]: its index, its map, and its ops in
/// group order tagged `(result slot, op, mutation index)`.
type LaneShard = (usize, BTreeMap<u64, ValueBytes>, Vec<(usize, KvOp, u64)>);

/// What a worker hands back: the updated shard maps, per-slot results, and
/// the lane's contribution to the store's mutation counter/fingerprint.
struct LaneOutcome {
    worker: usize,
    shards: Vec<(usize, BTreeMap<u64, ValueBytes>)>,
    results: Vec<(usize, KvResult)>,
    mutations: u64,
    fingerprint_delta: u64,
    /// Time this job spent executing, in ns (measured inside the worker).
    busy_nanos: u64,
}

fn run_lane(job: LaneJob) -> LaneOutcome {
    // lint:allow(D02): lane busy-time feeds ExecStats (bench reporting
    // only); results, digests and commit order never depend on it.
    let started = Instant::now();
    let LaneJob { worker, shards } = job;
    let mut done = Vec::with_capacity(shards.len());
    let mut results = Vec::with_capacity(shards.iter().map(|(_, _, ops)| ops.len()).sum());
    let mut mutations = 0u64;
    let mut fingerprint_delta = 0u64;
    for (shard, mut map, ops) in shards {
        for (slot, op, index) in ops {
            let result = match op {
                KvOp::Read { key } => KvResult::Value(map.get(&key).cloned()),
                KvOp::Update { key, value } | KvOp::Insert { key, value } => {
                    fingerprint_delta =
                        fingerprint_delta.wrapping_add(mutation_hash(index, key, &value));
                    mutations += 1;
                    map.insert(key, value);
                    KvResult::Written
                }
                KvOp::ReadModifyWrite { key, value } => {
                    let previous = map.get(&key).cloned();
                    fingerprint_delta =
                        fingerprint_delta.wrapping_add(mutation_hash(index, key, &value));
                    mutations += 1;
                    map.insert(key, value);
                    KvResult::Value(previous)
                }
                KvOp::Scan { .. } | KvOp::Noop => {
                    // lint:allow(X01): the queue routes Scan to the serial lane and answers Noop inline at scatter, so neither variant is ever enqueued for a shard worker
                    unreachable!("cross-shard and no-op ops never reach a shard worker")
                }
            };
            results.push((slot, result));
        }
        done.push((shard, map));
    }
    LaneOutcome {
        worker,
        shards: done,
        results,
        mutations,
        fingerprint_delta,
        busy_nanos: started.elapsed().as_nanos() as u64,
    }
}

/// A persistent pool of shard workers. Shard `s` is always dispatched to
/// worker `s % workers`, so the assignment — like everything else on this
/// path — is deterministic.
pub struct ShardedExecutor {
    /// Per-worker job lanes; empty when the pool runs inline (`workers <= 1`).
    job_lanes: Vec<Sender<LaneJob>>,
    handles: Vec<JoinHandle<()>>,
    results_rx: Receiver<LaneOutcome>,
    stats: Cell<ExecStats>,
}

impl ShardedExecutor {
    /// Creates a pool of `workers` threads; `workers <= 1` creates no
    /// threads and executes groups inline.
    pub fn new(workers: usize) -> Self {
        let (results_tx, results_rx) = channel::<LaneOutcome>();
        let mut job_lanes = Vec::new();
        let mut handles = Vec::new();
        if workers > 1 {
            for w in 0..workers {
                let (tx, rx) = channel::<LaneJob>();
                let out = results_tx.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("exec-shard-{w}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            if out.send(run_lane(job)).is_err() {
                                break;
                            }
                        }
                    });
                // Thread exhaustion at construction degrades to fewer
                // lanes (zero lanes = the serial inline path) instead of
                // panicking the replica; results are identical either way.
                let Ok(handle) = spawned else { break };
                job_lanes.push(tx);
                handles.push(handle);
            }
        }
        ShardedExecutor {
            job_lanes,
            handles,
            results_rx,
            stats: Cell::new(ExecStats::default()),
        }
    }

    /// Number of workers applying shard runs (1 = inline serial).
    pub fn worker_count(&self) -> usize {
        self.job_lanes.len().max(1)
    }

    /// Timing counters accumulated since construction.
    pub fn exec_stats(&self) -> ExecStats {
        self.stats.get()
    }

    fn record_group(&self, busy_nanos: u64, critical_nanos: u64) {
        let mut stats = self.stats.get();
        stats.groups += 1;
        stats.busy_nanos += busy_nanos;
        stats.critical_nanos += critical_nanos;
        self.stats.set(stats);
    }

    /// Serial reference path: applies the ops inline through the store.
    fn run_inline(&self, store: &mut KvStore, ops: &[&KvOp]) -> Vec<KvResult> {
        // lint:allow(D02): ExecStats timing only; never affects results.
        let started = Instant::now();
        let results = ops.iter().map(|op| store.apply(op)).collect();
        let nanos = started.elapsed().as_nanos() as u64;
        self.record_group(nanos, nanos);
        results
    }

    /// Executes a group of single-key ops against `store` and returns the
    /// per-op results in op order — bit-identical, results and digest both,
    /// to applying the ops serially through [`KvStore::apply`].
    ///
    /// The caller (the execution queue) must route `Scan` ops to the
    /// serial lane; they cross shards and are not accepted here.
    pub fn execute_group(&self, store: &mut KvStore, ops: &[&KvOp]) -> Vec<KvResult> {
        debug_assert!(
            !ops.iter().any(|op| matches!(op, KvOp::Scan { .. })),
            "Scan must take the serial lane"
        );
        if self.job_lanes.is_empty() || ops.len() < 2 {
            return self.run_inline(store, ops);
        }
        // lint:allow(D02): ExecStats timing only; never affects results.
        let started = Instant::now();

        // Assign mutation indices in group order (exactly the indices the
        // serial path would assign), then partition by shard.
        let shard_count = store.shard_count();
        let mut per_shard: Vec<Vec<(usize, KvOp, u64)>> = vec![Vec::new(); shard_count];
        let mut results: Vec<Option<KvResult>> = vec![None; ops.len()];
        let mut next_index = store.next_mutation_index();
        for (slot, op) in ops.iter().enumerate() {
            let (key, indexed) = match op {
                KvOp::Noop => {
                    // lint:allow(X02): slot comes from enumerate() over ops; results has ops.len() entries
                    results[slot] = Some(KvResult::Noop);
                    continue;
                }
                KvOp::Read { key } => (*key, 0),
                KvOp::Update { key, .. }
                | KvOp::Insert { key, .. }
                | KvOp::ReadModifyWrite { key, .. } => {
                    let index = next_index;
                    next_index += 1;
                    (*key, index)
                }
                KvOp::Scan { .. } => return self.run_inline(store, ops),
            };
            // lint:allow(X02): shard_of reduces modulo shard_count, per_shard's exact length
            per_shard[store.shard_of(key)].push((slot, (*op).clone(), indexed));
        }

        // Scatter: each touched shard's map moves out to its worker, all of
        // a worker's shards coalesced into one job (one wakeup per lane).
        let mut shards = store.take_shards();
        let lanes = self.job_lanes.len();
        let mut per_worker: Vec<Vec<LaneShard>> = vec![Vec::new(); lanes];
        for (shard, shard_ops) in per_shard.into_iter().enumerate() {
            if shard_ops.is_empty() {
                continue;
            }
            // lint:allow(X02): shard enumerates per_shard (shard_count = shards.len() entries); % lanes matches per_worker's length
            per_worker[shard % lanes].push((shard, mem::take(&mut shards[shard]), shard_ops));
        }
        let mut outstanding = 0usize;
        let mut salvaged: Vec<LaneOutcome> = Vec::new();
        for (worker, lane_shards) in per_worker.into_iter().enumerate() {
            if lane_shards.is_empty() {
                continue;
            }
            let job = LaneJob {
                worker,
                shards: lane_shards,
            };
            // lint:allow(X02): worker enumerates per_worker, built with exactly job_lanes.len() entries
            match self.job_lanes[worker].send(job) {
                Ok(()) => outstanding += 1,
                // A dead worker hands the un-run job back inside the send
                // error: execute its lanes on this thread instead of
                // panicking — same results, just without the parallelism.
                Err(returned) => salvaged.push(run_lane(returned.0)),
            }
        }

        // Gather: fold per-shard sums (wrapping add commutes, so arrival
        // order is irrelevant) and scatter results back into their slots.
        let mut mutations = 0u64;
        let mut fingerprint_delta = 0u64;
        let mut lane_busy = vec![0u64; lanes];
        let received = (0..outstanding).map(|_| {
            // lint:allow(P01): a worker that dies after taking a job takes
            // its shard maps with it — there is no way to keep executing
            // without silently losing committed state, so fail loudly.
            self.results_rx.recv().expect("execution worker alive")
        });
        for outcome in salvaged.into_iter().chain(received) {
            // lint:allow(X02): outcome.worker echoes the LaneJob.worker index we assigned, < lanes = lane_busy.len()
            lane_busy[outcome.worker] += outcome.busy_nanos;
            for (shard, map) in outcome.shards {
                // lint:allow(X02): shard ids round-trip through the job unchanged and were < shards.len() at scatter
                shards[shard] = map;
            }
            mutations += outcome.mutations;
            fingerprint_delta = fingerprint_delta.wrapping_add(outcome.fingerprint_delta);
            for (slot, result) in outcome.results {
                // lint:allow(X02): slots round-trip through the job unchanged and were < results.len() at scatter
                results[slot] = Some(result);
            }
        }
        store.restore_shards(shards);
        store.fold_parallel_run(mutations, fingerprint_delta);
        let wall_nanos = started.elapsed().as_nanos() as u64;
        let busy_nanos: u64 = lane_busy.iter().sum();
        let longest_lane = lane_busy.iter().copied().max().unwrap_or(0);
        // Dispatch/gather work is serialized on the caller; everything the
        // wall clock saw beyond the lanes themselves counts against the span.
        let critical_nanos = longest_lane + wall_nanos.saturating_sub(busy_nanos);
        self.record_group(busy_nanos, critical_nanos);
        results
            .into_iter()
            // lint:allow(P01): slot coverage is a structural invariant of
            // the scatter phase above (every op is either answered inline
            // or assigned to exactly one shard); papering over a hole here
            // would return corrupt results for committed transactions.
            .map(|r| r.expect("every op slot filled"))
            .collect()
    }
}

impl fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("workers", &self.worker_count())
            .finish()
    }
}

impl Drop for ShardedExecutor {
    fn drop(&mut self) {
        // Closing the job lanes ends the worker loops.
        self.job_lanes.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::Digest;

    fn ops_mixed(n: u64) -> Vec<KvOp> {
        (0..n)
            .flat_map(|i| {
                [
                    KvOp::Update {
                        key: i % 97,
                        value: vec![i as u8; 24].into(),
                    },
                    KvOp::Read { key: (i + 1) % 97 },
                    KvOp::ReadModifyWrite {
                        key: (i * 7) % 97,
                        value: vec![(i + 1) as u8; 8].into(),
                    },
                    KvOp::Noop,
                ]
            })
            .collect()
    }

    fn serial_reference(ops: &[KvOp]) -> (Vec<KvResult>, Digest) {
        let mut store = KvStore::with_dataset(97, 16);
        let results = ops.iter().map(|op| store.apply(op)).collect();
        (results, store.state_digest())
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let ops = ops_mixed(200);
        let (want_results, want_digest) = serial_reference(&ops);
        for workers in [2, 3, 4, 8] {
            let executor = ShardedExecutor::new(workers);
            let mut store = KvStore::with_dataset(97, 16);
            let refs: Vec<&KvOp> = ops.iter().collect();
            let got = executor.execute_group(&mut store, &refs);
            assert_eq!(got, want_results, "workers={workers}");
            assert_eq!(store.state_digest(), want_digest, "workers={workers}");
        }
    }

    #[test]
    fn single_worker_pool_spawns_no_threads_and_matches() {
        let ops = ops_mixed(50);
        let (want_results, want_digest) = serial_reference(&ops);
        let executor = ShardedExecutor::new(1);
        assert_eq!(executor.worker_count(), 1);
        let mut store = KvStore::with_dataset(97, 16);
        let refs: Vec<&KvOp> = ops.iter().collect();
        assert_eq!(executor.execute_group(&mut store, &refs), want_results);
        assert_eq!(store.state_digest(), want_digest);
    }

    #[test]
    fn exec_stats_accumulate_per_group() {
        let ops = ops_mixed(50);
        let refs: Vec<&KvOp> = ops.iter().collect();
        for workers in [1usize, 4] {
            let executor = ShardedExecutor::new(workers);
            let mut store = KvStore::with_dataset(97, 16);
            assert_eq!(executor.exec_stats(), ExecStats::default());
            executor.execute_group(&mut store, &refs);
            executor.execute_group(&mut store, &refs);
            let stats = executor.exec_stats();
            assert_eq!(stats.groups, 2, "workers={workers}");
            assert!(stats.busy_nanos > 0, "workers={workers}");
            assert!(stats.critical_nanos > 0, "workers={workers}");
            if workers == 1 {
                // Inline groups have no parallel lanes: span == work.
                assert_eq!(stats.critical_nanos, stats.busy_nanos);
            }
        }
    }

    #[test]
    fn group_split_matches_one_shot() {
        // Executing a group in two halves (with indices carried by the
        // store in between) equals executing it at once.
        let ops = ops_mixed(40);
        let executor = ShardedExecutor::new(4);
        let mut once = KvStore::with_dataset(97, 16);
        let refs: Vec<&KvOp> = ops.iter().collect();
        let all = executor.execute_group(&mut once, &refs);

        let mut halves = KvStore::with_dataset(97, 16);
        let (a, b) = refs.split_at(refs.len() / 2);
        let mut got = executor.execute_group(&mut halves, a);
        got.extend(executor.execute_group(&mut halves, b));
        assert_eq!(got, all);
        assert_eq!(halves.state_digest(), once.state_digest());
    }
}
