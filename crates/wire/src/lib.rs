//! The canonical binary wire codec.
//!
//! Every byte the TCP transport (`flexitrust-runtime::tcp`) puts on a socket
//! is produced here, and every byte the simulator charges to a link is the
//! length of an encoding produced here: `Message::wire_size_bytes()`,
//! `ClientReply::wire_size_bytes()` and [`client_upload_wire_size`] are
//! pinned — by proptest, see `tests/wire_codec.rs` — to equal the encoded
//! frame length exactly, so the bandwidth model and the sockets can never
//! drift apart.
//!
//! ## Frame layout
//!
//! All integers are little-endian. A frame is self-delimiting:
//!
//! ```text
//! frame   := len:u32 | sender:u32 | kind:u8 | body | mac:[32]   (peer, reply)
//!          | len:u32 | sender:u32 | kind:u8 | body              (submit)
//! ```
//!
//! * `len` counts every byte after the length field itself.
//! * `sender` is the sending replica id, or [`CLIENT_SENDER`] for frames
//!   originated by a client.
//! * `kind` is the [`Message`] variant tag (0..=7), [`KIND_SUBMIT`] (8) for
//!   a client transaction batch, or [`KIND_REPLY`] (9) for a reply.
//! * `mac` is the 32-byte channel-authenticator slot (HMAC-SHA256),
//!   present on peer-message and reply frames. [`Frame::Submit`] frames
//!   carry **no** MAC slot — each submitted transaction already embeds
//!   its own 64-byte client-signature slot, which is what authenticates
//!   client traffic. The in-process transports carry zeroes in these
//!   slots — channel keys are modelled by the crypto substrate and their
//!   verification is charged by the CPU cost model — but the bytes are on
//!   the wire, exactly as the paper's ResilientDB-based deployment pays
//!   for them.
//!
//! Peer message bodies open with two fixed slots `a:u64 | b:u64` holding the
//! variant's (view, seq)-shaped pair (zero when the variant has none), so
//! every header field of the hand-maintained size estimate this codec
//! replaced corresponds to real bytes. Client-signature slots (64 B per
//! transaction) are likewise materialised as bytes.
//!
//! Decoding is strict: a frame that ends early, has trailing bytes, or
//! carries an unknown tag is a [`WireError`], never a partial value.

mod codec;
mod frame;

pub use codec::{
    decode_attestation, decode_transaction, encode_attestation, encode_transaction, WireError,
};
pub use frame::{
    client_upload_wire_size, decode_frame, decode_message, encode_frame, encode_message,
    read_frame, write_frame, Frame, CLIENT_SENDER, KIND_REPLY, KIND_SUBMIT, MAX_FRAME_BYTES,
};
