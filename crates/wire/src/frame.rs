//! Frame assembly and the blocking stream I/O used by the TCP transport.

use crate::codec::{
    encode_transaction, header_slots, message_kind_tag, read_message_body, read_reply_body,
    read_transaction, read_vec, write_message_body, write_reply_body, write_vec, Reader, WireError,
};
use flexitrust_protocol::{ClientReply, Message};
use flexitrust_types::{ReplicaId, Transaction};
use std::io::{self, Read, Write};

/// The `sender` field value of frames originated by a client rather than a
/// replica.
pub const CLIENT_SENDER: u32 = u32::MAX;

/// Frame kind tag of a client transaction batch ([`Frame::Submit`]).
pub const KIND_SUBMIT: u8 = 8;

/// Frame kind tag of a client reply ([`Frame::Reply`]).
pub const KIND_REPLY: u8 = 9;

/// Refuse frames larger than this (64 MiB): a corrupt length prefix must
/// not look like a multi-gigabyte allocation request.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// The channel-authenticator slot appended to every frame.
const MAC_BYTES: usize = 32;

/// Everything that crosses a transport connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A protocol message between replicas.
    Peer {
        /// The sending replica.
        from: ReplicaId,
        /// The message.
        msg: Message,
    },
    /// A batch of transactions submitted by a client to the primary.
    Submit {
        /// The submitted transactions.
        txns: Vec<Transaction>,
    },
    /// A reply from a replica to a client.
    Reply {
        /// The reply (its `replica` field is the frame sender).
        reply: ClientReply,
    },
}

/// Encodes a frame to its complete wire bytes (length prefix included).
///
/// The encoded length of a [`Frame::Peer`] equals the message's
/// `wire_size_bytes()`, and that of a [`Frame::Reply`] equals the reply's
/// `wire_size_bytes()` — the pin that makes this codec the ground truth of
/// the simulator's bandwidth model.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::Peer { from, msg } => encode_message(*from, msg),
        Frame::Submit { txns } => encode_submit(txns),
        Frame::Reply { reply } => encode_reply(reply),
    }
}

/// Starts a frame buffer: the exact frame length is known up front (the
/// size functions are pinned equal to the encoding), so one allocation
/// suffices — a broadcast-sized batch must not pay a doubling-realloc
/// ladder per destination. The length prefix is a placeholder patched by
/// [`finish_frame`].
fn start_frame(capacity: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(capacity);
    out.extend_from_slice(&[0u8; 4]);
    out
}

/// Patches the length prefix and checks the size pin held.
///
/// Panics when the frame exceeds [`MAX_FRAME_BYTES`]: the strict decoder
/// rejects such frames (and past 4 GiB the `u32` prefix would wrap and
/// desync the stream), so an encoder producing one is a configuration
/// error that must fail loudly at the sender, not as a dead connection at
/// the receiver.
fn finish_frame(mut out: Vec<u8>, capacity: usize) -> Vec<u8> {
    assert!(
        out.len() - 4 <= MAX_FRAME_BYTES,
        "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap the decoder enforces",
        out.len() - 4,
    );
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    debug_assert_eq!(out.len(), capacity, "size function drifted from codec");
    out
}

fn encode_submit(txns: &[Transaction]) -> Vec<u8> {
    let capacity = client_upload_wire_size(txns);
    let mut out = start_frame(capacity);
    out.extend_from_slice(&CLIENT_SENDER.to_le_bytes());
    out.push(KIND_SUBMIT);
    write_vec(&mut out, txns, encode_transaction);
    // Submissions carry per-transaction client signatures, no frame MAC.
    finish_frame(out, capacity)
}

fn encode_reply(reply: &ClientReply) -> Vec<u8> {
    let capacity = reply.wire_size_bytes();
    let mut out = start_frame(capacity);
    out.extend_from_slice(&reply.replica.0.to_le_bytes());
    out.push(KIND_REPLY);
    write_reply_body(&mut out, reply);
    out.extend_from_slice(&[0u8; MAC_BYTES]);
    finish_frame(out, capacity)
}

/// Decodes a complete frame (length prefix included), strictly: truncated,
/// oversize, unknown-tag and trailing-byte conditions are all errors.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(bytes);
    let declared = r.len("frame length")?;
    if declared != r.remaining() {
        return Err(WireError::Truncated {
            context: "frame body",
        });
    }
    let sender = r.u32("frame sender")?;
    let kind = r.u8("frame kind")?;
    let frame = match kind {
        KIND_SUBMIT => Frame::Submit {
            txns: read_vec(&mut r, "submit txn count", read_transaction)?,
        },
        KIND_REPLY => {
            let reply = read_reply_body(ReplicaId(sender), &mut r)?;
            r.take(MAC_BYTES, "frame mac")?;
            Frame::Reply { reply }
        }
        kind => {
            let a = r.u64("header slot a")?;
            let b = r.u64("header slot b")?;
            let msg = read_message_body(kind, a, b, &mut r)?;
            r.take(MAC_BYTES, "frame mac")?;
            Frame::Peer {
                from: ReplicaId(sender),
                msg,
            }
        }
    };
    r.finish()?;
    Ok(frame)
}

/// Encodes one peer message frame directly from the borrow (the transport
/// hot path encodes per broadcast destination — no message clone); its
/// length equals `msg.wire_size_bytes()`.
pub fn encode_message(from: ReplicaId, msg: &Message) -> Vec<u8> {
    let capacity = msg.wire_size_bytes();
    let mut out = start_frame(capacity);
    out.extend_from_slice(&from.0.to_le_bytes());
    out.push(message_kind_tag(msg));
    let (a, b) = header_slots(msg);
    out.extend_from_slice(&a.to_le_bytes());
    out.extend_from_slice(&b.to_le_bytes());
    write_message_body(&mut out, msg);
    out.extend_from_slice(&[0u8; MAC_BYTES]);
    finish_frame(out, capacity)
}

/// Decodes a peer message frame back to `(from, message)`.
pub fn decode_message(bytes: &[u8]) -> Result<(ReplicaId, Message), WireError> {
    match decode_frame(bytes)? {
        Frame::Peer { from, msg } => Ok((from, msg)),
        _ => Err(WireError::BadTag {
            context: "peer frame",
            tag: bytes.get(8).copied().unwrap_or(0),
        }),
    }
}

/// Wire bytes of a client submission frame carrying `txns`: the frame
/// header (length prefix + sender + kind + count) plus every transaction's
/// encoding. The simulator charges client uploads exactly this.
pub fn client_upload_wire_size(txns: &[Transaction]) -> usize {
    4 + 4 + 1 + 4 + txns.iter().map(Transaction::wire_size).sum::<usize>()
}

/// Writes one frame to a blocking stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Reads one frame from a blocking stream. Returns `Ok(None)` on a clean
/// EOF at a frame boundary; malformed frames surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    // Only an EOF before the *first* byte is a clean end-of-stream; a
    // stream torn mid-prefix (the peer died after 1–3 bytes) is a
    // truncated frame and must error like any other truncation.
    let mut len_bytes = [0u8; 4];
    let (first, rest) = len_bytes.split_at_mut(1);
    match r.read_exact(first) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    r.read_exact(rest)?;
    let len = usize::try_from(u32::from_le_bytes(len_bytes)).unwrap_or(usize::MAX);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut frame = vec![0u8; 4 + len];
    let (head, body) = frame.split_at_mut(4);
    head.copy_from_slice(&len_bytes);
    r.read_exact(body)?;
    decode_frame(&frame)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_crypto::Signature;
    use flexitrust_protocol::PreparedProof;
    use flexitrust_trusted::{AttestKind, Attestation};
    use flexitrust_types::{Batch, ClientId, Digest, KvOp, KvResult, RequestId, SeqNum, View};

    fn txn(value_len: usize) -> Transaction {
        Transaction::new(
            ClientId(7),
            RequestId(3),
            KvOp::Update {
                key: 42,
                value: vec![0xab; value_len].into(),
            },
        )
    }

    fn batch() -> Batch {
        Batch::new(vec![txn(16), txn(0)], Digest::from_u64_tag(9))
    }

    fn attestation() -> Attestation {
        Attestation {
            host: ReplicaId(2),
            counter: 5,
            value: 11,
            digest: Digest::from_u64_tag(4),
            kind: AttestKind::LogSlot,
            signature: Signature([0x5c; 64]),
        }
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::PrePrepare {
                view: View(1),
                seq: SeqNum(2),
                batch: batch(),
                attestation: Some(attestation()),
            },
            Message::Prepare {
                view: View(1),
                seq: SeqNum(2),
                digest: Digest::from_u64_tag(8),
                attestation: None,
            },
            Message::Commit {
                view: View(3),
                seq: SeqNum(4),
                digest: Digest::from_u64_tag(8),
                attestation: Some(attestation()),
            },
            Message::Checkpoint {
                seq: SeqNum(100),
                state_digest: Digest::from_u64_tag(12),
                attestation: Some(attestation()),
            },
            Message::ViewChange {
                new_view: View(6),
                last_stable: SeqNum(90),
                prepared: vec![PreparedProof {
                    view: View(5),
                    seq: SeqNum(91),
                    digest: Digest::from_u64_tag(13),
                    batch: batch(),
                    attestation: Some(attestation()),
                    prepare_votes: 3,
                }],
            },
            Message::NewView {
                view: View(6),
                supporting_votes: 5,
                proposals: vec![
                    (SeqNum(91), batch(), Some(attestation())),
                    (SeqNum(92), Batch::noop(92), None),
                ],
                counter_attestation: Some(attestation()),
            },
            Message::ClientRetry { txn: txn(16) },
            Message::ForwardRequest {
                txns: vec![txn(16), txn(1)],
            },
            Message::CheckpointRequest {
                last_executed: SeqNum(40),
            },
            Message::CheckpointState {
                seq: SeqNum(100),
                snapshot: flexitrust_types::StateSnapshot {
                    entries: vec![(1, vec![0xcd; 24].into()), (9, vec![].into())],
                    applied_mutations: 17,
                    fingerprint: 0xdead_beef,
                },
                batches: vec![(SeqNum(101), batch()), (SeqNum(102), Batch::noop(102))],
            },
        ]
    }

    #[test]
    fn every_message_variant_round_trips_and_matches_wire_size() {
        for msg in sample_messages() {
            let from = ReplicaId(3);
            let bytes = encode_message(from, &msg);
            assert_eq!(
                bytes.len(),
                msg.wire_size_bytes(),
                "{}: encoded length diverges from wire_size_bytes",
                msg.kind()
            );
            let (decoded_from, decoded) = decode_message(&bytes).expect("decodes");
            assert_eq!(decoded_from, from, "{}", msg.kind());
            assert_eq!(decoded, msg, "{}", msg.kind());
        }
    }

    #[test]
    fn replies_round_trip_and_match_wire_size() {
        let results = [
            KvResult::Value(None),
            KvResult::Value(Some(vec![1, 2, 3].into())),
            KvResult::Written,
            KvResult::Noop,
            KvResult::Range(vec![(1, vec![9; 10].into()), (2, vec![].into())]),
        ];
        for (i, result) in results.into_iter().enumerate() {
            let reply = ClientReply {
                client: ClientId(4),
                request: RequestId(i as u64),
                seq: SeqNum(17),
                view: View(2),
                replica: ReplicaId(1),
                result,
                speculative: i % 2 == 0,
            };
            let frame = Frame::Reply {
                reply: reply.clone(),
            };
            let bytes = encode_frame(&frame);
            assert_eq!(bytes.len(), reply.wire_size_bytes(), "result #{i}");
            assert_eq!(decode_frame(&bytes).expect("decodes"), frame);
        }
    }

    #[test]
    fn submissions_round_trip_and_match_upload_size() {
        let txns = vec![txn(16), txn(200), Transaction::noop()];
        let frame = Frame::Submit { txns: txns.clone() };
        let bytes = encode_frame(&frame);
        assert_eq!(bytes.len(), client_upload_wire_size(&txns));
        assert_eq!(decode_frame(&bytes).expect("decodes"), frame);
        // An empty submission is legal and still carries its header.
        assert_eq!(client_upload_wire_size(&[]), 13);
    }

    #[test]
    fn frames_cross_a_byte_stream() {
        let mut pipe: Vec<u8> = Vec::new();
        let frames = [
            Frame::Peer {
                from: ReplicaId(0),
                msg: sample_messages().remove(1),
            },
            Frame::Submit { txns: vec![txn(8)] },
        ];
        for frame in &frames {
            write_frame(&mut pipe, frame).unwrap();
        }
        let mut cursor = &pipe[..];
        for frame in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(frame));
        }
        // Clean EOF at a frame boundary.
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn malformed_frames_are_rejected_not_partially_decoded() {
        let good = encode_message(ReplicaId(0), &sample_messages()[0]);
        // Truncated body.
        assert!(decode_frame(&good[..good.len() - 1]).is_err());
        // Trailing bytes.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_frame(&long).is_err());
        // Unknown message kind.
        let mut bad_kind = good.clone();
        bad_kind[8] = 200;
        assert!(decode_frame(&bad_kind).is_err());
        // A mid-stream EOF is an error, not a silent None.
        let mut cursor = &good[..good.len() - 3];
        assert!(read_frame(&mut cursor).is_err());
        // So is a stream torn inside the length prefix itself: only an EOF
        // before the first byte is a clean end-of-stream.
        let mut cursor = &good[..2];
        assert!(read_frame(&mut cursor).is_err());
        // An oversize length prefix is refused before allocating.
        let mut huge = good;
        huge[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn standalone_attestation_and_transaction_codecs_round_trip() {
        let att = attestation();
        let mut bytes = Vec::new();
        encode_attestation(&mut bytes, &att);
        assert_eq!(bytes.len(), Attestation::WIRE_SIZE);
        assert_eq!(decode_attestation(&bytes).unwrap(), att);

        let t = txn(32);
        let mut bytes = Vec::new();
        encode_transaction(&mut bytes, &t);
        assert_eq!(bytes.len(), t.wire_size());
        assert_eq!(decode_transaction(&bytes).unwrap(), t);
    }

    use crate::codec::{decode_attestation, decode_transaction, encode_attestation};
}
