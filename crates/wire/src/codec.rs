//! Field-level encoding: the byte readers/writers and the per-type
//! encode/decode routines the frame layer composes.

use flexitrust_crypto::Signature;
use flexitrust_protocol::{ClientReply, Message, PreparedProof};
use flexitrust_trusted::{AttestKind, Attestation};
use flexitrust_types::{
    Batch, ClientId, Digest, KvOp, KvResult, ReplicaId, RequestId, SeqNum, StateSnapshot,
    Transaction, View,
};
use std::fmt;

/// A malformed frame: the decoder never returns a partial value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced structure did.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// An enum tag byte holds no known variant.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// The frame decoded cleanly but bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
    /// A declared length is implausible (oversize frame or collection).
    Oversize {
        /// What was being decoded.
        context: &'static str,
        /// The declared length.
        declared: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "truncated frame while reading {context}")
            }
            WireError::BadTag { context, tag } => write!(f, "unknown {context} tag {tag}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after frame")
            }
            WireError::Oversize { context, declared } => {
                write!(f, "implausible {context} length {declared}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Byte-slice cursor for strict decoding.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        // lint:allow(T01): the remaining() guard proves pos + n <= bytes.len(), so the range is in bounds
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        match <[u8; 4]>::try_from(b) {
            Ok(arr) => Ok(u32::from_le_bytes(arr)),
            Err(_) => Err(WireError::Truncated { context }),
        }
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        match <[u8; 8]>::try_from(b) {
            Ok(arr) => Ok(u64::from_le_bytes(arr)),
            Err(_) => Err(WireError::Truncated { context }),
        }
    }

    /// A `u32` collection/byte length, sanity-bounded so a corrupt frame
    /// cannot request an absurd allocation. The widening is checked: on a
    /// 16-bit target a count that does not fit saturates and is rejected
    /// by the oversize cap instead of wrapping.
    pub(crate) fn len(&mut self, context: &'static str) -> Result<usize, WireError> {
        let declared = usize::try_from(self.u32(context)?).unwrap_or(usize::MAX);
        if declared > crate::frame::MAX_FRAME_BYTES {
            return Err(WireError::Oversize { context, declared });
        }
        Ok(declared)
    }

    pub(crate) fn digest(&mut self, context: &'static str) -> Result<Digest, WireError> {
        let b = self.take(32, context)?;
        match <[u8; 32]>::try_from(b) {
            Ok(arr) => Ok(Digest::from_bytes(arr)),
            Err(_) => Err(WireError::Truncated { context }),
        }
    }

    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Writes a `u32`-counted collection: the encode-side twin of
/// [`read_vec`], so a future collection field cannot forget its count
/// prefix on one side only.
pub(crate) fn write_vec<T>(
    out: &mut Vec<u8>,
    items: &[T],
    mut write: impl FnMut(&mut Vec<u8>, &T),
) {
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for item in items {
        write(out, item);
    }
}

/// Reads a `u32`-counted collection: the one place the count-prefix loop
/// and its preallocation bound live. The bound caps what a corrupt count
/// can allocate up front — an oversize count then costs a failed decode,
/// never memory.
pub(crate) fn read_vec<'a, T>(
    r: &mut Reader<'a>,
    context: &'static str,
    read: impl Fn(&mut Reader<'a>) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let count = r.len(context)?;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        out.push(read(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Operations and transactions.
// ---------------------------------------------------------------------------

fn encode_op(out: &mut Vec<u8>, op: &KvOp) {
    match op {
        KvOp::Read { key } => {
            out.push(0);
            out.extend_from_slice(&key.to_le_bytes());
        }
        KvOp::Update { key, value } => {
            out.push(1);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        KvOp::Insert { key, value } => {
            out.push(2);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        KvOp::ReadModifyWrite { key, value } => {
            out.push(3);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        KvOp::Scan { start_key, count } => {
            out.push(4);
            out.extend_from_slice(&start_key.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        KvOp::Noop => out.push(5),
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<KvOp, WireError> {
    let tag = r.u8("op tag")?;
    Ok(match tag {
        0 => KvOp::Read {
            key: r.u64("read key")?,
        },
        1..=3 => {
            let key = r.u64("write key")?;
            let len = r.len("value length")?;
            let value = r.take(len, "value bytes")?.into();
            match tag {
                1 => KvOp::Update { key, value },
                2 => KvOp::Insert { key, value },
                _ => KvOp::ReadModifyWrite { key, value },
            }
        }
        4 => KvOp::Scan {
            start_key: r.u64("scan start")?,
            count: r.u32("scan count")?,
        },
        5 => KvOp::Noop,
        tag => return Err(WireError::BadTag { context: "op", tag }),
    })
}

/// Encodes one transaction: client id, request id, operation, and the
/// 64-byte client-signature slot (zero-filled — signatures are modelled by
/// the crypto substrate, but the slot is real wire bytes).
pub fn encode_transaction(out: &mut Vec<u8>, txn: &Transaction) {
    out.extend_from_slice(&txn.client().0.to_le_bytes());
    out.extend_from_slice(&txn.request().0.to_le_bytes());
    encode_op(out, txn.op());
    out.extend_from_slice(&[0u8; 64]);
}

/// Decodes one transaction (skipping its signature slot).
pub fn decode_transaction(bytes: &[u8]) -> Result<Transaction, WireError> {
    let mut r = Reader::new(bytes);
    let txn = read_transaction(&mut r)?;
    r.finish()?;
    Ok(txn)
}

pub(crate) fn read_transaction(r: &mut Reader<'_>) -> Result<Transaction, WireError> {
    let client = ClientId(r.u64("txn client")?);
    let request = RequestId(r.u64("txn request")?);
    let op = decode_op(r)?;
    r.take(64, "txn signature slot")?;
    Ok(Transaction::new(client, request, op))
}

pub(crate) fn write_batch(out: &mut Vec<u8>, batch: &Batch) {
    out.extend_from_slice(batch.digest().as_bytes());
    write_vec(out, batch.txns(), encode_transaction);
}

pub(crate) fn read_batch(r: &mut Reader<'_>) -> Result<Batch, WireError> {
    let digest = r.digest("batch digest")?;
    let txns = read_vec(r, "batch txn count", read_transaction)?;
    Ok(Batch::new(txns, digest))
}

// ---------------------------------------------------------------------------
// Attestations.
// ---------------------------------------------------------------------------

/// Encodes an attestation in exactly [`Attestation::WIRE_SIZE`] bytes:
/// host (4) + counter (8) + value (8) + digest (32) + kind (1) +
/// signature (64).
pub fn encode_attestation(out: &mut Vec<u8>, att: &Attestation) {
    out.extend_from_slice(&att.host.0.to_le_bytes());
    out.extend_from_slice(&att.counter.to_le_bytes());
    out.extend_from_slice(&att.value.to_le_bytes());
    out.extend_from_slice(att.digest.as_bytes());
    out.push(match att.kind {
        AttestKind::CounterBind => 0,
        AttestKind::CounterCreate => 1,
        AttestKind::LogSlot => 2,
    });
    out.extend_from_slice(att.signature.as_bytes());
}

/// Decodes an attestation from exactly [`Attestation::WIRE_SIZE`] bytes.
pub fn decode_attestation(bytes: &[u8]) -> Result<Attestation, WireError> {
    let mut r = Reader::new(bytes);
    let att = read_attestation(&mut r)?;
    r.finish()?;
    Ok(att)
}

pub(crate) fn read_attestation(r: &mut Reader<'_>) -> Result<Attestation, WireError> {
    let host = ReplicaId(r.u32("attestation host")?);
    let counter = r.u64("attestation counter")?;
    let value = r.u64("attestation value")?;
    let digest = r.digest("attestation digest")?;
    let kind = match r.u8("attestation kind")? {
        0 => AttestKind::CounterBind,
        1 => AttestKind::CounterCreate,
        2 => AttestKind::LogSlot,
        tag => {
            return Err(WireError::BadTag {
                context: "attestation kind",
                tag,
            })
        }
    };
    let sig = r.take(64, "attestation signature")?;
    let signature = match <[u8; 64]>::try_from(sig) {
        Ok(arr) => Signature(arr),
        Err(_) => {
            return Err(WireError::Truncated {
                context: "attestation signature",
            })
        }
    };
    Ok(Attestation {
        host,
        counter,
        value,
        digest,
        kind,
        signature,
    })
}

/// An optional attestation: a presence byte, then the fixed encoding.
pub(crate) fn write_att_opt(out: &mut Vec<u8>, att: &Option<Attestation>) {
    match att {
        None => out.push(0),
        Some(att) => {
            out.push(1);
            encode_attestation(out, att);
        }
    }
}

pub(crate) fn read_att_opt(r: &mut Reader<'_>) -> Result<Option<Attestation>, WireError> {
    match r.u8("attestation presence")? {
        0 => Ok(None),
        1 => Ok(Some(read_attestation(r)?)),
        tag => Err(WireError::BadTag {
            context: "attestation presence",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// Results (reply payloads).
// ---------------------------------------------------------------------------

pub(crate) fn write_result(out: &mut Vec<u8>, result: &KvResult) {
    match result {
        KvResult::Value(v) => {
            out.push(0);
            match v {
                None => out.push(0),
                Some(bytes) => {
                    out.push(1);
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(bytes);
                }
            }
        }
        KvResult::Written => out.push(1),
        KvResult::Range(rows) => {
            out.push(2);
            write_vec(out, rows, |out, (key, value)| {
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            });
        }
        KvResult::Noop => out.push(3),
    }
}

pub(crate) fn read_result(r: &mut Reader<'_>) -> Result<KvResult, WireError> {
    Ok(match r.u8("result tag")? {
        0 => match r.u8("value presence")? {
            0 => KvResult::Value(None),
            1 => {
                let len = r.len("value length")?;
                KvResult::Value(Some(r.take(len, "value bytes")?.into()))
            }
            tag => {
                return Err(WireError::BadTag {
                    context: "value presence",
                    tag,
                })
            }
        },
        1 => KvResult::Written,
        2 => KvResult::Range(read_vec(r, "range row count", |r| {
            let key = r.u64("range key")?;
            let len = r.len("range value length")?;
            Ok((key, r.take(len, "range value bytes")?.into()))
        })?),
        3 => KvResult::Noop,
        tag => {
            return Err(WireError::BadTag {
                context: "result",
                tag,
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Message bodies.
// ---------------------------------------------------------------------------

/// The `(a, b)` header-slot pair of a message: the variant's view/seq-shaped
/// fields, zero when it has none.
pub(crate) fn header_slots(msg: &Message) -> (u64, u64) {
    match msg {
        Message::PrePrepare { view, seq, .. }
        | Message::Prepare { view, seq, .. }
        | Message::Commit { view, seq, .. } => (view.0, seq.0),
        Message::Checkpoint { seq, .. } => (0, seq.0),
        Message::ViewChange {
            new_view,
            last_stable,
            ..
        } => (new_view.0, last_stable.0),
        Message::NewView {
            view,
            supporting_votes,
            ..
        } => (view.0, *supporting_votes as u64),
        Message::ClientRetry { .. } | Message::ForwardRequest { .. } => (0, 0),
        Message::CheckpointRequest { last_executed } => (0, last_executed.0),
        Message::CheckpointState { seq, .. } => (0, seq.0),
    }
}

pub(crate) fn message_kind_tag(msg: &Message) -> u8 {
    match msg {
        Message::PrePrepare { .. } => 0,
        Message::Prepare { .. } => 1,
        Message::Commit { .. } => 2,
        Message::Checkpoint { .. } => 3,
        Message::ViewChange { .. } => 4,
        Message::NewView { .. } => 5,
        Message::ClientRetry { .. } => 6,
        Message::ForwardRequest { .. } => 7,
        // 8 and 9 are the frame-level KIND_SUBMIT / KIND_REPLY tags; the
        // message and frame kinds share one byte space.
        Message::CheckpointRequest { .. } => 10,
        Message::CheckpointState { .. } => 11,
    }
}

/// Writes a state snapshot: the two digest counters, then the record set.
fn write_snapshot(out: &mut Vec<u8>, snapshot: &StateSnapshot) {
    out.extend_from_slice(&snapshot.applied_mutations.to_le_bytes());
    out.extend_from_slice(&snapshot.fingerprint.to_le_bytes());
    write_vec(out, &snapshot.entries, |out, (key, value)| {
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
        out.extend_from_slice(value);
    });
}

fn read_snapshot(r: &mut Reader<'_>) -> Result<StateSnapshot, WireError> {
    let applied_mutations = r.u64("snapshot mutations")?;
    let fingerprint = r.u64("snapshot fingerprint")?;
    let entries = read_vec(r, "snapshot record count", |r| {
        let key = r.u64("snapshot key")?;
        let len = r.len("snapshot value length")?;
        Ok((key, r.take(len, "snapshot value bytes")?.into()))
    })?;
    Ok(StateSnapshot {
        entries,
        applied_mutations,
        fingerprint,
    })
}

fn write_proof(out: &mut Vec<u8>, proof: &PreparedProof) {
    out.extend_from_slice(&proof.view.0.to_le_bytes());
    out.extend_from_slice(&proof.seq.0.to_le_bytes());
    out.extend_from_slice(proof.digest.as_bytes());
    out.extend_from_slice(&(proof.prepare_votes as u32).to_le_bytes());
    write_batch(out, &proof.batch);
    write_att_opt(out, &proof.attestation);
}

fn read_proof(r: &mut Reader<'_>) -> Result<PreparedProof, WireError> {
    Ok(PreparedProof {
        view: View(r.u64("proof view")?),
        seq: SeqNum(r.u64("proof seq")?),
        digest: r.digest("proof digest")?,
        prepare_votes: usize::try_from(r.u32("proof votes")?).unwrap_or(usize::MAX),
        batch: read_batch(r)?,
        attestation: read_att_opt(r)?,
    })
}

/// Writes the variant-specific body (everything between the fixed header
/// slots and the MAC).
pub(crate) fn write_message_body(out: &mut Vec<u8>, msg: &Message) {
    match msg {
        Message::PrePrepare {
            batch, attestation, ..
        } => {
            write_att_opt(out, attestation);
            write_batch(out, batch);
        }
        Message::Prepare {
            digest,
            attestation,
            ..
        }
        | Message::Commit {
            digest,
            attestation,
            ..
        } => {
            out.extend_from_slice(digest.as_bytes());
            write_att_opt(out, attestation);
        }
        Message::Checkpoint {
            state_digest,
            attestation,
            ..
        } => {
            out.extend_from_slice(state_digest.as_bytes());
            write_att_opt(out, attestation);
        }
        Message::ViewChange { prepared, .. } => {
            write_vec(out, prepared, write_proof);
        }
        Message::NewView {
            proposals,
            counter_attestation,
            ..
        } => {
            write_att_opt(out, counter_attestation);
            write_vec(out, proposals, |out, (seq, batch, attestation)| {
                out.extend_from_slice(&seq.0.to_le_bytes());
                write_batch(out, batch);
                write_att_opt(out, attestation);
            });
        }
        Message::ClientRetry { txn } => encode_transaction(out, txn),
        Message::ForwardRequest { txns } => {
            write_vec(out, txns, encode_transaction);
        }
        // The requester's last executed seq travels in header slot `b`.
        Message::CheckpointRequest { .. } => {}
        Message::CheckpointState {
            snapshot, batches, ..
        } => {
            write_snapshot(out, snapshot);
            write_vec(out, batches, |out, (seq, batch)| {
                out.extend_from_slice(&seq.0.to_le_bytes());
                write_batch(out, batch);
            });
        }
    }
}

/// Rebuilds a message from its kind tag, header slots and body bytes.
pub(crate) fn read_message_body(
    kind: u8,
    a: u64,
    b: u64,
    r: &mut Reader<'_>,
) -> Result<Message, WireError> {
    Ok(match kind {
        0 => Message::PrePrepare {
            view: View(a),
            seq: SeqNum(b),
            attestation: read_att_opt(r)?,
            batch: read_batch(r)?,
        },
        1 | 2 => {
            let digest = r.digest("vote digest")?;
            let attestation = read_att_opt(r)?;
            if kind == 1 {
                Message::Prepare {
                    view: View(a),
                    seq: SeqNum(b),
                    digest,
                    attestation,
                }
            } else {
                Message::Commit {
                    view: View(a),
                    seq: SeqNum(b),
                    digest,
                    attestation,
                }
            }
        }
        3 => Message::Checkpoint {
            seq: SeqNum(b),
            state_digest: r.digest("checkpoint digest")?,
            attestation: read_att_opt(r)?,
        },
        4 => Message::ViewChange {
            new_view: View(a),
            last_stable: SeqNum(b),
            prepared: read_vec(r, "prepared proof count", read_proof)?,
        },
        5 => {
            let counter_attestation = read_att_opt(r)?;
            let proposals = read_vec(r, "proposal count", |r| {
                let seq = SeqNum(r.u64("proposal seq")?);
                let batch = read_batch(r)?;
                let attestation = read_att_opt(r)?;
                Ok((seq, batch, attestation))
            })?;
            Message::NewView {
                view: View(a),
                supporting_votes: usize::try_from(b).unwrap_or(usize::MAX),
                proposals,
                counter_attestation,
            }
        }
        6 => Message::ClientRetry {
            txn: read_transaction(r)?,
        },
        7 => Message::ForwardRequest {
            txns: read_vec(r, "forward txn count", read_transaction)?,
        },
        10 => Message::CheckpointRequest {
            last_executed: SeqNum(b),
        },
        11 => Message::CheckpointState {
            seq: SeqNum(b),
            snapshot: read_snapshot(r)?,
            batches: read_vec(r, "checkpoint batch count", |r| {
                let seq = SeqNum(r.u64("checkpoint batch seq")?);
                let batch = read_batch(r)?;
                Ok((seq, batch))
            })?,
        },
        tag => {
            return Err(WireError::BadTag {
                context: "message kind",
                tag,
            })
        }
    })
}

/// Writes a reply body: the client/request/seq/view identifiers, the
/// speculative flag, and the execution result.
pub(crate) fn write_reply_body(out: &mut Vec<u8>, reply: &ClientReply) {
    out.extend_from_slice(&reply.client.0.to_le_bytes());
    out.extend_from_slice(&reply.request.0.to_le_bytes());
    out.extend_from_slice(&reply.seq.0.to_le_bytes());
    out.extend_from_slice(&reply.view.0.to_le_bytes());
    out.push(u8::from(reply.speculative));
    write_result(out, &reply.result);
}

pub(crate) fn read_reply_body(
    replica: ReplicaId,
    r: &mut Reader<'_>,
) -> Result<ClientReply, WireError> {
    Ok(ClientReply {
        client: ClientId(r.u64("reply client")?),
        request: RequestId(r.u64("reply request")?),
        seq: SeqNum(r.u64("reply seq")?),
        view: View(r.u64("reply view")?),
        replica,
        speculative: match r.u8("reply speculative flag")? {
            0 => false,
            1 => true,
            tag => {
                return Err(WireError::BadTag {
                    context: "speculative flag",
                    tag,
                })
            }
        },
        result: read_result(r)?,
    })
}
