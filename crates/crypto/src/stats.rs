//! Operation counting for the simulator cost model.
//!
//! The evaluation section of the paper attributes throughput differences to
//! the *number* of cryptographic and trusted-component operations each
//! protocol performs per consensus (Figure 5 quantifies exactly this). The
//! simulator therefore needs precise per-node operation counts; both crypto
//! providers share this counting structure.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kinds of cryptographic operations tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CryptoOp {
    /// Digital signature generation (ED25519 in the paper's fabric).
    Sign,
    /// Digital signature verification.
    Verify,
    /// MAC computation (CMAC in the paper, HMAC-SHA256 here).
    MacCompute,
    /// MAC verification.
    MacVerify,
    /// Hash computation.
    Hash,
}

/// A snapshot of operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Number of signature generations.
    pub signs: u64,
    /// Number of signature verifications.
    pub verifies: u64,
    /// Number of MAC computations.
    pub mac_computes: u64,
    /// Number of MAC verifications.
    pub mac_verifies: u64,
    /// Number of hash computations.
    pub hashes: u64,
}

impl OpCounts {
    /// Total number of operations of any kind.
    pub fn total(&self) -> u64 {
        self.signs + self.verifies + self.mac_computes + self.mac_verifies + self.hashes
    }

    /// Element-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            signs: self.signs.saturating_sub(earlier.signs),
            verifies: self.verifies.saturating_sub(earlier.verifies),
            mac_computes: self.mac_computes.saturating_sub(earlier.mac_computes),
            mac_verifies: self.mac_verifies.saturating_sub(earlier.mac_verifies),
            hashes: self.hashes.saturating_sub(earlier.hashes),
        }
    }
}

/// Thread-safe, cheaply cloneable operation counters.
#[derive(Clone, Default)]
pub struct CryptoStats {
    inner: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    signs: AtomicU64,
    verifies: AtomicU64,
    mac_computes: AtomicU64,
    mac_verifies: AtomicU64,
    hashes: AtomicU64,
    history: Mutex<Vec<OpCounts>>,
}

impl CryptoStats {
    /// Creates a fresh, zeroed statistics object.
    pub fn new() -> Self {
        CryptoStats::default()
    }

    /// Records one operation.
    pub fn record(&self, op: CryptoOp) {
        let counter = match op {
            CryptoOp::Sign => &self.inner.signs,
            CryptoOp::Verify => &self.inner.verifies,
            CryptoOp::MacCompute => &self.inner.mac_computes,
            CryptoOp::MacVerify => &self.inner.mac_verifies,
            CryptoOp::Hash => &self.inner.hashes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `count` operations of the same kind at once.
    pub fn record_many(&self, op: CryptoOp, count: u64) {
        let counter = match op {
            CryptoOp::Sign => &self.inner.signs,
            CryptoOp::Verify => &self.inner.verifies,
            CryptoOp::MacCompute => &self.inner.mac_computes,
            CryptoOp::MacVerify => &self.inner.mac_verifies,
            CryptoOp::Hash => &self.inner.hashes,
        };
        counter.fetch_add(count, Ordering::Relaxed);
    }

    /// Returns the current counts.
    pub fn snapshot(&self) -> OpCounts {
        OpCounts {
            signs: self.inner.signs.load(Ordering::Relaxed),
            verifies: self.inner.verifies.load(Ordering::Relaxed),
            mac_computes: self.inner.mac_computes.load(Ordering::Relaxed),
            mac_verifies: self.inner.mac_verifies.load(Ordering::Relaxed),
            hashes: self.inner.hashes.load(Ordering::Relaxed),
        }
    }

    /// Stores the current snapshot in the internal history (used by harnesses
    /// that sample counts per measurement interval).
    pub fn checkpoint(&self) {
        let snap = self.snapshot();
        self.inner.history.lock().push(snap);
    }

    /// Returns the stored history of snapshots.
    pub fn history(&self) -> Vec<OpCounts> {
        self.inner.history.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kind() {
        let stats = CryptoStats::new();
        stats.record(CryptoOp::Sign);
        stats.record(CryptoOp::Sign);
        stats.record(CryptoOp::Verify);
        stats.record_many(CryptoOp::Hash, 10);
        let snap = stats.snapshot();
        assert_eq!(snap.signs, 2);
        assert_eq!(snap.verifies, 1);
        assert_eq!(snap.hashes, 10);
        assert_eq!(snap.total(), 13);
    }

    #[test]
    fn clones_share_the_same_counters() {
        let stats = CryptoStats::new();
        let clone = stats.clone();
        clone.record(CryptoOp::MacCompute);
        assert_eq!(stats.snapshot().mac_computes, 1);
    }

    #[test]
    fn since_computes_interval_deltas() {
        let stats = CryptoStats::new();
        stats.record(CryptoOp::Sign);
        let first = stats.snapshot();
        stats.record_many(CryptoOp::Sign, 5);
        let second = stats.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.signs, 5);
        assert_eq!(delta.verifies, 0);
    }

    #[test]
    fn history_records_checkpoints_in_order() {
        let stats = CryptoStats::new();
        stats.record(CryptoOp::Verify);
        stats.checkpoint();
        stats.record(CryptoOp::Verify);
        stats.checkpoint();
        let hist = stats.history();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].verifies, 1);
        assert_eq!(hist[1].verifies, 2);
    }

    #[test]
    fn concurrent_recording_is_not_lossy() {
        let stats = CryptoStats::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = stats.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        st.record(CryptoOp::Sign);
                    }
                });
            }
        });
        assert_eq!(stats.snapshot().signs, 4000);
    }
}
