//! Key material management.
//!
//! [`KeyStore`] holds an Ed25519 keypair per node (replicas and clients) plus
//! the symmetric key material used to derive pairwise channel MACs, mirroring
//! the authenticated-channel assumption of the system model (§2): Byzantine
//! replicas can impersonate each other but never an honest replica.

use crate::provider::Mac;
use ed25519_dalek::{SigningKey, VerifyingKey};
use flexitrust_types::{ClientId, Error, NodeId, ReplicaId, Result};
use hmac::{Hmac, Mac as HmacMac};
use sha2::Sha256;
use std::collections::BTreeMap;

type HmacSha256 = Hmac<Sha256>;

/// Holds every node's signing and verifying keys plus channel MAC keys.
pub struct KeyStore {
    replica_keys: Vec<SigningKey>,
    client_keys: BTreeMap<u64, SigningKey>,
    /// Secret used to derive pairwise channel keys; in a real deployment each
    /// pair of nodes would establish its own key, but a derived key per
    /// ordered pair gives the same verification semantics.
    channel_secret: [u8; 32],
}

impl KeyStore {
    /// Generates a key store with random keys for `replicas` replicas and
    /// `clients` clients.
    pub fn generate(replicas: usize, clients: usize) -> Self {
        // lint:allow(D04): key *generation* is deployment setup, not
        // execution: keys are inputs to a run (like the config), never
        // derived during one. Deterministic hosts use `deterministic()`.
        let mut rng = rand::rngs::OsRng;
        let replica_keys = (0..replicas)
            .map(|_| SigningKey::generate(&mut rng))
            .collect();
        let client_keys = (0..clients as u64)
            .map(|c| (c, SigningKey::generate(&mut rng)))
            .collect();
        let mut channel_secret = [0u8; 32];
        rand::RngCore::fill_bytes(&mut rng, &mut channel_secret);
        KeyStore {
            replica_keys,
            client_keys,
            channel_secret,
        }
    }

    /// Generates a *deterministic* key store (seeded from node indices); used
    /// by tests and the simulator so runs are reproducible.
    pub fn deterministic(replicas: usize, clients: usize) -> Self {
        fn key_from_seed(seed: u64) -> SigningKey {
            let mut bytes = [0u8; 32];
            bytes[..8].copy_from_slice(&seed.to_le_bytes());
            bytes[8..16].copy_from_slice(&seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
            SigningKey::from_bytes(&bytes)
        }
        let replica_keys = (0..replicas as u64)
            .map(|i| key_from_seed(0x1000 + i))
            .collect();
        let client_keys = (0..clients as u64)
            .map(|c| (c, key_from_seed(0x2000_0000 + c)))
            .collect();
        KeyStore {
            replica_keys,
            client_keys,
            channel_secret: [42u8; 32],
        }
    }

    /// Number of replica keys held.
    pub fn replica_count(&self) -> usize {
        self.replica_keys.len()
    }

    /// Returns the signing key of a node.
    pub fn signing_key(&self, node: NodeId) -> Result<&SigningKey> {
        match node {
            NodeId::Replica(ReplicaId(r)) => {
                self.replica_keys.get(r as usize).ok_or(Error::MissingKey {
                    owner: format!("replica {r}"),
                })
            }
            NodeId::Client(ClientId(c)) => self.client_keys.get(&c).ok_or(Error::MissingKey {
                owner: format!("client {c}"),
            }),
        }
    }

    /// Returns the verifying key of a node.
    pub fn verifying_key(&self, node: NodeId) -> Result<VerifyingKey> {
        Ok(self.signing_key(node)?.verifying_key())
    }

    /// Computes the HMAC for the ordered channel `from → to`.
    pub fn channel_mac(&self, from: NodeId, to: NodeId, bytes: &[u8]) -> Mac {
        let mut key = Vec::with_capacity(32 + 18);
        key.extend_from_slice(&self.channel_secret);
        key.extend_from_slice(&node_tag(from));
        key.extend_from_slice(&node_tag(to));
        let mut mac = HmacSha256::new_from_slice(&key).expect("HMAC accepts any key length");
        mac.update(bytes);
        let out = mac.finalize().into_bytes();
        let mut result = [0u8; 32];
        result.copy_from_slice(&out);
        Mac(result)
    }

    /// Exports the public-key ring (verifying keys only) so that verifiers —
    /// most importantly the software enclaves in `flexitrust-trusted` — can
    /// check signatures without holding private keys.
    pub fn public_ring(&self) -> PublicKeyRing {
        PublicKeyRing {
            replicas: self
                .replica_keys
                .iter()
                .map(SigningKey::verifying_key)
                .collect(),
            clients: self
                .client_keys
                .iter()
                .map(|(c, k)| (*c, k.verifying_key()))
                .collect(),
        }
    }
}

fn node_tag(node: NodeId) -> [u8; 9] {
    let mut tag = [0u8; 9];
    match node {
        NodeId::Replica(ReplicaId(r)) => {
            tag[0] = 1;
            tag[1..5].copy_from_slice(&r.to_le_bytes());
        }
        NodeId::Client(ClientId(c)) => {
            tag[0] = 2;
            tag[1..9].copy_from_slice(&c.to_le_bytes());
        }
    }
    tag
}

/// Verifying keys of every node; safe to hand to trusted-component verifiers.
#[derive(Clone)]
pub struct PublicKeyRing {
    replicas: Vec<VerifyingKey>,
    clients: BTreeMap<u64, VerifyingKey>,
}

impl PublicKeyRing {
    /// Returns the verifying key of a node.
    pub fn verifying_key(&self, node: NodeId) -> Result<&VerifyingKey> {
        match node {
            NodeId::Replica(ReplicaId(r)) => {
                self.replicas.get(r as usize).ok_or(Error::MissingKey {
                    owner: format!("replica {r}"),
                })
            }
            NodeId::Client(ClientId(c)) => self.clients.get(&c).ok_or(Error::MissingKey {
                owner: format!("client {c}"),
            }),
        }
    }

    /// Number of replica keys in the ring.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ed25519_dalek::{Signer, Verifier};

    #[test]
    fn deterministic_store_is_reproducible() {
        let a = KeyStore::deterministic(3, 2);
        let b = KeyStore::deterministic(3, 2);
        let node = NodeId::Replica(ReplicaId(1));
        assert_eq!(
            a.verifying_key(node).unwrap().to_bytes(),
            b.verifying_key(node).unwrap().to_bytes()
        );
    }

    #[test]
    fn distinct_nodes_have_distinct_keys() {
        let ks = KeyStore::deterministic(4, 2);
        let k0 = ks.verifying_key(NodeId::Replica(ReplicaId(0))).unwrap();
        let k1 = ks.verifying_key(NodeId::Replica(ReplicaId(1))).unwrap();
        let c0 = ks.verifying_key(NodeId::Client(ClientId(0))).unwrap();
        assert_ne!(k0.to_bytes(), k1.to_bytes());
        assert_ne!(k0.to_bytes(), c0.to_bytes());
    }

    #[test]
    fn missing_keys_are_reported() {
        let ks = KeyStore::deterministic(2, 1);
        assert!(ks.signing_key(NodeId::Replica(ReplicaId(9))).is_err());
        assert!(ks.signing_key(NodeId::Client(ClientId(9))).is_err());
    }

    #[test]
    fn channel_macs_are_directional() {
        let ks = KeyStore::deterministic(2, 1);
        let a = NodeId::Replica(ReplicaId(0));
        let b = NodeId::Replica(ReplicaId(1));
        assert_ne!(ks.channel_mac(a, b, b"m"), ks.channel_mac(b, a, b"m"));
        assert_eq!(ks.channel_mac(a, b, b"m"), ks.channel_mac(a, b, b"m"));
    }

    #[test]
    fn public_ring_matches_keystore_keys() {
        let ks = KeyStore::deterministic(3, 1);
        let ring = ks.public_ring();
        assert_eq!(ring.replica_count(), 3);
        let node = NodeId::Replica(ReplicaId(2));
        let msg = b"attestation";
        let sig = ks.signing_key(node).unwrap().sign(msg);
        ring.verifying_key(node).unwrap().verify(msg, &sig).unwrap();
    }

    #[test]
    fn generated_store_produces_working_keys() {
        let ks = KeyStore::generate(2, 1);
        let node = NodeId::Client(ClientId(0));
        let sig = ks.signing_key(node).unwrap().sign(b"x");
        ks.verifying_key(node).unwrap().verify(b"x", &sig).unwrap();
    }
}
