//! Cryptographic substrate for the FlexiTrust reproduction.
//!
//! The paper's ResilientDB-based implementation relies on three primitives:
//! CMAC message authentication codes for authenticated channels, ED25519
//! digital signatures for attestations and client requests, and SHA-256 for
//! hashing. This crate provides the same three primitives (HMAC-SHA256 plays
//! the role of CMAC) behind a small [`CryptoProvider`] trait with two
//! implementations:
//!
//! * [`RealCrypto`] — performs the actual cryptographic computation. Used by
//!   the threaded runtime and by correctness tests.
//! * [`CountingCrypto`] — produces structurally valid but cryptographically
//!   meaningless artefacts while *counting* every operation. The discrete
//!   event simulator uses these counts together with its CPU cost model to
//!   charge realistic processing time without paying for real signatures on
//!   millions of simulated messages.
//!
//! Key material is managed by [`KeyStore`], which assigns an Ed25519 keypair
//! to every replica and client and a pairwise HMAC key to every channel.

pub mod hashing;
pub mod keys;
pub mod provider;
pub mod stats;

pub use hashing::{digest_batch, digest_transaction, make_batch, sha256, sha256_concat};
pub use keys::{KeyStore, PublicKeyRing};
pub use provider::{CountingCrypto, CryptoProvider, Mac, RealCrypto, Signature};
pub use stats::{CryptoOp, CryptoStats, OpCounts};
