//! SHA-256 hashing helpers.
//!
//! `Hash(·)` in the paper maps an arbitrary value to a constant-sized digest;
//! these helpers compute that digest for raw bytes, transactions and batches.

use flexitrust_types::{Batch, Digest, Transaction};
use sha2::{Digest as Sha2Digest, Sha256};

/// Hashes raw bytes with SHA-256.
pub fn sha256(bytes: &[u8]) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(bytes);
    let out = hasher.finalize();
    let mut digest = [0u8; 32];
    digest.copy_from_slice(&out);
    Digest(digest)
}

/// Hashes the concatenation of several byte slices without allocating an
/// intermediate buffer.
pub fn sha256_concat<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> Digest {
    let mut hasher = Sha256::new();
    for p in parts {
        hasher.update(p);
    }
    let out = hasher.finalize();
    let mut digest = [0u8; 32];
    digest.copy_from_slice(&out);
    Digest(digest)
}

/// Computes the digest Δ of a single transaction (`Hash(⟨T⟩_c)`).
pub fn digest_transaction(txn: &Transaction) -> Digest {
    sha256(txn.canonical_bytes())
}

/// Computes the digest of a whole batch of transactions.
///
/// The protocols order batches, so the batch digest is what appears in
/// `Preprepare` messages and in trusted-component attestations.
pub fn digest_batch(txns: &[Transaction]) -> Digest {
    sha256_concat(txns.iter().map(|t| t.canonical_bytes()))
}

/// Convenience constructor: builds a [`Batch`] and fills in its digest.
pub fn make_batch(txns: Vec<Transaction>) -> Batch {
    let digest = digest_batch(&txns);
    Batch::new(txns, digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{ClientId, KvOp, RequestId};

    fn txn(c: u64, r: u64) -> Transaction {
        Transaction::new(ClientId(c), RequestId(r), KvOp::Read { key: r })
    }

    #[test]
    fn sha256_matches_known_vector() {
        // SHA-256 of the empty string.
        let d = sha256(b"");
        assert_eq!(
            d.to_string(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn digests_are_deterministic_and_collision_free_on_distinct_inputs() {
        assert_eq!(
            digest_transaction(&txn(1, 1)),
            digest_transaction(&txn(1, 1))
        );
        assert_ne!(
            digest_transaction(&txn(1, 1)),
            digest_transaction(&txn(1, 2))
        );
        assert_ne!(
            digest_transaction(&txn(1, 1)),
            digest_transaction(&txn(2, 1))
        );
    }

    #[test]
    fn batch_digest_depends_on_order_and_content() {
        let a = digest_batch(&[txn(1, 1), txn(1, 2)]);
        let b = digest_batch(&[txn(1, 2), txn(1, 1)]);
        let c = digest_batch(&[txn(1, 1), txn(1, 2)]);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn concat_matches_single_buffer_hash() {
        let x = b"hello ".to_vec();
        let y = b"world".to_vec();
        let concat = sha256_concat([x.as_slice(), y.as_slice()]);
        let single = sha256(b"hello world");
        assert_eq!(concat, single);
    }

    #[test]
    fn make_batch_fills_digest() {
        let b = make_batch(vec![txn(5, 6)]);
        assert_eq!(b.digest(), digest_batch(b.txns()));
        assert!(!b.digest().is_zero());
    }
}
