//! The [`CryptoProvider`] trait and its real and counting implementations.

use crate::keys::KeyStore;
use crate::stats::{CryptoOp, CryptoStats};
use ed25519_dalek::{Signer as DalekSigner, Verifier};
use flexitrust_types::{Error, NodeId, Result};
use std::fmt;
use std::sync::Arc;

/// A detached Ed25519-sized signature (64 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 64]);

impl Signature {
    /// The all-zero signature, used as a placeholder by the counting provider.
    pub fn zero() -> Self {
        Signature([0u8; 64])
    }

    /// Returns the raw bytes of the signature.
    pub fn as_bytes(&self) -> &[u8; 64] {
        &self.0
    }
}

impl Default for Signature {
    fn default() -> Self {
        Signature::zero()
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// A message authentication code (HMAC-SHA256 output, 32 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mac(pub [u8; 32]);

impl fmt::Debug for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mac({:02x}{:02x}..)", self.0[0], self.0[1])
    }
}

/// The cryptographic operations the fabric needs.
///
/// Implementations must be cheap to clone and shareable across threads; both
/// provided implementations wrap their state in [`Arc`]s.
pub trait CryptoProvider: Send + Sync {
    /// Signs `bytes` on behalf of `signer` with its Ed25519 key.
    fn sign(&self, signer: NodeId, bytes: &[u8]) -> Result<Signature>;

    /// Verifies that `signature` over `bytes` was produced by `signer`.
    fn verify(&self, signer: NodeId, bytes: &[u8], signature: &Signature) -> Result<()>;

    /// Computes the MAC of `bytes` for the channel `from → to`.
    fn mac(&self, from: NodeId, to: NodeId, bytes: &[u8]) -> Result<Mac>;

    /// Verifies a channel MAC.
    fn verify_mac(&self, from: NodeId, to: NodeId, bytes: &[u8], mac: &Mac) -> Result<()>;

    /// Returns the shared operation-count statistics for this provider.
    fn stats(&self) -> &CryptoStats;
}

/// Production crypto: real Ed25519 signatures and HMAC-SHA256 MACs backed by
/// a [`KeyStore`].
#[derive(Clone)]
pub struct RealCrypto {
    keys: Arc<KeyStore>,
    stats: CryptoStats,
}

impl RealCrypto {
    /// Creates a provider over the given key store.
    pub fn new(keys: Arc<KeyStore>) -> Self {
        RealCrypto {
            keys,
            stats: CryptoStats::default(),
        }
    }

    /// Access to the underlying key store (e.g. to hand public keys to
    /// trusted-component verifiers).
    pub fn keys(&self) -> &Arc<KeyStore> {
        &self.keys
    }
}

impl CryptoProvider for RealCrypto {
    fn sign(&self, signer: NodeId, bytes: &[u8]) -> Result<Signature> {
        self.stats.record(CryptoOp::Sign);
        let key = self.keys.signing_key(signer)?;
        let sig = key.sign(bytes);
        Ok(Signature(sig.to_bytes()))
    }

    fn verify(&self, signer: NodeId, bytes: &[u8], signature: &Signature) -> Result<()> {
        self.stats.record(CryptoOp::Verify);
        let key = self.keys.verifying_key(signer)?;
        let sig = ed25519_dalek::Signature::from_bytes(signature.as_bytes());
        key.verify(bytes, &sig)
            .map_err(|_| Error::InvalidSignature {
                context: format!("ed25519 verification failed for {signer}"),
            })
    }

    fn mac(&self, from: NodeId, to: NodeId, bytes: &[u8]) -> Result<Mac> {
        self.stats.record(CryptoOp::MacCompute);
        Ok(self.keys.channel_mac(from, to, bytes))
    }

    fn verify_mac(&self, from: NodeId, to: NodeId, bytes: &[u8], mac: &Mac) -> Result<()> {
        self.stats.record(CryptoOp::MacVerify);
        let expected = self.keys.channel_mac(from, to, bytes);
        if expected == *mac {
            Ok(())
        } else {
            Err(Error::InvalidSignature {
                context: format!("MAC verification failed on channel {from} -> {to}"),
            })
        }
    }

    fn stats(&self) -> &CryptoStats {
        &self.stats
    }
}

/// Simulation crypto: produces structurally valid artefacts without doing any
/// cryptographic work, while recording operation counts.
///
/// The "signature" over a message is a keyed, deterministic (non-secure)
/// fingerprint of the signer and the message bytes, so forgery by *honest
/// simulation code* is still detectable (a mismatched signer or altered bytes
/// fails verification), which keeps protocol-logic bugs observable in
/// simulation, while costing only a few arithmetic operations.
#[derive(Clone, Default)]
pub struct CountingCrypto {
    stats: CryptoStats,
}

impl CountingCrypto {
    /// Creates a counting provider.
    pub fn new() -> Self {
        CountingCrypto::default()
    }

    fn fingerprint(salt: u64, bytes: &[u8]) -> u64 {
        // FNV-1a over the salt and the message bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in salt.to_le_bytes().iter().chain(bytes.iter()) {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn node_salt(node: NodeId) -> u64 {
        match node {
            NodeId::Replica(r) => 0x5245_0000_0000_0000 | u64::from(r.0),
            NodeId::Client(c) => 0x434c_0000_0000_0000 ^ c.0,
        }
    }
}

impl CryptoProvider for CountingCrypto {
    fn sign(&self, signer: NodeId, bytes: &[u8]) -> Result<Signature> {
        self.stats.record(CryptoOp::Sign);
        let fp = Self::fingerprint(Self::node_salt(signer), bytes);
        let mut sig = [0u8; 64];
        sig[..8].copy_from_slice(&fp.to_le_bytes());
        Ok(Signature(sig))
    }

    fn verify(&self, signer: NodeId, bytes: &[u8], signature: &Signature) -> Result<()> {
        self.stats.record(CryptoOp::Verify);
        let fp = Self::fingerprint(Self::node_salt(signer), bytes);
        if signature.as_bytes()[..8] == fp.to_le_bytes() {
            Ok(())
        } else {
            Err(Error::InvalidSignature {
                context: format!("counting-provider fingerprint mismatch for {signer}"),
            })
        }
    }

    fn mac(&self, from: NodeId, to: NodeId, bytes: &[u8]) -> Result<Mac> {
        self.stats.record(CryptoOp::MacCompute);
        let fp = Self::fingerprint(
            Self::node_salt(from) ^ Self::node_salt(to).rotate_left(17),
            bytes,
        );
        let mut mac = [0u8; 32];
        mac[..8].copy_from_slice(&fp.to_le_bytes());
        Ok(Mac(mac))
    }

    fn verify_mac(&self, from: NodeId, to: NodeId, bytes: &[u8], mac: &Mac) -> Result<()> {
        self.stats.record(CryptoOp::MacVerify);
        let expected = {
            let fp = Self::fingerprint(
                Self::node_salt(from) ^ Self::node_salt(to).rotate_left(17),
                bytes,
            );
            let mut m = [0u8; 32];
            m[..8].copy_from_slice(&fp.to_le_bytes());
            Mac(m)
        };
        if expected == *mac {
            Ok(())
        } else {
            Err(Error::InvalidSignature {
                context: format!("counting-provider MAC mismatch on channel {from} -> {to}"),
            })
        }
    }

    fn stats(&self) -> &CryptoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{ClientId, ReplicaId};

    fn nodes() -> (NodeId, NodeId) {
        (NodeId::Replica(ReplicaId(0)), NodeId::Client(ClientId(7)))
    }

    #[test]
    fn real_crypto_sign_verify_roundtrip() {
        let keys = Arc::new(KeyStore::deterministic(4, 2));
        let crypto = RealCrypto::new(keys);
        let (r, c) = nodes();
        let sig = crypto.sign(r, b"hello").unwrap();
        crypto.verify(r, b"hello", &sig).unwrap();
        assert!(crypto.verify(r, b"tampered", &sig).is_err());
        assert!(crypto.verify(c, b"hello", &sig).is_err());
    }

    #[test]
    fn real_crypto_mac_roundtrip() {
        let keys = Arc::new(KeyStore::deterministic(4, 2));
        let crypto = RealCrypto::new(keys);
        let (r, c) = nodes();
        let mac = crypto.mac(r, c, b"payload").unwrap();
        crypto.verify_mac(r, c, b"payload", &mac).unwrap();
        assert!(crypto.verify_mac(r, c, b"other", &mac).is_err());
        assert!(crypto.verify_mac(c, r, b"payload", &mac).is_err());
    }

    #[test]
    fn counting_crypto_detects_tampering_and_counts() {
        let crypto = CountingCrypto::new();
        let (r, c) = nodes();
        let sig = crypto.sign(r, b"msg").unwrap();
        crypto.verify(r, b"msg", &sig).unwrap();
        assert!(crypto.verify(r, b"other", &sig).is_err());
        assert!(crypto.verify(c, b"msg", &sig).is_err());
        let mac = crypto.mac(r, c, b"m").unwrap();
        crypto.verify_mac(r, c, b"m", &mac).unwrap();
        assert!(crypto.verify_mac(r, c, b"x", &mac).is_err());

        let counts = crypto.stats().snapshot();
        assert_eq!(counts.signs, 1);
        assert_eq!(counts.verifies, 3);
        assert_eq!(counts.mac_computes, 1);
        assert_eq!(counts.mac_verifies, 2);
    }

    #[test]
    fn signatures_of_distinct_signers_differ() {
        let crypto = CountingCrypto::new();
        let a = crypto.sign(NodeId::Replica(ReplicaId(1)), b"x").unwrap();
        let b = crypto.sign(NodeId::Replica(ReplicaId(2)), b"x").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn signature_debug_is_short() {
        let s = Signature::zero();
        assert!(format!("{s:?}").len() < 32);
    }
}
