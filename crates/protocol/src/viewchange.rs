//! View-change planning shared by the protocol engines.
//!
//! When the primary of view `v` is suspected faulty, replicas broadcast
//! `ViewChange` messages carrying the batches they have prepared (or, for
//! speculative protocols, executed), and the primary of view `v + 1` gathers
//! a quorum of those messages into a `NewView` announcement that re-proposes
//! every batch that may have committed, filling sequence-number gaps with
//! no-ops (§8.2, §8.3 and the PBFT view change they inherit from).
//!
//! [`NewViewPlanner`] implements the quorum gathering and the merge: it is
//! protocol-agnostic (the quorum size and what counts as a "prepared proof"
//! differ per protocol and are supplied by the engine).

use crate::messages::PreparedProof;
use crate::quorum::CertificateTracker;
use flexitrust_types::{Batch, ReplicaId, SeqNum, View};
use std::collections::BTreeMap;

/// The merged re-proposal plan for a new view.
#[derive(Debug, Clone, PartialEq)]
pub struct NewViewPlan {
    /// The view this plan starts.
    pub view: View,
    /// How many `ViewChange` messages back the plan.
    pub supporting_votes: usize,
    /// The re-proposals in contiguous sequence order starting right after
    /// the highest stable checkpoint among the votes; gaps are no-op batches.
    pub proposals: Vec<(SeqNum, Batch)>,
    /// The sequence number right after which the new primary must continue
    /// proposing fresh batches.
    pub next_seq: SeqNum,
    /// The highest stable checkpoint reported by the quorum.
    pub stable_seq: SeqNum,
}

/// Collects `ViewChange` messages for one target view and produces the
/// [`NewViewPlan`] once a quorum is reached.
#[derive(Debug)]
pub struct NewViewPlanner {
    target_view: View,
    votes: CertificateTracker<View>,
    /// Best prepared proof seen per sequence number (highest view, then most
    /// prepare votes wins).
    best: BTreeMap<u64, PreparedProof>,
    highest_stable: SeqNum,
    produced: bool,
}

impl NewViewPlanner {
    /// Creates a planner for `target_view` requiring `quorum` view-change
    /// votes.
    pub fn new(target_view: View, quorum: usize) -> Self {
        NewViewPlanner {
            target_view,
            votes: CertificateTracker::new(quorum.max(1)),
            best: BTreeMap::new(),
            highest_stable: SeqNum(0),
            produced: false,
        }
    }

    /// The view this planner is building.
    pub fn target_view(&self) -> View {
        self.target_view
    }

    /// Number of distinct view-change votes received so far.
    pub fn votes(&self) -> usize {
        self.votes.count(&self.target_view)
    }

    /// Whether the plan has already been produced.
    pub fn produced(&self) -> bool {
        self.produced
    }

    /// Records one `ViewChange` message. Returns the plan exactly once, on
    /// the message that completes the quorum.
    pub fn record_view_change(
        &mut self,
        from: ReplicaId,
        last_stable: SeqNum,
        prepared: Vec<PreparedProof>,
    ) -> Option<NewViewPlan> {
        if self.produced {
            return None;
        }
        self.highest_stable = self.highest_stable.max(last_stable);
        for proof in prepared {
            let slot = proof.seq.0;
            match self.best.get(&slot) {
                Some(existing)
                    if (existing.view, existing.prepare_votes)
                        >= (proof.view, proof.prepare_votes) => {}
                _ => {
                    self.best.insert(slot, proof);
                }
            }
        }
        if self.votes.vote(self.target_view, from) {
            self.produced = true;
            Some(self.build_plan())
        } else {
            None
        }
    }

    fn build_plan(&self) -> NewViewPlan {
        let start = self.highest_stable.0 + 1;
        let max_seq = self
            .best
            .keys()
            .copied()
            .filter(|s| *s >= start)
            .max()
            .unwrap_or(self.highest_stable.0);
        let mut proposals = Vec::new();
        for seq in start..=max_seq {
            match self.best.get(&seq) {
                Some(proof) => proposals.push((SeqNum(seq), proof.batch.clone())),
                // Gap between re-proposed requests: fill with a no-op so the
                // execution order has no holes.
                None => proposals.push((SeqNum(seq), Batch::noop(seq))),
            }
        }
        NewViewPlan {
            view: self.target_view,
            supporting_votes: self.votes(),
            next_seq: SeqNum(max_seq + 1),
            stable_seq: self.highest_stable,
            proposals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{ClientId, Digest, KvOp, RequestId, Transaction};

    fn proof(view: u64, seq: u64, votes: usize, tag: u64) -> PreparedProof {
        PreparedProof {
            view: View(view),
            seq: SeqNum(seq),
            digest: Digest::from_u64_tag(tag),
            batch: Batch::new(
                vec![Transaction::new(
                    ClientId(1),
                    RequestId(tag),
                    KvOp::Read { key: tag },
                )],
                Digest::from_u64_tag(tag),
            ),
            attestation: None,
            prepare_votes: votes,
        }
    }

    #[test]
    fn plan_is_produced_exactly_once_at_quorum() {
        let mut planner = NewViewPlanner::new(View(1), 3);
        assert!(planner
            .record_view_change(ReplicaId(0), SeqNum(0), vec![proof(0, 1, 3, 1)])
            .is_none());
        assert!(planner
            .record_view_change(ReplicaId(1), SeqNum(0), vec![])
            .is_none());
        let plan = planner
            .record_view_change(ReplicaId(2), SeqNum(0), vec![])
            .unwrap();
        assert_eq!(plan.view, View(1));
        assert_eq!(plan.supporting_votes, 3);
        assert_eq!(plan.proposals.len(), 1);
        assert!(planner
            .record_view_change(ReplicaId(3), SeqNum(0), vec![])
            .is_none());
        assert!(planner.produced());
    }

    #[test]
    fn duplicate_votes_do_not_count_toward_quorum() {
        let mut planner = NewViewPlanner::new(View(1), 2);
        assert!(planner
            .record_view_change(ReplicaId(0), SeqNum(0), vec![])
            .is_none());
        assert!(planner
            .record_view_change(ReplicaId(0), SeqNum(0), vec![])
            .is_none());
        assert!(planner
            .record_view_change(ReplicaId(1), SeqNum(0), vec![])
            .is_some());
    }

    #[test]
    fn gaps_are_filled_with_noops() {
        let mut planner = NewViewPlanner::new(View(2), 1);
        let plan = planner
            .record_view_change(
                ReplicaId(0),
                SeqNum(0),
                vec![proof(1, 1, 3, 1), proof(1, 4, 3, 4)],
            )
            .unwrap();
        let seqs: Vec<u64> = plan.proposals.iter().map(|(s, _)| s.0).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
        assert!(plan.proposals[1].1.is_noop());
        assert!(plan.proposals[2].1.is_noop());
        assert!(!plan.proposals[3].1.is_noop());
        assert_eq!(plan.next_seq, SeqNum(5));
    }

    #[test]
    fn higher_view_proof_wins_per_slot() {
        let mut planner = NewViewPlanner::new(View(3), 2);
        planner.record_view_change(ReplicaId(0), SeqNum(0), vec![proof(1, 1, 3, 10)]);
        let plan = planner
            .record_view_change(ReplicaId(1), SeqNum(0), vec![proof(2, 1, 2, 20)])
            .unwrap();
        assert_eq!(plan.proposals[0].1.digest(), Digest::from_u64_tag(20));
    }

    #[test]
    fn slots_below_stable_checkpoint_are_dropped() {
        let mut planner = NewViewPlanner::new(View(1), 2);
        planner.record_view_change(
            ReplicaId(0),
            SeqNum(3),
            vec![proof(0, 2, 3, 2), proof(0, 5, 3, 5)],
        );
        let plan = planner
            .record_view_change(ReplicaId(1), SeqNum(1), vec![])
            .unwrap();
        let seqs: Vec<u64> = plan.proposals.iter().map(|(s, _)| s.0).collect();
        assert_eq!(seqs, vec![4, 5]);
        assert_eq!(plan.stable_seq, SeqNum(3));
        assert!(plan.proposals[0].1.is_noop());
    }

    #[test]
    fn empty_quorum_produces_empty_plan() {
        let mut planner = NewViewPlanner::new(View(1), 1);
        let plan = planner
            .record_view_change(ReplicaId(0), SeqNum(7), vec![])
            .unwrap();
        assert!(plan.proposals.is_empty());
        assert_eq!(plan.next_seq, SeqNum(8));
    }
}
