//! The [`ConsensusEngine`] trait: the contract between protocol logic and
//! the environments that host it (simulator, threaded runtime, attack
//! harnesses).

use crate::actions::Outbox;
use crate::messages::Message;
use crate::properties::ProtocolProperties;
use flexitrust_types::{Digest, ReplicaId, SeqNum, SystemConfig, Transaction, View};

/// Timers an engine may arm. The host schedules them against its own clock
/// (simulated or real) and calls [`ConsensusEngine::on_timer`] on expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Primary-failure detection; on expiry the replica votes for a view
    /// change.
    ViewChange,
    /// Flush a partially filled batch at the primary.
    BatchFlush,
    /// Periodic checkpoint trigger.
    Checkpoint,
    /// A request-specific timer set after forwarding a client retry to the
    /// primary (Flexi-ZZ §8.3); the payload is the transaction's digest tag.
    RequestForwarded(u64),
}

/// A deterministic, I/O-free consensus protocol replica.
///
/// Engines are driven entirely through the three `on_*` entry points and
/// communicate exclusively through the [`Outbox`]. They own their replica's
/// execution queue and reply cache, so "executing" a batch is internal; the
/// host observes executions through `Action::Executed` and client replies.
pub trait ConsensusEngine: Send {
    /// The static configuration the engine was built with.
    fn config(&self) -> &SystemConfig;

    /// This replica's identifier.
    fn id(&self) -> ReplicaId;

    /// Static properties of the protocol (Figure 1 of the paper).
    fn properties(&self) -> ProtocolProperties;

    /// Called when client transactions arrive at this replica.
    ///
    /// At the primary this normally leads to batching and a `PrePrepare`;
    /// at a backup the transactions are forwarded to the primary.
    fn on_client_request(&mut self, txns: Vec<Transaction>, out: &mut Outbox);

    /// Called when a protocol message arrives from `from`.
    ///
    /// The host has already verified transport authenticity (MACs); the
    /// engine is responsible for protocol-level validation (views, quorums,
    /// attestations) and must simply ignore malformed input.
    fn on_message(&mut self, from: ReplicaId, msg: Message, out: &mut Outbox);

    /// Called when a previously armed timer expires.
    fn on_timer(&mut self, timer: TimerKind, out: &mut Outbox);

    /// The view this replica currently operates in.
    fn view(&self) -> View;

    /// The highest sequence number this replica has executed.
    fn last_executed(&self) -> SeqNum;

    /// Total number of transactions this replica has executed.
    fn executed_txns(&self) -> u64;

    /// Digest of the replica's executed state, when the engine exposes one.
    /// The chaos invariant checker compares these across replicas that
    /// report the same `last_executed`.
    fn state_digest(&self) -> Option<Digest> {
        None
    }

    /// Returns `true` when this replica is the primary of its current view.
    fn is_primary(&self) -> bool {
        self.view().primary(self.config().n) == self.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_kinds_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TimerKind::ViewChange);
        set.insert(TimerKind::BatchFlush);
        set.insert(TimerKind::RequestForwarded(7));
        set.insert(TimerKind::RequestForwarded(7));
        assert_eq!(set.len(), 3);
        assert_ne!(
            TimerKind::RequestForwarded(1),
            TimerKind::RequestForwarded(2)
        );
    }
}
